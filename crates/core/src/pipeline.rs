//! The tiered transformation pipeline and the no-rewrite baseline.
//!
//! Planning tries the tiers in order of the paper's architecture diagram
//! (Figure 1):
//!
//! 1. **SQL tier** — XSLT → XQuery → SQL/XML over the view's base tables
//!    (Table 7): no XML materialisation at all, value predicates through
//!    B-tree indexes;
//! 2. **XQuery tier** — XSLT → XQuery evaluated over the materialised view
//!    documents: still no template dispatch or pattern matching at run
//!    time;
//! 3. **VM tier** — the functional evaluation (materialise + XSLTVM), which
//!    is also the *no-rewrite baseline* of the paper's Figures 2 and 3.
//!
//! A prepared [`TransformPlan`] is a pure function of (stylesheet ×
//! canonical structure × options): planning canonicalises the view's
//! structure first, so the plan names tables only through symbolic slots
//! and carries **no view identity at all**. Executing requires binding the
//! plan to a concrete view ([`TransformPlan::bind`] → [`BoundPlan`]),
//! which validates the view's canonical fingerprint and resolves each slot
//! against the catalog — one prepared plan serves every view in a shape
//! family.

// Guard-bearing hot path: a stray unwrap here is a latent panic the
// pipeline would have to contain at a tier boundary. Keep it impossible.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
// The plan path shares one Arc'd plan across many binds; a stray clone of
// the plan (or the old Rc idiom) would silently undo the sharing.
#![cfg_attr(not(test), deny(clippy::redundant_clone))]

use crate::error::{PipelineError, TierFailure};
use crate::guard::{DegradePolicy, Guard, Limits};
use crate::plancache::{PlanCache, PlanKey, SharedPlanCache};
use crate::sqlrewrite::rewrite_to_sql;
use crate::xqgen::{rewrite, RewriteOptions, RewriteOutcome};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use xsltdb_relstore::pubexpr::SqlXmlQuery;
use xsltdb_relstore::{slot_name, Catalog, ExecStats, SlotBindings, XmlView};
use xsltdb_structinfo::{canonicalize_view, StructInfo, ViewCanon};
use xsltdb_xml::{Document, StreamWriter};
use xsltdb_xquery::{
    analyze_query, evaluate_query, evaluate_query_guarded, evaluate_query_to_sink,
    sequence_to_document, EmissionReport, NodeHandle,
};
use xsltdb_xslt::{compile_str, transform, transform_with, Stylesheet, TransformOptions};

/// Which execution strategy a plan uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Pure SQL/XML over base tables.
    Sql,
    /// Rewritten XQuery over materialised view documents.
    XQuery,
    /// Functional evaluation (materialise + XSLTVM) — the no-rewrite path.
    Vm,
}

/// A prepared transformation of a *shape family* by a stylesheet.
///
/// Identity-free: the SQL query (when present) names tables through
/// symbolic slots (`$t0`, `$t1`, …) and no view is stored. `Send + Sync`
/// (asserted at compile time in `plancache`), shared as `Arc` through the
/// caches, and executed by [binding](Self::bind) to a concrete view.
pub struct TransformPlan {
    pub tier: Tier,
    pub sheet: Stylesheet,
    /// Present on the SQL and XQuery tiers.
    pub rewrite: Option<RewriteOutcome>,
    /// Present on the SQL tier; table names are symbolic slots.
    pub sql: Option<SqlXmlQuery>,
    /// Canonical fingerprint of the shape this plan was prepared for.
    /// Binding validates against it, so a plan can never execute over a
    /// view of a different structure.
    pub canonical_fp: u64,
    /// Number of table slots the plan references (`$t0` .. `$t{n-1}`).
    pub slot_count: usize,
    /// Why the plan fell back below the SQL tier, if it did.
    pub fallback_reason: Option<String>,
    /// Static emission-position census of the rewritten query (present
    /// whenever `rewrite` is): how many constructor sites stream as events
    /// and how many must spill to a tree. `spill_free()` plans stream the
    /// XQuery tier with zero arena nodes built for the result.
    pub emission: Option<EmissionReport>,
}

/// A [`TransformPlan`] bound to one concrete view: the shared plan, the
/// view (for the materialising tiers), and the slot → table bindings (for
/// the SQL tier). Cheap to construct per call; all the execute entry
/// points live here.
#[derive(Clone)]
pub struct BoundPlan {
    pub plan: Arc<TransformPlan>,
    pub view: XmlView,
    pub bindings: SlotBindings,
}

/// Plan the transformation of every row of `view` by `stylesheet_src`.
///
/// The result is identity-free — call [`TransformPlan::bind`] (or use
/// [`plan_bound`] / [`plan_cached`]) to execute it.
pub fn plan_transform(
    view: &XmlView,
    stylesheet_src: &str,
    opts: &RewriteOptions,
) -> Result<TransformPlan, PipelineError> {
    let sheet = compile_str(stylesheet_src)?;
    plan_compiled(view, sheet, opts)
}

/// Plan `view` × `stylesheet_src` and bind the plan back to `view` — the
/// one-shot convenience for callers that do not cache.
pub fn plan_bound(
    catalog: &Catalog,
    view: &XmlView,
    stylesheet_src: &str,
    opts: &RewriteOptions,
) -> Result<BoundPlan, PipelineError> {
    let plan = Arc::new(plan_transform(view, stylesheet_src, opts)?);
    plan.bind(view, catalog)
}

/// The validity floor for plans over `view`: the newest per-table DDL
/// stamp across the view's read-set. A cached plan planned at or after
/// this instant cannot have missed any DDL that touched a table it reads;
/// DDL on *unrelated* tables moves the global clock but not this floor, so
/// same-shaped sibling plans stay cached (plan-aware invalidation).
///
/// This is conservative in the safe direction on both sides: planning
/// consults only the view definition (access paths are chosen per
/// execution by the scan planner), so serving an "older" plan is always
/// byte-identical — the floor just preserves the replan-on-relevant-DDL
/// contract without the collateral eviction.
fn plan_valid_at(catalog: &Catalog, view: &XmlView) -> u64 {
    let tables = view.referenced_tables();
    catalog.max_ddl_stamp(tables.iter().map(String::as_str))
}

/// The front door for repeated transforms: plan through a [`PlanCache`].
///
/// A lookup hit returns the shared prepared plan without touching the
/// compile → partial-evaluate → rewrite pipeline at all; a miss plans from
/// scratch and admits the result. Entries are keyed by the content of
/// (stylesheet text × **canonical** structure fingerprint × options) and
/// validated against the per-table DDL stamps of the view's read-set
/// ([`Catalog::max_ddl_stamp`]), so `create_index` / table replacement on
/// a table the plan *reads* transparently forces a replan while DDL on
/// unrelated tables leaves the entry warm — and two views publishing the
/// same shape share one entry, with the returned [`BoundPlan`] binding the
/// shared plan to *this* view's tables.
///
/// Cached plans are immutable — execute them with a fresh [`Guard`] per
/// call ([`BoundPlan::execute_with_limits`]); a budget trip in one
/// execution never poisons the entry.
pub fn plan_cached(
    cache: &mut PlanCache,
    catalog: &Catalog,
    view: &XmlView,
    stylesheet_src: &str,
    opts: &RewriteOptions,
) -> Result<BoundPlan, PipelineError> {
    // The canonicalisation memo keys on the view's registration stamp:
    // only re-registering the view can change what canonicalisation sees.
    let canon = cache.view_canon(view, catalog.view_stamp(&view.name));
    let key = PlanKey::with_fingerprint(canon.fingerprint, stylesheet_src, opts);
    let plan = match cache.lookup(&key, plan_valid_at(catalog, view)) {
        Some(plan) => plan,
        None => {
            let plan = Arc::new(plan_transform(view, stylesheet_src, opts)?);
            cache.insert(key, Arc::clone(&plan), catalog.generation());
            plan
        }
    };
    plan.bind_with(view, catalog, canon.fingerprint, canon.bindings.clone())
}

/// [`plan_cached`] against a [`SharedPlanCache`]: the front door for
/// concurrent sessions. Takes `&self` — any number of threads plan through
/// one cache simultaneously; distinct keys mostly proceed on distinct
/// shard locks, and the same key serializes on one.
///
/// Two threads racing a cold miss on the same key both plan and both
/// insert (last write stays cached). Planning is deterministic, so the two
/// plans are equivalent — the race costs one redundant planning pass,
/// never correctness. Stale entries are invalidated under the shard lock,
/// so a plan planned before the newest DDL on a table it reads is never
/// returned (see [`plan_cached`] for the read-set floor).
pub fn plan_cached_shared(
    cache: &SharedPlanCache,
    catalog: &Catalog,
    view: &XmlView,
    stylesheet_src: &str,
    opts: &RewriteOptions,
) -> Result<BoundPlan, PipelineError> {
    let canon = cache.view_canon(view, catalog.view_stamp(&view.name));
    let key = PlanKey::with_fingerprint(canon.fingerprint, stylesheet_src, opts);
    let plan = match cache.lookup(&key, plan_valid_at(catalog, view)) {
        Some(plan) => plan,
        None => {
            let plan = Arc::new(plan_transform(view, stylesheet_src, opts)?);
            cache.insert(key, Arc::clone(&plan), catalog.generation());
            plan
        }
    };
    plan.bind_with(view, catalog, canon.fingerprint, canon.bindings.clone())
}

/// Plan with a pre-compiled stylesheet.
///
/// Canonicalises the view's structure first and rewrites against the
/// canonical form, so the emitted SQL names tables only through slots and
/// the plan is shareable across the whole shape family.
pub fn plan_compiled(
    view: &XmlView,
    sheet: Stylesheet,
    opts: &RewriteOptions,
) -> Result<TransformPlan, PipelineError> {
    let canon: ViewCanon = canonicalize_view(view);
    let info: StructInfo = match &canon.canonical {
        Some(i) => i.clone(),
        None => {
            return Ok(TransformPlan {
                tier: Tier::Vm,
                sheet,
                rewrite: None,
                sql: None,
                canonical_fp: canon.fingerprint,
                slot_count: 0,
                fallback_reason: canon.note,
                emission: None,
            })
        }
    };
    let (tier, rewrite_out, sql, fallback_reason) = match rewrite(&sheet, &info, opts) {
        Ok(outcome) => match rewrite_to_sql(&outcome.query, &info) {
            Ok(sql) => (Tier::Sql, Some(outcome), Some(sql), None),
            Err(e) => (Tier::XQuery, Some(outcome), None, Some(e.to_string())),
        },
        Err(e) => (Tier::Vm, None, None, Some(e.to_string())),
    };
    let emission = rewrite_out.as_ref().map(|o| analyze_query(&o.query));
    Ok(TransformPlan {
        tier,
        sheet,
        rewrite: rewrite_out,
        sql,
        canonical_fp: canon.fingerprint,
        slot_count: canon.slot_count,
        fallback_reason,
        emission,
    })
}

/// Result of a guarded execution: the documents plus a record of which
/// tier produced them and every tier that failed on the way down.
#[derive(Debug)]
pub struct GuardedRun {
    pub documents: Vec<Document>,
    /// The tier that actually produced the result (≤ the planned tier).
    pub tier: Tier,
    /// Failed attempts before the successful tier, in lattice order.
    pub fallbacks: Vec<TierFailure>,
}

/// Result of a streaming execution ([`BoundPlan::execute_to_writer`]).
#[derive(Debug)]
pub struct StreamRun {
    /// Total bytes delivered to the writer.
    pub bytes_written: u64,
    /// The tier that produced the bytes. [`Tier::Sql`] means true
    /// streaming (zero DOM nodes); the lower tiers materialise first and
    /// serialize after.
    pub tier: Tier,
    /// Failed attempts before the successful tier, in lattice order.
    pub fallbacks: Vec<TierFailure>,
}

/// Tracks how many bytes have reached the caller's writer, so the fallback
/// lattice can tell a clean tier failure (nothing written — safe to retry
/// on a lower tier) from a mid-stream one (bytes are already on the wire —
/// falling back would corrupt the output).
struct CountingWriter<'a> {
    inner: &'a mut dyn std::io::Write,
    written: u64,
}

impl std::io::Write for CountingWriter<'_> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

impl Tier {
    fn name(self) -> &'static str {
        match self {
            Tier::Sql => "sql",
            Tier::XQuery => "xquery",
            Tier::Vm => "vm",
        }
    }
}

/// One failed tier attempt: the reporting shape plus the original typed
/// error (absent when the tier died by panic).
struct Attempt {
    failure: TierFailure,
    error: Option<PipelineError>,
}

/// Routing hook the serving layer installs over the degradation lattice:
/// consulted before each tier runs, informed of every tier outcome.
/// Implemented by `admission::CircuitBreakerSet`; the default
/// [`AllowAllTiers`] routes everything and records nothing.
pub trait TierRouter: Sync {
    /// May the pipeline enter `tier` right now?
    fn allow(&self, tier: Tier) -> bool;

    /// Report the outcome of running `tier`. `success == false` covers
    /// errors and contained panics; guard trips are **not** reported —
    /// they indict the request's budget, not the tier.
    fn record(&self, tier: Tier, success: bool);
}

/// The default router: every tier allowed, outcomes dropped.
#[derive(Debug, Clone, Copy, Default)]
pub struct AllowAllTiers;

impl TierRouter for AllowAllTiers {
    fn allow(&self, _tier: Tier) -> bool {
        true
    }

    fn record(&self, _tier: Tier, _success: bool) {}
}

/// Run a tier body with panic containment. A panic inside an engine is an
/// engine bug, not a reason to poison the whole session: it is caught at
/// the tier boundary and converted into a failed attempt.
fn run_tier<T>(
    tier: Tier,
    body: impl FnOnce() -> Result<T, PipelineError>,
) -> Result<T, Attempt> {
    match catch_unwind(AssertUnwindSafe(body)) {
        Ok(Ok(v)) => Ok(v),
        Ok(Err(e)) => Err(Attempt {
            failure: TierFailure {
                tier: tier.name(),
                reason: e.to_string(),
                panicked: false,
            },
            error: Some(e),
        }),
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(Attempt {
                failure: TierFailure { tier: tier.name(), reason: message, panicked: true },
                error: None,
            })
        }
    }
}

impl TransformPlan {
    /// Bind this prepared plan to a concrete view: canonicalise the view,
    /// validate its shape fingerprint against the plan's, and resolve
    /// every table slot against `catalog`. The [`BoundPlan`] is cheap and
    /// per-call; the plan itself stays shared.
    pub fn bind(
        self: &Arc<Self>,
        view: &XmlView,
        catalog: &Catalog,
    ) -> Result<BoundPlan, PipelineError> {
        let canon = canonicalize_view(view);
        self.bind_with(view, catalog, canon.fingerprint, canon.bindings)
    }

    /// [`Self::bind`] with a pre-computed canonicalisation (the cache path,
    /// where the per-(view, generation) memo already holds it).
    ///
    /// Fails with [`PipelineError::BindingMismatch`] when `fingerprint`
    /// differs from the plan's, and [`PipelineError::UnboundSlot`] when a
    /// slot the plan references has no binding; every bound table must
    /// exist in `catalog`.
    pub fn bind_with(
        self: &Arc<Self>,
        view: &XmlView,
        catalog: &Catalog,
        fingerprint: u64,
        bindings: SlotBindings,
    ) -> Result<BoundPlan, PipelineError> {
        if fingerprint != self.canonical_fp {
            return Err(PipelineError::BindingMismatch {
                expected: self.canonical_fp,
                got: fingerprint,
            });
        }
        for i in 0..self.slot_count {
            let slot = slot_name(i);
            match bindings.get(&slot) {
                None => return Err(PipelineError::UnboundSlot { slot }),
                Some(table) => {
                    catalog.table(table)?;
                }
            }
        }
        Ok(BoundPlan { plan: Arc::clone(self), view: view.clone(), bindings })
    }
}

impl BoundPlan {
    /// The execution tier of the underlying plan.
    pub fn tier(&self) -> Tier {
        self.plan.tier
    }

    /// The compiled stylesheet of the underlying plan.
    pub fn sheet(&self) -> &Stylesheet {
        &self.plan.sheet
    }

    /// The shared, immutable plan this binding draws on.
    pub fn plan(&self) -> &Arc<TransformPlan> {
        &self.plan
    }

    /// The slot-to-table bindings this plan executes with.
    pub fn bindings(&self) -> &SlotBindings {
        &self.bindings
    }

    /// The *read-set* of this binding: every concrete table an execution
    /// can touch. For canonicalised plans this is the tables behind the
    /// resolved slots; plans without slots (underivable structure — the VM
    /// tier materialises the view functionally) fall back to the view
    /// definition's referenced tables. Result caches key freshness on the
    /// version coordinates of exactly this set.
    pub fn read_set(&self) -> Vec<String> {
        if self.plan.slot_count > 0 {
            let mut out = Vec::with_capacity(self.plan.slot_count);
            for i in 0..self.plan.slot_count {
                if let Some(table) = self.bindings.get(&slot_name(i)) {
                    if !out.iter().any(|t: &String| t == table) {
                        out.push(table.to_string());
                    }
                }
            }
            out
        } else {
            self.view.referenced_tables()
        }
    }

    /// Why the underlying plan fell below the SQL tier, if it did.
    pub fn fallback_reason(&self) -> Option<&str> {
        self.plan.fallback_reason.as_deref()
    }

    /// Run the plan: one result document per view row.
    pub fn execute(
        &self,
        catalog: &Catalog,
        stats: &ExecStats,
    ) -> Result<Vec<Document>, PipelineError> {
        match self.plan.tier {
            Tier::Sql => {
                let sql = self.plan.sql.as_ref().expect("SQL tier carries a query");
                Ok(sql.execute_bound(catalog, stats, &Guard::unlimited(), &self.bindings)?)
            }
            Tier::XQuery => {
                let outcome =
                    self.plan.rewrite.as_ref().expect("XQuery tier carries a rewrite");
                let docs = self.view.materialize(catalog, stats)?;
                let mut out = Vec::with_capacity(docs.len());
                for d in docs {
                    let input = NodeHandle::document(d);
                    let seq = evaluate_query(&outcome.query, Some(input))?;
                    let doc = sequence_to_document(&seq);
                    stats.note_materialized_nodes(doc.node_count() as u64);
                    out.push(doc);
                }
                Ok(out)
            }
            Tier::Vm => no_rewrite_transform(catalog, &self.view, &self.plan.sheet, stats)
                .map(|r| r.documents),
        }
    }

    /// Run the plan under a [`Guard`] with graceful degradation: a tier
    /// that errors or panics at execution time falls back to the next
    /// slower tier (SQL → XQuery → VM), and the chain of failed attempts
    /// is reported in the result. Guard trips are terminal — the budgets
    /// are shared across tiers, so a lower tier would only burn the
    /// remaining budget before tripping on the same limit.
    pub fn execute_guarded(
        &self,
        catalog: &Catalog,
        stats: &ExecStats,
        guard: &Guard,
    ) -> Result<GuardedRun, PipelineError> {
        self.execute_with_policy(catalog, stats, guard, DegradePolicy::Fallback)
    }

    /// Run the plan under a **fresh** [`Guard`] armed with `limits` — the
    /// execution mode for cached plans, where one plan serves many calls:
    /// every call gets the full budget, and a trip is an outcome of that
    /// call alone (the plan itself holds no guard state, so the cache
    /// entry stays reusable afterwards).
    pub fn execute_with_limits(
        &self,
        catalog: &Catalog,
        stats: &ExecStats,
        limits: Limits,
    ) -> Result<GuardedRun, PipelineError> {
        self.execute_guarded(catalog, stats, &Guard::new(limits))
    }

    /// [`Self::execute_guarded`] with an explicit [`DegradePolicy`].
    pub fn execute_with_policy(
        &self,
        catalog: &Catalog,
        stats: &ExecStats,
        guard: &Guard,
        policy: DegradePolicy,
    ) -> Result<GuardedRun, PipelineError> {
        let mut attempts: Vec<Attempt> = Vec::new();

        let tiers: &[Tier] = match self.plan.tier {
            Tier::Sql => &[Tier::Sql, Tier::XQuery, Tier::Vm],
            Tier::XQuery => &[Tier::XQuery, Tier::Vm],
            Tier::Vm => &[Tier::Vm],
        };

        for &tier in tiers {
            let result = run_tier(tier, || self.run_single_tier(tier, catalog, stats, guard));
            match result {
                Ok(documents) => {
                    return Ok(GuardedRun {
                        documents,
                        tier,
                        fallbacks: attempts.into_iter().map(|a| a.failure).collect(),
                    })
                }
                Err(attempt) => {
                    // A trip is terminal regardless of policy: report the
                    // structured evidence, not the stringly engine error.
                    if let Some(trip) = guard.trip() {
                        return Err(PipelineError::Guard(trip));
                    }
                    let strict = policy == DegradePolicy::Strict;
                    attempts.push(attempt);
                    if strict {
                        break;
                    }
                }
            }
        }

        // Everything failed. A single attempt surfaces its own typed error
        // (preserving pre-ExecGuard `execute` semantics); a traversed
        // lattice reports the whole chain.
        if attempts.len() == 1 {
            let a = attempts.pop().expect("one attempt");
            return Err(match a.error {
                Some(e) => e,
                None => PipelineError::Panic { tier: a.failure.tier, message: a.failure.reason },
            });
        }
        Err(PipelineError::TiersExhausted {
            attempts: attempts.into_iter().map(|a| a.failure).collect(),
        })
    }

    /// Run the plan **streaming**: result bytes go straight to `out`
    /// instead of materialising result documents.
    ///
    /// On the SQL tier the rows are pulled through the iterator operators
    /// and serialized as they are published — zero DOM nodes, with
    /// `max_output_bytes` charged per write so trips fire mid-stream. The
    /// XQuery tier streams too: constructors in emission position push
    /// events straight into a guarded [`StreamWriter`], and only
    /// re-inspected subexpressions spill to a transient tree (reported via
    /// `spilled_subtrees` / `peak_spilled_nodes` on [`ExecStats`]). The VM
    /// tier still materialises as in [`Self::execute_guarded`] and
    /// serializes after; every path is byte-identical.
    ///
    /// Degradation follows the same lattice as [`Self::execute_guarded`],
    /// with one extra rule: a tier that fails **after** bytes reached the
    /// writer is terminal, because the partial output cannot be unwritten.
    /// (The deterministic fault points all fire at tier entry, before any
    /// write, so injected-fault fallback behaves exactly as in the
    /// materialising path.) Guard trips are terminal as everywhere.
    pub fn execute_to_writer(
        &self,
        catalog: &Catalog,
        stats: &ExecStats,
        guard: &Guard,
        out: &mut dyn std::io::Write,
    ) -> Result<StreamRun, PipelineError> {
        self.execute_to_writer_routed(catalog, stats, guard, out, &AllowAllTiers)
    }

    /// [`Self::execute_to_writer`] with a [`TierRouter`] consulted at each
    /// lattice edge. A tier the router refuses is skipped — recorded in
    /// `fallbacks` as a non-panic failure — and execution degrades
    /// straight to the next tier; every tier actually run reports its
    /// outcome back to the router (guard trips excepted: those indict the
    /// request, not the tier).
    pub fn execute_to_writer_routed(
        &self,
        catalog: &Catalog,
        stats: &ExecStats,
        guard: &Guard,
        out: &mut dyn std::io::Write,
        router: &dyn TierRouter,
    ) -> Result<StreamRun, PipelineError> {
        let mut attempts: Vec<Attempt> = Vec::new();
        let mut w = CountingWriter { inner: out, written: 0 };

        let tiers: &[Tier] = match self.plan.tier {
            Tier::Sql => &[Tier::Sql, Tier::XQuery, Tier::Vm],
            Tier::XQuery => &[Tier::XQuery, Tier::Vm],
            Tier::Vm => &[Tier::Vm],
        };

        for &tier in tiers {
            if !router.allow(tier) {
                let reason = format!("{} tier skipped: circuit breaker open", tier.name());
                attempts.push(Attempt {
                    failure: TierFailure {
                        tier: tier.name(),
                        reason: "skipped: circuit breaker open".to_string(),
                        panicked: false,
                    },
                    error: Some(PipelineError::Internal(reason)),
                });
                continue;
            }
            let before = w.written;
            let result = run_tier(tier, || {
                self.run_single_tier_to_writer(tier, catalog, stats, guard, &mut w)
            });
            match result {
                Ok(()) => {
                    router.record(tier, true);
                    return Ok(StreamRun {
                        bytes_written: w.written,
                        tier,
                        fallbacks: attempts.into_iter().map(|a| a.failure).collect(),
                    })
                }
                Err(attempt) => {
                    if let Some(trip) = guard.trip() {
                        return Err(PipelineError::Guard(trip));
                    }
                    router.record(tier, false);
                    let dirty = w.written > before;
                    attempts.push(attempt);
                    if dirty {
                        break;
                    }
                }
            }
        }

        if attempts.len() == 1 {
            let a = attempts.pop().expect("one attempt");
            return Err(match a.error {
                Some(e) => e,
                None => PipelineError::Panic { tier: a.failure.tier, message: a.failure.reason },
            });
        }
        Err(PipelineError::TiersExhausted {
            attempts: attempts.into_iter().map(|a| a.failure).collect(),
        })
    }

    /// One tier of the streaming path: the SQL tier streams natively, the
    /// XQuery tier streams through sink-mode evaluation (spilling only
    /// re-inspected subtrees), and the VM tier runs as usual and
    /// serializes its documents.
    fn run_single_tier_to_writer(
        &self,
        tier: Tier,
        catalog: &Catalog,
        stats: &ExecStats,
        guard: &Guard,
        out: &mut CountingWriter<'_>,
    ) -> Result<(), PipelineError> {
        use std::io::Write as _;
        match tier {
            Tier::Sql => {
                let sql = self
                    .plan
                    .sql
                    .as_ref()
                    .ok_or_else(|| PipelineError::internal("no SQL query in plan"))?;
                sql.execute_streaming_bound(catalog, stats, guard, &self.bindings, out)?;
                Ok(())
            }
            Tier::XQuery => {
                let outcome = self
                    .plan
                    .rewrite
                    .as_ref()
                    .ok_or_else(|| PipelineError::internal("no rewrite outcome in plan"))?;
                let docs = self.view.materialize_guarded(catalog, stats, guard)?;
                let before = out.written;
                let mut spilled = 0u64;
                let mut peak_spill = 0u64;
                {
                    let mut sw = StreamWriter::new(&mut *out, guard.clone());
                    for d in docs {
                        let input = NodeHandle::document(d);
                        let run = evaluate_query_to_sink(
                            &outcome.query,
                            Some(input),
                            Vec::new(),
                            guard.clone(),
                            &mut sw,
                        )?;
                        spilled += run.spilled_subtrees;
                        peak_spill = peak_spill.max(run.peak_spilled_nodes);
                    }
                    sw.finish().map_err(|e| {
                        PipelineError::internal(format!("stream close failed: {e}"))
                    })?;
                }
                stats.add_streamed_bytes(out.written - before);
                stats.add_spilled_subtrees(spilled);
                stats.note_spilled_nodes(peak_spill);
                Ok(())
            }
            Tier::Vm => {
                // The VM charged output bytes while building its result
                // trees; serialization here is a plain copy-out.
                let docs = self.run_single_tier(tier, catalog, stats, guard)?;
                for d in &docs {
                    out.write_all(xsltdb_xml::to_string(d).as_bytes()).map_err(|e| {
                        PipelineError::internal(format!("result write failed: {e}"))
                    })?;
                }
                Ok(())
            }
        }
    }

    /// Execute exactly one tier of the plan under `guard`, no fallback.
    fn run_single_tier(
        &self,
        tier: Tier,
        catalog: &Catalog,
        stats: &ExecStats,
        guard: &Guard,
    ) -> Result<Vec<Document>, PipelineError> {
        match tier {
            Tier::Sql => {
                let sql = self
                    .plan
                    .sql
                    .as_ref()
                    .ok_or_else(|| PipelineError::internal("no SQL query in plan"))?;
                Ok(sql.execute_bound(catalog, stats, guard, &self.bindings)?)
            }
            Tier::XQuery => {
                let outcome = self
                    .plan
                    .rewrite
                    .as_ref()
                    .ok_or_else(|| PipelineError::internal("no rewrite outcome in plan"))?;
                let docs = self.view.materialize_guarded(catalog, stats, guard)?;
                let mut out = Vec::with_capacity(docs.len());
                for d in docs {
                    let input = NodeHandle::document(d);
                    let seq =
                        evaluate_query_guarded(&outcome.query, Some(input), guard.clone())?;
                    let doc = sequence_to_document(&seq);
                    stats.note_materialized_nodes(doc.node_count() as u64);
                    out.push(doc);
                }
                Ok(out)
            }
            Tier::Vm => {
                no_rewrite_transform_guarded(catalog, &self.view, &self.plan.sheet, stats, guard)
                    .map(|r| r.documents)
            }
        }
    }
}

/// Result of the no-rewrite baseline.
pub struct BaselineRun {
    pub documents: Vec<Document>,
    /// Total nodes materialised before the XSLT processor could start — the
    /// cost the rewrite avoids.
    pub materialized_nodes: usize,
}

/// The paper's no-rewrite baseline: materialise every view row as a DOM and
/// run the XSLTVM over it.
pub fn no_rewrite_transform(
    catalog: &Catalog,
    view: &XmlView,
    sheet: &Stylesheet,
    stats: &ExecStats,
) -> Result<BaselineRun, PipelineError> {
    let docs = view.materialize(catalog, stats)?;
    let materialized_nodes = docs.iter().map(Document::node_count).sum();
    let mut out = Vec::with_capacity(docs.len());
    for d in &docs {
        let result = transform(sheet, d)?;
        stats.note_materialized_nodes(result.node_count() as u64);
        out.push(result);
    }
    Ok(BaselineRun { documents: out, materialized_nodes })
}

/// [`no_rewrite_transform`] under a [`Guard`]: materialisation and the VM
/// both charge the same budgets.
pub fn no_rewrite_transform_guarded(
    catalog: &Catalog,
    view: &XmlView,
    sheet: &Stylesheet,
    stats: &ExecStats,
    guard: &Guard,
) -> Result<BaselineRun, PipelineError> {
    let docs = view.materialize_guarded(catalog, stats, guard)?;
    let materialized_nodes = docs.iter().map(Document::node_count).sum();
    let opts = TransformOptions { guard: guard.clone(), ..Default::default() };
    let mut out = Vec::with_capacity(docs.len());
    for d in &docs {
        let result = transform_with(sheet, d, &opts, &mut xsltdb_xslt::NoTrace)?;
        stats.note_materialized_nodes(result.node_count() as u64);
        out.push(result);
    }
    Ok(BaselineRun { documents: out, materialized_nodes })
}

/// Rewrite-and-run over a plain document (DTD/XSD-derived structure): the
/// XQuery tier for inputs that do not come from a view. Falls back to the
/// VM when the rewrite fails.
pub fn transform_document(
    sheet: &Stylesheet,
    info: &StructInfo,
    doc: &Document,
    opts: &RewriteOptions,
) -> Result<(Document, Option<RewriteOutcome>), PipelineError> {
    match rewrite(sheet, info, opts) {
        Ok(outcome) => {
            let input = NodeHandle::document(doc.clone());
            let seq = evaluate_query(&outcome.query, Some(input))?;
            Ok((sequence_to_document(&seq), Some(outcome)))
        }
        Err(_) => Ok((transform(sheet, doc)?, None)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::{FaultKind, FaultPoint};
    use xsltdb_relstore::exec::Conjunction;
    use xsltdb_relstore::pubexpr::PubExpr;
    use xsltdb_relstore::{ColType, Datum, Table};

    fn setup() -> (Catalog, XmlView) {
        let mut t = Table::new("t", &[("v", ColType::Int)]);
        t.insert(vec![Datum::Int(7)]).unwrap();
        let mut catalog = Catalog::new();
        catalog.add_table(t);
        let view = XmlView::new(
            "vu",
            SqlXmlQuery {
                base_table: "t".into(),
                where_clause: Conjunction::default(),
                order_by: Vec::new(),
                select: PubExpr::elem("r", vec![PubExpr::elem("v", vec![PubExpr::col("t", "v")])]),
            },
        );
        catalog.add_view(view.clone());
        (catalog, view)
    }

    fn wrap(body: &str) -> String {
        format!(
            r#"<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">{body}</xsl:stylesheet>"#
        )
    }

    #[test]
    fn simple_stylesheet_plans_to_sql_tier() {
        let (catalog, view) = setup();
        let bound = plan_bound(
            &catalog,
            &view,
            &wrap(r#"<xsl:template match="r"><o><xsl:value-of select="v"/></o></xsl:template>"#),
            &RewriteOptions::default(),
        )
        .unwrap();
        assert_eq!(bound.tier(), Tier::Sql);
        let stats = ExecStats::new();
        let docs = bound.execute(&catalog, &stats).unwrap();
        assert_eq!(xsltdb_xml::to_string(&docs[0]), "<o>7</o>");
    }

    #[test]
    fn plans_are_identity_free_and_sql_names_slots() {
        let (_catalog, view) = setup();
        let plan = plan_transform(
            &view,
            &wrap(r#"<xsl:template match="r"><o><xsl:value-of select="v"/></o></xsl:template>"#),
            &RewriteOptions::default(),
        )
        .unwrap();
        assert_eq!(plan.tier, Tier::Sql);
        assert_eq!(plan.slot_count, 1);
        let sql = plan.sql.as_ref().unwrap();
        assert_eq!(sql.base_table, "$t0", "SQL must be over slots, not tables");
    }

    #[test]
    fn binding_validates_shape_and_slots() {
        let (catalog, view) = setup();
        let src = wrap(r#"<xsl:template match="r"><o><xsl:value-of select="v"/></o></xsl:template>"#);
        let plan = Arc::new(plan_transform(&view, &src, &RewriteOptions::default()).unwrap());

        // A same-shaped view over a different table binds fine...
        let mut t2 = Table::new("t2", &[("v", ColType::Int)]);
        t2.insert(vec![Datum::Int(9)]).unwrap();
        let (mut catalog2, _) = setup();
        catalog2.add_table(t2);
        let view2 = XmlView::new(
            "vu2",
            SqlXmlQuery {
                base_table: "t2".into(),
                where_clause: Conjunction::default(),
                order_by: Vec::new(),
                select: PubExpr::elem(
                    "r",
                    vec![PubExpr::elem("v", vec![PubExpr::col("t2", "v")])],
                ),
            },
        );
        let bound2 = plan.bind(&view2, &catalog2).unwrap();
        let stats = ExecStats::new();
        let docs = bound2.execute(&catalog2, &stats).unwrap();
        assert_eq!(xsltdb_xml::to_string(&docs[0]), "<o>9</o>", "rebind reads t2's rows");

        // ... a differently-shaped view is a typed mismatch ...
        let other = XmlView::new(
            "other",
            SqlXmlQuery {
                base_table: "t".into(),
                where_clause: Conjunction::default(),
                order_by: Vec::new(),
                select: PubExpr::elem("r", vec![PubExpr::elem("w", vec![PubExpr::col("t", "v")])]),
            },
        );
        match plan.bind(&other, &catalog) {
            Err(PipelineError::BindingMismatch { expected, got }) => {
                assert_eq!(expected, plan.canonical_fp);
                assert_ne!(got, expected);
            }
            other => panic!("expected BindingMismatch, got {other:?}", other = other.map(|_| ())),
        }

        // ... and an incomplete binding is a typed unbound-slot error.
        match plan.bind_with(&view, &catalog, plan.canonical_fp, SlotBindings::new()) {
            Err(PipelineError::UnboundSlot { slot }) => assert_eq!(slot, "$t0"),
            other => panic!("expected UnboundSlot, got {other:?}", other = other.map(|_| ())),
        }
    }

    #[test]
    fn untranslatable_sql_shape_falls_to_xquery_tier() {
        // substring() has no SQL translation but is fine in XQuery.
        let (catalog, view) = setup();
        let bound = plan_bound(
            &catalog,
            &view,
            &wrap(
                r#"<xsl:template match="r"><o><xsl:value-of select="substring(v, 1, 1)"/></o></xsl:template>"#,
            ),
            &RewriteOptions::default(),
        )
        .unwrap();
        assert_eq!(bound.tier(), Tier::XQuery, "{:?}", bound.fallback_reason());
        assert!(bound.fallback_reason().is_some());
        let stats = ExecStats::new();
        let docs = bound.execute(&catalog, &stats).unwrap();
        assert_eq!(xsltdb_xml::to_string(&docs[0]), "<o>7</o>");
    }

    #[test]
    fn unrewritable_stylesheet_falls_to_vm_tier() {
        let (catalog, view) = setup();
        let bound = plan_bound(
            &catalog,
            &view,
            &wrap(
                r#"<xsl:template match="r"><o id="{generate-id(.)}"><xsl:value-of select="v"/></o></xsl:template>"#,
            ),
            &RewriteOptions::default(),
        )
        .unwrap();
        assert_eq!(bound.tier(), Tier::Vm, "{:?}", bound.fallback_reason());
        let stats = ExecStats::new();
        let docs = bound.execute(&catalog, &stats).unwrap();
        assert!(xsltdb_xml::to_string(&docs[0]).contains("<o id="));
    }

    #[test]
    fn bad_stylesheet_is_a_hard_error() {
        let (_c, view) = setup();
        assert!(plan_transform(&view, "<not-xslt/>", &RewriteOptions::default()).is_err());
    }

    #[test]
    fn transform_document_uses_rewrite_when_possible() {
        let info = xsltdb_structinfo::struct_of_dtd(
            "<!ELEMENT r (v)> <!ELEMENT v (#PCDATA)>",
            "r",
        )
        .unwrap();
        let doc = xsltdb_xml::parse::parse("<r><v>9</v></r>").unwrap();
        let sheet = xsltdb_xslt::compile_str(&wrap(
            r#"<xsl:template match="r"><o><xsl:value-of select="v"/></o></xsl:template>"#,
        ))
        .unwrap();
        let (out, outcome) =
            transform_document(&sheet, &info, &doc, &RewriteOptions::default()).unwrap();
        assert!(outcome.is_some());
        assert_eq!(xsltdb_xml::to_string(&out), "<o>9</o>");
    }

    #[test]
    fn plan_cached_shares_one_prepared_plan() {
        let (catalog, view) = setup();
        let mut cache = crate::plancache::PlanCache::default();
        let src = wrap(r#"<xsl:template match="r"><o><xsl:value-of select="v"/></o></xsl:template>"#);
        let first =
            plan_cached(&mut cache, &catalog, &view, &src, &RewriteOptions::default()).unwrap();
        let second =
            plan_cached(&mut cache, &catalog, &view, &src, &RewriteOptions::default()).unwrap();
        assert!(
            Arc::ptr_eq(&first.plan, &second.plan),
            "hit must return the same prepared plan"
        );
        let snap = cache.stats();
        assert_eq!((snap.hits, snap.misses), (1, 1));
        let stats = ExecStats::new();
        let docs = second.execute(&catalog, &stats).unwrap();
        assert_eq!(xsltdb_xml::to_string(&docs[0]), "<o>7</o>");
    }

    #[test]
    fn plan_cached_replans_after_ddl() {
        let (mut catalog, view) = setup();
        let mut cache = crate::plancache::PlanCache::default();
        let src = wrap(r#"<xsl:template match="r"><o><xsl:value-of select="v"/></o></xsl:template>"#);
        let first =
            plan_cached(&mut cache, &catalog, &view, &src, &RewriteOptions::default()).unwrap();
        catalog.create_index("t", "v").unwrap();
        let second =
            plan_cached(&mut cache, &catalog, &view, &src, &RewriteOptions::default()).unwrap();
        assert!(!Arc::ptr_eq(&first.plan, &second.plan), "DDL must force a replan");
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn compile_errors_are_not_cached() {
        let (catalog, view) = setup();
        let mut cache = crate::plancache::PlanCache::default();
        for _ in 0..2 {
            assert!(plan_cached(
                &mut cache,
                &catalog,
                &view,
                "<not-xslt/>",
                &RewriteOptions::default()
            )
            .is_err());
        }
        assert_eq!(cache.entry_count(), 0);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn fresh_guard_per_execution_trips_independently() {
        let (catalog, view) = setup();
        let bound = plan_bound(
            &catalog,
            &view,
            &wrap(r#"<xsl:template match="r"><o><xsl:value-of select="v"/></o></xsl:template>"#),
            &RewriteOptions::default(),
        )
        .unwrap();
        let stats = ExecStats::new();
        let tripped = bound
            .execute_with_limits(&catalog, &stats, Limits::UNLIMITED.with_fuel(1))
            .unwrap_err();
        assert!(tripped.is_guard_trip(), "got {tripped:?}");
        // The same immutable plan runs to completion on the next call.
        let run = bound
            .execute_with_limits(&catalog, &stats, Limits::UNLIMITED)
            .unwrap();
        assert_eq!(xsltdb_xml::to_string(&run.documents[0]), "<o>7</o>");
    }

    #[test]
    fn execute_to_writer_streams_sql_tier_byte_identically() {
        let (catalog, view) = setup();
        let bound = plan_bound(
            &catalog,
            &view,
            &wrap(r#"<xsl:template match="r"><o><xsl:value-of select="v"/></o></xsl:template>"#),
            &RewriteOptions::default(),
        )
        .unwrap();
        assert_eq!(bound.tier(), Tier::Sql);
        let stats = ExecStats::new();
        let expected: String =
            bound.execute(&catalog, &stats).unwrap().iter().map(xsltdb_xml::to_string).collect();

        let streamed_stats = ExecStats::new();
        let mut buf = Vec::new();
        let run = bound
            .execute_to_writer(&catalog, &streamed_stats, &Guard::unlimited(), &mut buf)
            .unwrap();
        assert_eq!(run.tier, Tier::Sql);
        assert!(run.fallbacks.is_empty());
        assert_eq!(String::from_utf8(buf).unwrap(), expected);
        assert_eq!(run.bytes_written as usize, expected.len());
        let snap = streamed_stats.snapshot();
        assert_eq!(snap.streamed_bytes, run.bytes_written);
        assert_eq!(snap.peak_materialized_nodes, 0, "SQL tier must not build DOM");
    }

    #[test]
    fn execute_to_writer_streams_xquery_tier_byte_identically() {
        // substring() keeps the plan on the XQuery tier.
        let (catalog, view) = setup();
        let bound = plan_bound(
            &catalog,
            &view,
            &wrap(
                r#"<xsl:template match="r"><o><a/><b/><c/><xsl:value-of select="substring(v, 1, 1)"/></o></xsl:template>"#,
            ),
            &RewriteOptions::default(),
        )
        .unwrap();
        assert_eq!(bound.tier(), Tier::XQuery);
        let emission = bound.plan().emission.expect("rewritten plan carries a census");
        assert!(emission.spill_free(), "this query has no re-inspected constructors");

        let stats = ExecStats::new();
        let expected: String =
            bound.execute(&catalog, &stats).unwrap().iter().map(xsltdb_xml::to_string).collect();
        // Satellite check: the materialising path reports the result tree
        // (<o> + 3 children + text under a document = 6 nodes), not just
        // the 4-node input document.
        assert_eq!(stats.snapshot().peak_materialized_nodes, 6);

        let streamed_stats = ExecStats::new();
        let mut buf = Vec::new();
        let run = bound
            .execute_to_writer(&catalog, &streamed_stats, &Guard::unlimited(), &mut buf)
            .unwrap();
        assert_eq!(run.tier, Tier::XQuery);
        assert!(run.fallbacks.is_empty());
        assert_eq!(String::from_utf8(buf).unwrap(), expected);
        let snap = streamed_stats.snapshot();
        assert_eq!(snap.streamed_bytes, run.bytes_written);
        assert_eq!(snap.spilled_subtrees, 0, "spill-free query must not build result trees");
        assert_eq!(snap.peak_spilled_nodes, 0);
        // Only the input document is materialised on the streaming path.
        assert_eq!(snap.peak_materialized_nodes, 4);
    }

    #[test]
    fn execute_to_writer_xquery_tier_guard_trip_is_terminal() {
        let (catalog, view) = setup();
        let bound = plan_bound(
            &catalog,
            &view,
            &wrap(
                r#"<xsl:template match="r"><o><xsl:value-of select="substring(v, 1, 1)"/></o></xsl:template>"#,
            ),
            &RewriteOptions::default(),
        )
        .unwrap();
        assert_eq!(bound.tier(), Tier::XQuery);
        let guard = Guard::new(Limits::UNLIMITED.with_max_output_bytes(3));
        let mut buf = Vec::new();
        let err = bound
            .execute_to_writer(&catalog, &ExecStats::new(), &guard, &mut buf)
            .unwrap_err();
        assert!(err.is_guard_trip(), "got {err:?}");
        assert!(buf.len() as u64 <= 3, "partial bytes must stay under the cap");
    }

    #[test]
    fn execute_to_writer_falls_back_on_injected_sql_fault() {
        let (catalog, view) = setup();
        let bound = plan_bound(
            &catalog,
            &view,
            &wrap(r#"<xsl:template match="r"><o><xsl:value-of select="v"/></o></xsl:template>"#),
            &RewriteOptions::default(),
        )
        .unwrap();
        let stats = ExecStats::new();
        let expected: String =
            bound.execute(&catalog, &stats).unwrap().iter().map(xsltdb_xml::to_string).collect();

        // The fault fires at SQL-tier entry, before any byte is written, so
        // the lattice may retry on the XQuery tier cleanly.
        let guard = Guard::unlimited().with_fault(FaultPoint::SqlExec, FaultKind::Error);
        let mut buf = Vec::new();
        let run = bound.execute_to_writer(&catalog, &ExecStats::new(), &guard, &mut buf).unwrap();
        assert_eq!(run.tier, Tier::XQuery);
        assert_eq!(run.fallbacks.len(), 1);
        assert_eq!(run.fallbacks[0].tier, "sql");
        assert_eq!(String::from_utf8(buf).unwrap(), expected);
    }

    #[test]
    fn execute_to_writer_guard_trip_is_terminal_with_bounded_partial_output() {
        let (catalog, view) = setup();
        let bound = plan_bound(
            &catalog,
            &view,
            &wrap(r#"<xsl:template match="r"><o><xsl:value-of select="v"/></o></xsl:template>"#),
            &RewriteOptions::default(),
        )
        .unwrap();
        let guard = Guard::new(Limits::UNLIMITED.with_max_output_bytes(3));
        let mut buf = Vec::new();
        let err = bound
            .execute_to_writer(&catalog, &ExecStats::new(), &guard, &mut buf)
            .unwrap_err();
        assert!(err.is_guard_trip(), "got {err:?}");
        assert!(buf.len() as u64 <= 3, "partial bytes must stay under the cap");
    }

    #[test]
    fn execute_to_writer_mid_stream_write_failure_is_terminal() {
        struct FailAfter {
            budget: usize,
        }
        impl std::io::Write for FailAfter {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if buf.len() > self.budget {
                    return Err(std::io::Error::other("wire broke"));
                }
                self.budget -= buf.len();
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let (catalog, view) = setup();
        let bound = plan_bound(
            &catalog,
            &view,
            &wrap(r#"<xsl:template match="r"><o><xsl:value-of select="v"/></o></xsl:template>"#),
            &RewriteOptions::default(),
        )
        .unwrap();
        // The first chunk ("<o>") fits; a later one breaks the wire. Bytes
        // are on the wire, so no lower tier may run: the error surfaces.
        let err = bound
            .execute_to_writer(
                &catalog,
                &ExecStats::new(),
                &Guard::unlimited(),
                &mut FailAfter { budget: 3 },
            )
            .unwrap_err();
        assert!(!err.is_guard_trip());
        assert!(err.to_string().contains("wire broke"), "got {err}");
    }

    #[test]
    fn baseline_reports_materialized_nodes() {
        let (catalog, view) = setup();
        let sheet = xsltdb_xslt::compile_str(&wrap("")).unwrap();
        let stats = ExecStats::new();
        let run = no_rewrite_transform(&catalog, &view, &sheet, &stats).unwrap();
        // <r><v>7</v></r>: document + r + v + text = 4 nodes.
        assert_eq!(run.materialized_nodes, 4);
    }
}
