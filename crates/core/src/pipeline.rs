//! The tiered transformation pipeline and the no-rewrite baseline.
//!
//! Planning tries the tiers in order of the paper's architecture diagram
//! (Figure 1):
//!
//! 1. **SQL tier** — XSLT → XQuery → SQL/XML over the view's base tables
//!    (Table 7): no XML materialisation at all, value predicates through
//!    B-tree indexes;
//! 2. **XQuery tier** — XSLT → XQuery evaluated over the materialised view
//!    documents: still no template dispatch or pattern matching at run
//!    time;
//! 3. **VM tier** — the functional evaluation (materialise + XSLTVM), which
//!    is also the *no-rewrite baseline* of the paper's Figures 2 and 3.

use crate::error::PipelineError;
use crate::sqlrewrite::rewrite_to_sql;
use crate::xqgen::{rewrite, RewriteOptions, RewriteOutcome};
use std::rc::Rc;
use xsltdb_relstore::pubexpr::SqlXmlQuery;
use xsltdb_relstore::{Catalog, ExecStats, XmlView};
use xsltdb_structinfo::{struct_of_view, StructInfo};
use xsltdb_xml::Document;
use xsltdb_xquery::{evaluate_query, sequence_to_document, NodeHandle};
use xsltdb_xslt::{compile_str, transform, Stylesheet};

/// Which execution strategy a plan uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Pure SQL/XML over base tables.
    Sql,
    /// Rewritten XQuery over materialised view documents.
    XQuery,
    /// Functional evaluation (materialise + XSLTVM) — the no-rewrite path.
    Vm,
}

/// A planned transformation of an XMLType view by a stylesheet.
pub struct TransformPlan {
    pub tier: Tier,
    pub sheet: Stylesheet,
    pub view: XmlView,
    /// Present on the SQL and XQuery tiers.
    pub rewrite: Option<RewriteOutcome>,
    /// Present on the SQL tier.
    pub sql: Option<SqlXmlQuery>,
    /// Why the plan fell back below the SQL tier, if it did.
    pub fallback_reason: Option<String>,
}

/// Plan the transformation of every row of `view` by `stylesheet_src`.
pub fn plan_transform(
    view: &XmlView,
    stylesheet_src: &str,
    opts: &RewriteOptions,
) -> Result<TransformPlan, PipelineError> {
    let sheet = compile_str(stylesheet_src)?;
    plan_compiled(view, sheet, opts)
}

/// Plan with a pre-compiled stylesheet.
pub fn plan_compiled(
    view: &XmlView,
    sheet: Stylesheet,
    opts: &RewriteOptions,
) -> Result<TransformPlan, PipelineError> {
    let info: StructInfo = match struct_of_view(view) {
        Ok(i) => i,
        Err(e) => {
            return Ok(TransformPlan {
                tier: Tier::Vm,
                sheet,
                view: view.clone(),
                rewrite: None,
                sql: None,
                fallback_reason: Some(e.to_string()),
            })
        }
    };
    match rewrite(&sheet, &info, opts) {
        Ok(outcome) => match rewrite_to_sql(&outcome.query, &info) {
            Ok(sql) => Ok(TransformPlan {
                tier: Tier::Sql,
                sheet,
                view: view.clone(),
                rewrite: Some(outcome),
                sql: Some(sql),
                fallback_reason: None,
            }),
            Err(e) => Ok(TransformPlan {
                tier: Tier::XQuery,
                sheet,
                view: view.clone(),
                rewrite: Some(outcome),
                sql: None,
                fallback_reason: Some(e.to_string()),
            }),
        },
        Err(e) => Ok(TransformPlan {
            tier: Tier::Vm,
            sheet,
            view: view.clone(),
            rewrite: None,
            sql: None,
            fallback_reason: Some(e.to_string()),
        }),
    }
}

impl TransformPlan {
    /// Run the plan: one result document per view row.
    pub fn execute(
        &self,
        catalog: &Catalog,
        stats: &ExecStats,
    ) -> Result<Vec<Document>, PipelineError> {
        match self.tier {
            Tier::Sql => {
                let sql = self.sql.as_ref().expect("SQL tier carries a query");
                Ok(sql.execute(catalog, stats)?)
            }
            Tier::XQuery => {
                let outcome = self.rewrite.as_ref().expect("XQuery tier carries a rewrite");
                let docs = self.view.materialize(catalog, stats)?;
                let mut out = Vec::with_capacity(docs.len());
                for d in docs {
                    let input = NodeHandle::document(d);
                    let seq = evaluate_query(&outcome.query, Some(input))?;
                    out.push(sequence_to_document(&seq));
                }
                Ok(out)
            }
            Tier::Vm => no_rewrite_transform(catalog, &self.view, &self.sheet, stats)
                .map(|r| r.documents),
        }
    }
}

/// Result of the no-rewrite baseline.
pub struct BaselineRun {
    pub documents: Vec<Document>,
    /// Total nodes materialised before the XSLT processor could start — the
    /// cost the rewrite avoids.
    pub materialized_nodes: usize,
}

/// The paper's no-rewrite baseline: materialise every view row as a DOM and
/// run the XSLTVM over it.
pub fn no_rewrite_transform(
    catalog: &Catalog,
    view: &XmlView,
    sheet: &Stylesheet,
    stats: &ExecStats,
) -> Result<BaselineRun, PipelineError> {
    let docs = view.materialize(catalog, stats)?;
    let materialized_nodes = docs.iter().map(Document::node_count).sum();
    let mut out = Vec::with_capacity(docs.len());
    for d in &docs {
        out.push(transform(sheet, d)?);
    }
    Ok(BaselineRun { documents: out, materialized_nodes })
}

/// Rewrite-and-run over a plain document (DTD/XSD-derived structure): the
/// XQuery tier for inputs that do not come from a view. Falls back to the
/// VM when the rewrite fails.
pub fn transform_document(
    sheet: &Stylesheet,
    info: &StructInfo,
    doc: &Document,
    opts: &RewriteOptions,
) -> Result<(Document, Option<RewriteOutcome>), PipelineError> {
    match rewrite(sheet, info, opts) {
        Ok(outcome) => {
            let input = NodeHandle::new(Rc::new(doc.clone()), xsltdb_xml::NodeId::DOCUMENT);
            let seq = evaluate_query(&outcome.query, Some(input))?;
            Ok((sequence_to_document(&seq), Some(outcome)))
        }
        Err(_) => Ok((transform(sheet, doc)?, None)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsltdb_relstore::exec::Conjunction;
    use xsltdb_relstore::pubexpr::PubExpr;
    use xsltdb_relstore::{ColType, Datum, Table};

    fn setup() -> (Catalog, XmlView) {
        let mut t = Table::new("t", &[("v", ColType::Int)]);
        t.insert(vec![Datum::Int(7)]).unwrap();
        let mut catalog = Catalog::new();
        catalog.add_table(t);
        let view = XmlView::new(
            "vu",
            SqlXmlQuery {
                base_table: "t".into(),
                where_clause: Conjunction::default(),
                select: PubExpr::elem("r", vec![PubExpr::elem("v", vec![PubExpr::col("t", "v")])]),
            },
        );
        catalog.add_view(view.clone());
        (catalog, view)
    }

    fn wrap(body: &str) -> String {
        format!(
            r#"<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">{body}</xsl:stylesheet>"#
        )
    }

    #[test]
    fn simple_stylesheet_plans_to_sql_tier() {
        let (catalog, view) = setup();
        let plan = plan_transform(
            &view,
            &wrap(r#"<xsl:template match="r"><o><xsl:value-of select="v"/></o></xsl:template>"#),
            &RewriteOptions::default(),
        )
        .unwrap();
        assert_eq!(plan.tier, Tier::Sql);
        let stats = ExecStats::new();
        let docs = plan.execute(&catalog, &stats).unwrap();
        assert_eq!(xsltdb_xml::to_string(&docs[0]), "<o>7</o>");
    }

    #[test]
    fn untranslatable_sql_shape_falls_to_xquery_tier() {
        // substring() has no SQL translation but is fine in XQuery.
        let (catalog, view) = setup();
        let plan = plan_transform(
            &view,
            &wrap(
                r#"<xsl:template match="r"><o><xsl:value-of select="substring(v, 1, 1)"/></o></xsl:template>"#,
            ),
            &RewriteOptions::default(),
        )
        .unwrap();
        assert_eq!(plan.tier, Tier::XQuery, "{:?}", plan.fallback_reason);
        assert!(plan.fallback_reason.is_some());
        let stats = ExecStats::new();
        let docs = plan.execute(&catalog, &stats).unwrap();
        assert_eq!(xsltdb_xml::to_string(&docs[0]), "<o>7</o>");
    }

    #[test]
    fn unrewritable_stylesheet_falls_to_vm_tier() {
        let (catalog, view) = setup();
        let plan = plan_transform(
            &view,
            &wrap(
                r#"<xsl:template match="r"><o id="{generate-id(.)}"><xsl:value-of select="v"/></o></xsl:template>"#,
            ),
            &RewriteOptions::default(),
        )
        .unwrap();
        assert_eq!(plan.tier, Tier::Vm, "{:?}", plan.fallback_reason);
        let stats = ExecStats::new();
        let docs = plan.execute(&catalog, &stats).unwrap();
        assert!(xsltdb_xml::to_string(&docs[0]).contains("<o id="));
    }

    #[test]
    fn bad_stylesheet_is_a_hard_error() {
        let (_c, view) = setup();
        assert!(plan_transform(&view, "<not-xslt/>", &RewriteOptions::default()).is_err());
    }

    #[test]
    fn transform_document_uses_rewrite_when_possible() {
        let info = xsltdb_structinfo::struct_of_dtd(
            "<!ELEMENT r (v)> <!ELEMENT v (#PCDATA)>",
            "r",
        )
        .unwrap();
        let doc = xsltdb_xml::parse::parse("<r><v>9</v></r>").unwrap();
        let sheet = xsltdb_xslt::compile_str(&wrap(
            r#"<xsl:template match="r"><o><xsl:value-of select="v"/></o></xsl:template>"#,
        ))
        .unwrap();
        let (out, outcome) =
            transform_document(&sheet, &info, &doc, &RewriteOptions::default()).unwrap();
        assert!(outcome.is_some());
        assert_eq!(xsltdb_xml::to_string(&out), "<o>9</o>");
    }

    #[test]
    fn baseline_reports_materialized_nodes() {
        let (catalog, view) = setup();
        let sheet = xsltdb_xslt::compile_str(&wrap("")).unwrap();
        let stats = ExecStats::new();
        let run = no_rewrite_transform(&catalog, &view, &sheet, &stats).unwrap();
        // <r><v>7</v></r>: document + r + v + text = 4 nodes.
        assert_eq!(run.materialized_nodes, 4);
    }
}
