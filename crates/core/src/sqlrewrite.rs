//! XQuery → SQL/XML rewrite (the paper's second rewrite step, after \[3,4\]):
//! path expressions over an XMLType *publishing view* are replaced by the
//! relational columns and row sources recorded in the view-derived
//! structural information, producing a query of pure SQL/XML publishing
//! functions (Table 7 / Table 11) whose predicates the relational engine
//! can evaluate through B-tree indexes.
//!
//! Shapes the rewrite cannot map (user-defined functions, paths with no
//! column binding, non-column conditionals) return [`RewriteError`]; the
//! pipeline then runs the XQuery tier instead — rewrites degrade, they
//! never fail the transformation.
//!
//! The rewrite is **name-agnostic**: every table reference in the emitted
//! [`SqlXmlQuery`] is copied verbatim from the structural information it
//! is given. The pipeline plans against *canonical* structure
//! ([`xsltdb_structinfo::canonicalize`]), whose table names are binding
//! slots (`$t0`, `$t1`, …), so prepared SQL is slot-named and identity-free
//! — concrete tables are substituted at execute time via
//! [`xsltdb_relstore::SlotBindings`]. Nothing in this module special-cases
//! slots; rewriting over raw (concrete-named) structure emits ordinary
//! table names, which the executor's identity bindings pass through.

use crate::error::RewriteError;
use crate::xqgen::ROOT_VAR;
use std::collections::HashMap;
use xsltdb_relstore::exec::{CmpOp, ColumnCmp, Conjunction};
use xsltdb_relstore::pubexpr::{AggFunc, AggOrder, AggPredTerm, PubExpr, SqlXmlQuery};
use xsltdb_relstore::Datum;
use xsltdb_structinfo::{ContentBinding, ElemDecl, Origin, StructInfo};
use xsltdb_xpath::{Axis, NodeTest};
use xsltdb_xquery::{Clause, CompOp, PathStart, XQuery, XqExpr, XqStep};

/// Rewrite an (inline-mode) XQuery over a publishing-view structure into a
/// SQL/XML query.
pub fn rewrite_to_sql(query: &XQuery, info: &StructInfo) -> Result<SqlXmlQuery, RewriteError> {
    let Origin::View { base_table } = &info.origin else {
        return Err(RewriteError::new(
            "SQL rewrite requires view-derived structural information",
        ));
    };
    if !query.functions.is_empty() {
        return Err(RewriteError::new(
            "SQL rewrite requires a fully inlined query (no functions)",
        ));
    }
    let mut tr = SqlTr { info, env: HashMap::new() };
    // The prolog is expected to bind the input document variable.
    for v in &query.variables {
        if v.name == ROOT_VAR && v.value == XqExpr::ContextItem {
            tr.env.insert(v.name.clone(), Binding::DocRoot);
        } else {
            return Err(RewriteError::new(format!(
                "unsupported prolog variable ${}",
                v.name
            )));
        }
    }
    let select = tr.expr(&query.body)?;
    Ok(SqlXmlQuery {
        base_table: base_table.clone(),
        where_clause: Conjunction::default(),
        order_by: Vec::new(),
        select,
    })
}

#[derive(Clone)]
enum Binding<'a> {
    /// The document node of the view's per-row XML value.
    DocRoot,
    /// A node at this declaration (cardinality-One navigation).
    Decl(&'a ElemDecl),
    /// A computed text value.
    Text(PubExpr),
    /// The 1-based row number of the named table's current row in the
    /// enclosing aggregation (`for … at $p`).
    Position { table: String },
}

struct SqlTr<'a> {
    info: &'a StructInfo,
    env: HashMap<String, Binding<'a>>,
}

/// A resolved path target.
enum Resolved<'a> {
    /// A single node (chain of cardinality-One steps).
    Single(&'a ElemDecl),
    /// A repeated node backed by a row source, with residual predicate
    /// terms extracted from path predicates.
    Rows { decl: &'a ElemDecl, extra: Vec<AggPredTerm> },
    /// Rows followed by a One child (`emp/sal` under `sum()`).
    RowsChild { rows: &'a ElemDecl, extra: Vec<AggPredTerm>, child: &'a ElemDecl },
}

impl<'a> SqlTr<'a> {
    fn expr(&mut self, e: &XqExpr) -> Result<PubExpr, RewriteError> {
        match e {
            XqExpr::Annotated { expr, .. } => self.expr(expr),
            XqExpr::Empty => Ok(PubExpr::Literal(String::new())),
            XqExpr::TextContent(t) | XqExpr::StrLit(t) => Ok(PubExpr::Literal(t.clone())),
            XqExpr::NumLit(n) => {
                Ok(PubExpr::Literal(xsltdb_xpath::value::num_to_string(*n)))
            }
            XqExpr::CompText(inner) => self.expr(inner),
            XqExpr::CompComment(inner) => {
                Ok(PubExpr::Comment(Box::new(self.expr(inner)?)))
            }
            XqExpr::CompPi { target, content } => Ok(PubExpr::Pi {
                target: target.clone(),
                content: Box::new(self.expr(content)?),
            }),
            XqExpr::Seq(es) => Ok(PubExpr::Concat(
                es.iter().map(|x| self.expr(x)).collect::<Result<_, _>>()?,
            )),
            XqExpr::DirectElem { name, attrs, content } => {
                let mut a = Vec::with_capacity(attrs.len());
                for (aname, parts) in attrs {
                    let mut pieces = Vec::with_capacity(parts.len());
                    for p in parts {
                        pieces.push(match p {
                            xsltdb_xquery::AttrValuePart::Text(t) => {
                                PubExpr::Literal(t.clone())
                            }
                            xsltdb_xquery::AttrValuePart::Expr(e) => self.expr(e)?,
                        });
                    }
                    let value = if pieces.len() == 1 {
                        pieces.pop().expect("one element")
                    } else {
                        PubExpr::StrConcat(pieces)
                    };
                    a.push((aname.local.to_string(), value));
                }
                let mut children = Vec::with_capacity(content.len());
                for c in content {
                    // Computed attributes at the head of the content lift
                    // into XMLAttributes.
                    if let XqExpr::CompAttr { name, value } = c {
                        if children.is_empty() {
                            let n = self.const_string(name)?;
                            a.push((n, self.expr(value)?));
                            continue;
                        }
                        return Err(RewriteError::new(
                            "computed attribute after element content",
                        ));
                    }
                    children.push(self.expr(c)?);
                }
                Ok(PubExpr::Element { name: name.local.to_string(), attrs: a, children })
            }
            XqExpr::CompElem { name, content } => {
                let n = self.const_string(name)?;
                // Lift leading computed attributes, as in direct constructors.
                let items: Vec<&XqExpr> = match content.as_ref() {
                    XqExpr::Seq(es) => es.iter().collect(),
                    other => vec![other],
                };
                let mut attrs = Vec::new();
                let mut children = Vec::new();
                for c in items {
                    if let XqExpr::CompAttr { name, value } = c {
                        if children.is_empty() {
                            attrs.push((self.const_string(name)?, self.expr(value)?));
                            continue;
                        }
                        return Err(RewriteError::new(
                            "computed attribute after element content",
                        ));
                    }
                    children.push(self.expr(c)?);
                }
                Ok(PubExpr::Element { name: n, attrs, children })
            }
            XqExpr::Arith(op, l, r) => Ok(PubExpr::Arith {
                op: match op {
                    xsltdb_xquery::ArithOp::Add => xsltdb_relstore::ArithOp::Add,
                    xsltdb_xquery::ArithOp::Sub => xsltdb_relstore::ArithOp::Sub,
                    xsltdb_xquery::ArithOp::Mul => xsltdb_relstore::ArithOp::Mul,
                    xsltdb_xquery::ArithOp::Div => xsltdb_relstore::ArithOp::Div,
                    xsltdb_xquery::ArithOp::Mod => xsltdb_relstore::ArithOp::Mod,
                },
                left: Box::new(self.scalar(l)?),
                right: Box::new(self.scalar(r)?),
            }),
            XqExpr::Call { name, args } => self.call(name, args),
            XqExpr::Flwor { clauses, where_clause, order_by, ret } => {
                self.flwor(clauses, where_clause.as_deref(), order_by, ret)
            }
            XqExpr::If { cond, then, els } => {
                let (table, column_cmp) = self.condition(cond)?;
                Ok(PubExpr::Case {
                    cond: column_cmp,
                    table,
                    then: Box::new(self.expr(then)?),
                    els: Box::new(self.expr(els)?),
                })
            }
            XqExpr::VarRef(v) => match self.env.get(v) {
                Some(Binding::Text(p)) => Ok(p.clone()),
                Some(Binding::Decl(d)) => self.decl_text(d),
                Some(Binding::Position { table }) => {
                    Ok(PubExpr::RowNumber { table: table.clone() })
                }
                _ => Err(RewriteError::new(format!(
                    "variable ${v} has no SQL translation"
                ))),
            },
            XqExpr::Path { .. } => {
                // A bare path in content position: copy of view XML — only
                // text-bound single targets are supported.
                match self.resolve_path(e)? {
                    Resolved::Single(d) => self.decl_text(d),
                    _ => Err(RewriteError::new(
                        "copying repeated view nodes is not supported by the SQL rewrite",
                    )),
                }
            }
            other => Err(RewriteError::new(format!(
                "expression has no SQL translation: {other:?}"
            ))),
        }
    }

    /// A scalar (text-producing) operand: paths resolve to their bindings.
    fn scalar(&mut self, e: &XqExpr) -> Result<PubExpr, RewriteError> {
        match e {
            XqExpr::Path { .. } => match self.resolve_path(e)? {
                Resolved::Single(d) => self.decl_text(d),
                _ => Err(RewriteError::new("scalar operand selects repeated nodes")),
            },
            other => self.expr(other),
        }
    }

    fn const_string(&mut self, e: &XqExpr) -> Result<String, RewriteError> {
        match e {
            XqExpr::StrLit(s) => Ok(s.clone()),
            _ => Err(RewriteError::new("dynamic names have no SQL translation")),
        }
    }

    /// Text content of a declaration (its recorded publishing expression).
    fn decl_text(&self, d: &ElemDecl) -> Result<PubExpr, RewriteError> {
        match &d.content {
            ContentBinding::Pub(p) => Ok(p.clone()),
            ContentBinding::Unbound if d.children.is_empty() && !d.has_text => {
                Ok(PubExpr::Literal(String::new()))
            }
            ContentBinding::Unbound => Err(RewriteError::new(format!(
                "element <{}> has no column binding",
                d.name
            ))),
        }
    }

    fn call(&mut self, name: &str, args: &[XqExpr]) -> Result<PubExpr, RewriteError> {
        match (name, args) {
            ("fn:string", [arg]) => match arg {
                XqExpr::Path { .. } | XqExpr::VarRef(_) => match arg {
                    XqExpr::VarRef(v) => match self.env.get(v).cloned() {
                        Some(Binding::Text(p)) => Ok(p),
                        Some(Binding::Decl(d)) => self.decl_text(d),
                        Some(Binding::Position { table }) => {
                            Ok(PubExpr::RowNumber { table })
                        }
                        _ => Err(RewriteError::new(format!("${v} unbound"))),
                    },
                    _ => match self.resolve_path(arg)? {
                        Resolved::Single(d) => self.decl_text(d),
                        _ => Err(RewriteError::new(
                            "fn:string over repeated nodes is not supported",
                        )),
                    },
                },
                XqExpr::StrLit(s) => Ok(PubExpr::Literal(s.clone())),
                other => self.expr(other),
            },
            ("fn:concat", args) => Ok(PubExpr::StrConcat(
                args.iter().map(|a| self.call("fn:string", std::slice::from_ref(a)))
                    .collect::<Result<_, _>>()?,
            )),
            ("fn:count", [arg]) => match self.resolve_path(arg)? {
                Resolved::Rows { decl, extra } => {
                    let rs = decl.row_source.as_ref().ok_or_else(|| {
                        RewriteError::new("count() target has no row source")
                    })?;
                    let mut predicate = rs.predicate.clone();
                    predicate.extend(extra);
                    Ok(PubExpr::ScalarAgg {
                        func: AggFunc::Count,
                        column: None,
                        table: rs.table.clone(),
                        predicate,
                    })
                }
                _ => Err(RewriteError::new("count() needs a repeated view node")),
            },
            ("fn:sum", [arg]) => match self.resolve_path(arg)? {
                Resolved::RowsChild { rows, extra, child } => {
                    let rs = rows.row_source.as_ref().ok_or_else(|| {
                        RewriteError::new("sum() target has no row source")
                    })?;
                    let column = self.column_of(child)?;
                    let mut predicate = rs.predicate.clone();
                    predicate.extend(extra);
                    Ok(PubExpr::ScalarAgg {
                        func: AggFunc::Sum,
                        column: Some(column),
                        table: rs.table.clone(),
                        predicate,
                    })
                }
                _ => Err(RewriteError::new(
                    "sum() needs a column under a repeated view node",
                )),
            },
            _ => Err(RewriteError::new(format!(
                "function {name}() has no SQL translation"
            ))),
        }
    }

    /// The column a declaration's text is bound to (for aggregates and
    /// predicates).
    fn column_of(&self, d: &ElemDecl) -> Result<String, RewriteError> {
        match &d.content {
            ContentBinding::Pub(PubExpr::ColumnRef { column, .. }) => Ok(column.clone()),
            _ => Err(RewriteError::new(format!(
                "element <{}> is not bound to a single column",
                d.name
            ))),
        }
    }

    fn flwor(
        &mut self,
        clauses: &[Clause],
        where_clause: Option<&XqExpr>,
        order_by: &[xsltdb_xquery::OrderSpec],
        ret: &XqExpr,
    ) -> Result<PubExpr, RewriteError> {
        let Some((first, rest)) = clauses.split_first() else {
            if where_clause.is_some() {
                return Err(RewriteError::new("where without for has no SQL translation"));
            }
            return self.expr(ret);
        };
        match first {
            Clause::Let { var, value } => {
                let binding = match value {
                    XqExpr::Path { .. } => match self.resolve_path(value)? {
                        Resolved::Single(d) => Binding::Decl(d),
                        _ => {
                            return Err(RewriteError::new(
                                "let over repeated nodes is not supported",
                            ))
                        }
                    },
                    other => Binding::Text(self.expr(other)?),
                };
                let saved = self.env.insert(var.clone(), binding);
                let inner = self.flwor_inner(rest, where_clause, order_by, ret);
                restore(&mut self.env, var, saved);
                inner
            }
            Clause::For { var, at, source } => {
                // XQuery assigns `at` positions *before* the same FLWOR's
                // `order by` and `where` run; SQL numbers rows after
                // ordering and filtering. Sorted positional loops therefore
                // arrive in the nested shape
                // `for $v at $p in (for $s in SRC order by K return $s)`,
                // which this arm unwraps; `at` combined with a same-level
                // `order by` or `where` would diverge between tiers.
                if at.is_some() && !order_by.is_empty() {
                    return Err(RewriteError::new(
                        "`at` with `order by` in one FLWOR has no SQL translation",
                    ));
                }
                if at.is_some() && where_clause.is_some() {
                    return Err(RewriteError::new(
                        "`at` with `where` in one FLWOR has no SQL translation",
                    ));
                }
                let (src, inner_var, sort_specs): (
                    &XqExpr,
                    Option<&String>,
                    &[xsltdb_xquery::OrderSpec],
                ) = match source {
                    XqExpr::Flwor {
                        clauses: ic,
                        where_clause: None,
                        order_by: ob,
                        ret: iret,
                    } if !ob.is_empty() => match &ic[..] {
                        [Clause::For { var: iv, at: None, source: isrc }]
                            if **iret == XqExpr::VarRef(iv.clone()) =>
                        {
                            (isrc, Some(iv), ob.as_slice())
                        }
                        _ => {
                            return Err(RewriteError::new(
                                "nested for-clause source is not a sorted row source",
                            ))
                        }
                    },
                    other => (other, None, order_by),
                };
                let Resolved::Rows { decl, mut extra } = self.resolve_path(src)?
                else {
                    return Err(RewriteError::new(
                        "for-clause source is not a repeated view node",
                    ));
                };
                let rs = decl.row_source.as_ref().ok_or_else(|| {
                    RewriteError::new("for-clause target has no row source")
                })?;
                let table = rs.table.clone();
                let saved = self.env.insert(var.clone(), Binding::Decl(decl));
                // The inner sort variable resolves order keys; the `at`
                // variable becomes the SQL row number over the same rows.
                let saved_inner = inner_var
                    .map(|iv| self.env.insert(iv.clone(), Binding::Decl(decl)));
                let saved_at = at.as_ref().map(|p| {
                    self.env
                        .insert(p.clone(), Binding::Position { table: table.clone() })
                });
                let result = (|| -> Result<PubExpr, RewriteError> {
                    if let Some(w) = where_clause {
                        let mut terms = self.where_terms(w).map_err(|_| {
                            RewriteError::new("where clause is not a column comparison")
                        })?;
                        extra.append(&mut terms);
                    }
                    let mut orders = Vec::new();
                    for o in sort_specs {
                        let col = match self.resolve_path(&o.key) {
                            Ok(Resolved::Single(d)) => self.column_of(d)?,
                            _ => {
                                return Err(RewriteError::new(
                                    "order-by key is not a bound column",
                                ))
                            }
                        };
                        orders.push(AggOrder {
                            column: col,
                            descending: o.descending,
                            numeric: o.numeric,
                        });
                    }
                    let body = self.flwor_inner(rest, None, &[], ret)?;
                    let mut predicate = rs.predicate.clone();
                    predicate.extend(extra);
                    Ok(PubExpr::Agg {
                        table: table.clone(),
                        predicate,
                        order_by: orders,
                        body: Box::new(body),
                    })
                })();
                restore(&mut self.env, var, saved);
                if let Some(iv) = inner_var {
                    restore(&mut self.env, iv, saved_inner.flatten());
                }
                if let Some(p) = at {
                    restore(&mut self.env, p, saved_at.flatten());
                }
                result
            }
        }
    }

    fn flwor_inner(
        &mut self,
        rest: &[Clause],
        where_clause: Option<&XqExpr>,
        order_by: &[xsltdb_xquery::OrderSpec],
        ret: &XqExpr,
    ) -> Result<PubExpr, RewriteError> {
        if rest.is_empty() && where_clause.is_none() && order_by.is_empty() {
            self.expr(ret)
        } else {
            self.flwor(rest, where_clause, order_by, ret)
        }
    }

    /// Translate `where` conjuncts into predicate terms over `decl`'s row.
    fn where_terms(&mut self, w: &XqExpr) -> Result<Vec<AggPredTerm>, RewriteError> {
        match w {
            XqExpr::And(a, b) => {
                let mut t = self.where_terms(a)?;
                t.extend(self.where_terms(b)?);
                Ok(t)
            }
            XqExpr::Compare(op, l, r) => {
                let cmp = self.column_comparison(*op, l, r)?;
                Ok(vec![AggPredTerm::Const(cmp)])
            }
            _ => Err(RewriteError::new("unsupported where clause shape")),
        }
    }

    /// An `xsl:if` / `xsl:when` condition as a single column comparison,
    /// returning the bound table too.
    fn condition(&mut self, cond: &XqExpr) -> Result<(String, ColumnCmp), RewriteError> {
        match cond {
            XqExpr::Compare(op, l, r) => {
                let (table, cmp) = self.column_comparison_with_table(*op, l, r)?;
                Ok((table, cmp))
            }
            _ => Err(RewriteError::new(
                "conditional is not a column comparison",
            )),
        }
    }

    fn column_comparison(
        &mut self,
        op: CompOp,
        l: &XqExpr,
        r: &XqExpr,
    ) -> Result<ColumnCmp, RewriteError> {
        Ok(self.column_comparison_with_table(op, l, r)?.1)
    }

    fn column_comparison_with_table(
        &mut self,
        op: CompOp,
        l: &XqExpr,
        r: &XqExpr,
    ) -> Result<(String, ColumnCmp), RewriteError> {
        // Normalise to column-op-literal.
        let (path, lit, op) = match (l, r) {
            (p @ (XqExpr::Path { .. } | XqExpr::VarRef(_)), lit) => (p, lit, op),
            (lit, p @ (XqExpr::Path { .. } | XqExpr::VarRef(_))) => (p, lit, flip(op)),
            _ => return Err(RewriteError::new("comparison has no column side")),
        };
        let (table, column) = match path {
            XqExpr::VarRef(v) => match self.env.get(v) {
                Some(Binding::Decl(d)) => self.table_column_of(d)?,
                _ => return Err(RewriteError::new(format!("${v} is not a column"))),
            },
            _ => match self.resolve_path(path)? {
                Resolved::Single(d) => self.table_column_of(d)?,
                _ => {
                    return Err(RewriteError::new(
                        "comparison path is not a single column",
                    ))
                }
            },
        };
        let value = match lit {
            XqExpr::NumLit(n) => Datum::Num(*n),
            XqExpr::StrLit(s) => Datum::Text(s.clone()),
            _ => return Err(RewriteError::new("comparison literal is not constant")),
        };
        Ok((
            table,
            ColumnCmp { column, op: cmp_op(op), value },
        ))
    }

    fn table_column_of(&self, d: &ElemDecl) -> Result<(String, String), RewriteError> {
        match &d.content {
            ContentBinding::Pub(PubExpr::ColumnRef { table, column }) => {
                Ok((table.clone(), column.clone()))
            }
            _ => Err(RewriteError::new(format!(
                "element <{}> is not bound to a column",
                d.name
            ))),
        }
    }

    /// Resolve a path expression against the view structure.
    fn resolve_path(&mut self, e: &XqExpr) -> Result<Resolved<'a>, RewriteError> {
        let (start, steps): (Binding<'a>, &[XqStep]) = match e {
            XqExpr::Path { start, steps } => {
                let base = match start {
                    PathStart::Expr(b) => match b.as_ref() {
                        XqExpr::VarRef(v) => self
                            .env
                            .get(v)
                            .cloned()
                            .ok_or_else(|| RewriteError::new(format!("${v} unbound")))?,
                        _ => {
                            return Err(RewriteError::new(
                                "path base is not a variable",
                            ))
                        }
                    },
                    PathStart::Root => Binding::DocRoot,
                    PathStart::Context => {
                        return Err(RewriteError::new(
                            "context-relative paths are not supported here",
                        ))
                    }
                };
                (base, steps)
            }
            XqExpr::VarRef(v) => (
                self.env
                    .get(v)
                    .cloned()
                    .ok_or_else(|| RewriteError::new(format!("${v} unbound")))?,
                &[],
            ),
            _ => return Err(RewriteError::new("not a path expression")),
        };

        let mut cur: &'a ElemDecl = match start {
            Binding::DocRoot => {
                // First step must select the root element.
                let Some((first, rest)) = steps.split_first() else {
                    return Err(RewriteError::new("document node is not a column"));
                };
                let name = step_name(first)?;
                if name != self.info.root.name {
                    return Err(RewriteError::new(format!(
                        "path selects <{name}>, the view root is <{}>",
                        self.info.root.name
                    )));
                }
                if !first.predicates.is_empty() {
                    return Err(RewriteError::new("predicates on the view root"));
                }
                return self.resolve_from(&self.info.root, rest);
            }
            Binding::Decl(d) => d,
            Binding::Text(_) => {
                return Err(RewriteError::new("cannot navigate into a text value"))
            }
            Binding::Position { .. } => {
                return Err(RewriteError::new("cannot navigate into a position value"))
            }
        };
        if steps.is_empty() {
            return Ok(Resolved::Single(cur));
        }
        let r = self.resolve_from(cur, steps)?;
        cur = match &r {
            Resolved::Single(d) => d,
            _ => return Ok(r),
        };
        Ok(Resolved::Single(cur))
    }

    fn resolve_from(
        &self,
        mut cur: &'a ElemDecl,
        steps: &[XqStep],
    ) -> Result<Resolved<'a>, RewriteError> {
        for (i, step) in steps.iter().enumerate() {
            let name = step_name(step)?;
            let child = cur
                .child(&name)
                .ok_or_else(|| {
                    RewriteError::new(format!("<{}> has no child <{name}>", cur.name))
                })?;
            if child.card.is_many() {
                // Residual predicates on the repeated step become row
                // predicates.
                let mut extra = Vec::new();
                for p in &step.predicates {
                    extra.push(AggPredTerm::Const(
                        self.predicate_term(p, &child.decl)?,
                    ));
                }
                let rest = &steps[i + 1..];
                if rest.is_empty() {
                    return Ok(Resolved::Rows { decl: &child.decl, extra });
                }
                if rest.len() == 1 && rest[0].predicates.is_empty() {
                    let cname = step_name(&rest[0])?;
                    let gchild = child.decl.child(&cname).ok_or_else(|| {
                        RewriteError::new(format!(
                            "<{}> has no child <{cname}>",
                            child.decl.name
                        ))
                    })?;
                    return Ok(Resolved::RowsChild {
                        rows: &child.decl,
                        extra,
                        child: &gchild.decl,
                    });
                }
                return Err(RewriteError::new(
                    "deep navigation below a repeated node is not supported",
                ));
            }
            if !step.predicates.is_empty() {
                return Err(RewriteError::new(
                    "predicates on single-occurrence steps are not supported",
                ));
            }
            cur = &child.decl;
        }
        Ok(Resolved::Single(cur))
    }

    /// A predicate on a repeated step: `child-column op literal` or
    /// `. op literal`.
    fn predicate_term(
        &self,
        p: &XqExpr,
        rows_decl: &'a ElemDecl,
    ) -> Result<ColumnCmp, RewriteError> {
        match p {
            XqExpr::Compare(op, l, r) => {
                let (path, lit, op) = match (l.as_ref(), r.as_ref()) {
                    (pp @ XqExpr::Path { .. }, lit) => (Some(pp), lit, *op),
                    (XqExpr::ContextItem, lit) => (None, lit, *op),
                    (lit, pp @ XqExpr::Path { .. }) => (Some(pp), lit, flip(*op)),
                    (lit, XqExpr::ContextItem) => (None, lit, flip(*op)),
                    _ => {
                        return Err(RewriteError::new(
                            "row predicate is not a column comparison",
                        ))
                    }
                };
                let column = match path {
                    None => match &rows_decl.content {
                        ContentBinding::Pub(PubExpr::ColumnRef { column, .. }) => {
                            column.clone()
                        }
                        _ => {
                            return Err(RewriteError::new(
                                "`.` in a predicate needs a column-bound element",
                            ))
                        }
                    },
                    Some(XqExpr::Path { start: PathStart::Context, steps }) => {
                        if steps.len() != 1 {
                            return Err(RewriteError::new(
                                "deep predicate paths are not supported",
                            ));
                        }
                        let name = step_name(&steps[0])?;
                        let child = rows_decl.child(&name).ok_or_else(|| {
                            RewriteError::new(format!(
                                "<{}> has no child <{name}>",
                                rows_decl.name
                            ))
                        })?;
                        match &child.decl.content {
                            ContentBinding::Pub(PubExpr::ColumnRef { column, .. }) => {
                                column.clone()
                            }
                            _ => {
                                return Err(RewriteError::new(format!(
                                    "<{name}> is not bound to a column"
                                )))
                            }
                        }
                    }
                    Some(_) => {
                        return Err(RewriteError::new(
                            "row predicate path is not context-relative",
                        ))
                    }
                };
                let value = match lit {
                    XqExpr::NumLit(n) => Datum::Num(*n),
                    XqExpr::StrLit(s) => Datum::Text(s.clone()),
                    _ => return Err(RewriteError::new("predicate literal is not constant")),
                };
                Ok(ColumnCmp { column, op: cmp_op(op), value })
            }
            _ => Err(RewriteError::new("unsupported row predicate shape")),
        }
    }
}

fn restore<'a>(
    env: &mut HashMap<String, Binding<'a>>,
    var: &str,
    saved: Option<Binding<'a>>,
) {
    match saved {
        Some(b) => {
            env.insert(var.to_string(), b);
        }
        None => {
            env.remove(var);
        }
    }
}

fn step_name(s: &XqStep) -> Result<String, RewriteError> {
    if s.axis != Axis::Child {
        return Err(RewriteError::new(format!(
            "axis {} has no SQL translation",
            s.axis.name()
        )));
    }
    match &s.test {
        NodeTest::Name { local, .. } => Ok(local.clone()),
        other => Err(RewriteError::new(format!(
            "node test {other} has no SQL translation"
        ))),
    }
}

fn cmp_op(op: CompOp) -> CmpOp {
    match op {
        CompOp::Eq => CmpOp::Eq,
        CompOp::Ne => CmpOp::Ne,
        CompOp::Lt => CmpOp::Lt,
        CompOp::Le => CmpOp::Le,
        CompOp::Gt => CmpOp::Gt,
        CompOp::Ge => CmpOp::Ge,
    }
}

fn flip(op: CompOp) -> CompOp {
    match op {
        CompOp::Lt => CompOp::Gt,
        CompOp::Le => CompOp::Ge,
        CompOp::Gt => CompOp::Lt,
        CompOp::Ge => CompOp::Le,
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsltdb_relstore::pubexpr::SqlXmlQuery;
    use xsltdb_relstore::XmlView;
    use xsltdb_structinfo::struct_of_view;
    use xsltdb_xquery::parse_query;

    /// A small single-table view: <r><a>col a</a><items><i><v>col v</v></i>*</items></r>
    fn view_info() -> StructInfo {
        let view = XmlView::new(
            "vu",
            SqlXmlQuery {
                base_table: "base".into(),
                where_clause: Conjunction::default(),
                order_by: Vec::new(),
                select: PubExpr::elem(
                    "r",
                    vec![
                        PubExpr::elem("a", vec![PubExpr::col("base", "a")]),
                        PubExpr::elem(
                            "items",
                            vec![PubExpr::Agg {
                                table: "item".into(),
                                predicate: vec![AggPredTerm::Correlate {
                                    inner_column: "rid".into(),
                                    outer_table: "base".into(),
                                    outer_column: "id".into(),
                                }],
                                order_by: Vec::new(),
                                body: Box::new(PubExpr::elem(
                                    "i",
                                    vec![PubExpr::elem("v", vec![PubExpr::col("item", "v")])],
                                )),
                            }],
                        ),
                    ],
                ),
            },
        );
        struct_of_view(&view).unwrap()
    }

    fn rewrite_src(src: &str) -> Result<SqlXmlQuery, RewriteError> {
        let q = parse_query(src).unwrap();
        rewrite_to_sql(&q, &view_info())
    }

    #[test]
    fn scalar_path_becomes_column() {
        let sql = rewrite_src(
            "declare variable $var000 := .; <o>{fn:string($var000/r/a)}</o>",
        )
        .unwrap();
        match &sql.select {
            PubExpr::Element { children, .. } => {
                assert_eq!(children[0], PubExpr::col("base", "a"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn canonical_info_yields_slot_named_sql() {
        // The same rewrite over *canonicalised* structure emits the SQL the
        // plan cache actually stores: tables are binding slots, not names.
        let (canon, template) = xsltdb_structinfo::canonicalize(&view_info());
        let q = parse_query(
            "declare variable $var000 := .; \
             for $i in $var000/r/items/i return <x>{fn:string($i/v)}</x>",
        )
        .unwrap();
        let sql = rewrite_to_sql(&q, &canon.info).unwrap();
        assert_eq!(sql.base_table, "$t0");
        match &sql.select {
            PubExpr::Agg { table, predicate, .. } => {
                assert_eq!(table, "$t1");
                assert!(predicate.iter().any(|t| matches!(
                    t,
                    AggPredTerm::Correlate { outer_table, .. } if outer_table == "$t0"
                )));
            }
            other => panic!("{other:?}"),
        }
        // The binding template maps the slots back to the concrete tables.
        assert_eq!(template.tables, vec!["base".to_string(), "item".to_string()]);
    }

    #[test]
    fn for_over_many_becomes_agg_with_predicate() {
        let sql = rewrite_src(
            "declare variable $var000 := .; \
             for $i in $var000/r/items/i[v > 5] return <x>{fn:string($i/v)}</x>",
        )
        .unwrap();
        match &sql.select {
            PubExpr::Agg { table, predicate, .. } => {
                assert_eq!(table, "item");
                // correlation + residual value predicate
                assert_eq!(predicate.len(), 2);
                assert!(predicate.iter().any(|t| matches!(
                    t,
                    AggPredTerm::Const(c) if c.column == "v" && c.op == CmpOp::Gt
                )));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn count_and_sum_become_scalar_aggs() {
        let sql = rewrite_src(
            "declare variable $var000 := .; \
             <s><c>{fn:count($var000/r/items/i)}</c><t>{fn:sum($var000/r/items/i/v)}</t></s>",
        )
        .unwrap();
        let text = xsltdb_relstore::sql_text(&SqlXmlQuery {
            base_table: sql.base_table.clone(),
            where_clause: Conjunction::default(),
            order_by: Vec::new(),
            select: sql.select.clone(),
        });
        assert!(text.contains("count(*)"), "{text}");
        assert!(text.contains("sum(V)"), "{text}");
    }

    #[test]
    fn conditional_becomes_case() {
        let sql = rewrite_src(
            "declare variable $var000 := .; \
             for $i in $var000/r/items/i return \
             (if ($i/v > 10) then <big/> else <small/>)",
        )
        .unwrap();
        match &sql.select {
            PubExpr::Agg { body, .. } => {
                assert!(matches!(**body, PubExpr::Case { .. }), "{body:?}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn where_clause_becomes_predicate() {
        let sql = rewrite_src(
            "declare variable $var000 := .; \
             for $i in $var000/r/items/i where $i/v = 3 return <x/>",
        )
        .unwrap();
        match &sql.select {
            PubExpr::Agg { predicate, .. } => {
                assert!(predicate.iter().any(|t| matches!(
                    t,
                    AggPredTerm::Const(c) if c.column == "v" && c.op == CmpOp::Eq
                )));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn order_by_maps_to_agg_order() {
        let sql = rewrite_src(
            "declare variable $var000 := .; \
             for $i in $var000/r/items/i order by $i/v descending return <x/>",
        )
        .unwrap();
        match &sql.select {
            PubExpr::Agg { order_by, .. } => {
                assert_eq!(order_by.len(), 1);
                assert_eq!(order_by[0].column, "v");
                assert!(order_by[0].descending);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn functions_are_rejected() {
        let q = parse_query(
            "declare variable $var000 := .; \
             declare function local:f($n) { $n }; local:f($var000)",
        )
        .unwrap();
        assert!(rewrite_to_sql(&q, &view_info()).is_err());
    }

    #[test]
    fn unknown_child_is_rejected() {
        assert!(rewrite_src(
            "declare variable $var000 := .; fn:string($var000/r/nonexistent)"
        )
        .is_err());
    }

    #[test]
    fn wrong_root_is_rejected() {
        assert!(rewrite_src(
            "declare variable $var000 := .; fn:string($var000/other/a)"
        )
        .is_err());
    }

    #[test]
    fn non_view_origin_rejected() {
        let q = parse_query("declare variable $var000 := .; <a/>").unwrap();
        let mut info = view_info();
        info.origin = Origin::Dtd;
        assert!(rewrite_to_sql(&q, &info).is_err());
    }

    #[test]
    fn concat_becomes_strconcat() {
        let sql = rewrite_src(
            "declare variable $var000 := .; \
             <o>{fn:concat(\"x: \", fn:string($var000/r/a))}</o>",
        )
        .unwrap();
        match &sql.select {
            PubExpr::Element { children, .. } => {
                assert!(matches!(children[0], PubExpr::StrConcat(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn flipped_comparison_normalised() {
        let sql = rewrite_src(
            "declare variable $var000 := .; \
             for $i in $var000/r/items/i[10 > v] return <x/>",
        )
        .unwrap();
        match &sql.select {
            PubExpr::Agg { predicate, .. } => {
                assert!(predicate.iter().any(|t| matches!(
                    t,
                    AggPredTerm::Const(c) if c.column == "v" && c.op == CmpOp::Lt
                )));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn let_binding_resolves() {
        let sql = rewrite_src(
            "declare variable $var000 := .; \
             let $r := $var000/r return <o>{fn:string($r/a)}</o>",
        )
        .unwrap();
        match &sql.select {
            PubExpr::Element { children, .. } => {
                assert_eq!(children[0], PubExpr::col("base", "a"));
            }
            other => panic!("{other:?}"),
        }
    }
}
