//! Integration of the §7.4 storage models with the full rewrite pipeline:
//! the same dbonerow transformation over all storage configurations must
//! agree with the functional evaluation, and the counters must show the
//! index doing the selection work.

use xsltdb::docexec::execute_indexed;
use xsltdb::xqgen::{rewrite, RewriteOptions};
use xsltdb_relstore::{DocStorageModel, ExecStats, XmlDocStore};
use xsltdb_xml::to_string;
use xsltdb_xslt::{compile_str, transform};
use xsltdb_xsltmark::{db_struct_info, db_xml, dbonerow_stylesheet, existing_id};

#[test]
fn all_storage_models_agree_with_functional_evaluation() {
    let rows = 120;
    let xml = db_xml(rows, 0xCAFE);
    let sheet = compile_str(&dbonerow_stylesheet(existing_id(rows))).unwrap();
    let outcome = rewrite(&sheet, &db_struct_info(), &RewriteOptions::default()).unwrap();
    assert!(outcome.fully_inlined());

    let parsed = xsltdb_xml::parse_xml(&xml).unwrap();
    let expected = to_string(&transform(&sheet, &parsed).unwrap());

    for (model, indexed) in [
        (DocStorageModel::Tree, true),
        (DocStorageModel::Tree, false),
        (DocStorageModel::Clob, true),
        (DocStorageModel::Clob, false),
    ] {
        let mut store = XmlDocStore::new(model, indexed);
        let idx = store.insert(&xml).unwrap();
        let stats = ExecStats::new();
        let out = execute_indexed(&outcome.query, &store, idx, &stats).unwrap();
        assert_eq!(
            to_string(&out),
            expected,
            "model {model:?} indexed={indexed} diverges"
        );
        if indexed {
            assert_eq!(stats.snapshot().index_probes, 1, "{model:?}");
            assert_eq!(stats.snapshot().index_rows, 1, "{model:?}");
        } else {
            assert_eq!(stats.snapshot().index_probes, 0, "{model:?}");
        }
    }
}

#[test]
fn clob_model_counts_reparses_per_query() {
    let xml = db_xml(30, 1);
    let sheet = compile_str(&dbonerow_stylesheet(existing_id(30))).unwrap();
    let outcome = rewrite(&sheet, &db_struct_info(), &RewriteOptions::default()).unwrap();
    let mut store = XmlDocStore::new(DocStorageModel::Clob, true);
    let idx = store.insert(&xml).unwrap();
    let stats = ExecStats::new();
    for _ in 0..3 {
        execute_indexed(&outcome.query, &store, idx, &stats).unwrap();
    }
    assert_eq!(store.reparses.get(), 3, "one materialisation per query");

    let mut tree = XmlDocStore::new(DocStorageModel::Tree, true);
    let idx = tree.insert(&xml).unwrap();
    for _ in 0..3 {
        execute_indexed(&outcome.query, &tree, idx, &stats).unwrap();
    }
    assert_eq!(tree.reparses.get(), 0, "tree storage never rematerialises");
}

#[test]
fn multiple_documents_probe_only_their_own_hits() {
    // Two documents in one store: the probe filters hits by document.
    let a = "<table><row><id>1</id><firstname>F</firstname><lastname>X</lastname>\
             <street>s</street><city>c</city><state>CA</state><zip>90000</zip></row></table>";
    let b = "<table><row><id>1</id><firstname>G</firstname><lastname>Y</lastname>\
             <street>s</street><city>c</city><state>NY</state><zip>10000</zip></row></table>";
    let sheet = compile_str(&dbonerow_stylesheet(1)).unwrap();
    let outcome = rewrite(&sheet, &db_struct_info(), &RewriteOptions::default()).unwrap();
    let mut store = XmlDocStore::new(DocStorageModel::Tree, true);
    let ia = store.insert(a).unwrap();
    let ib = store.insert(b).unwrap();
    let stats = ExecStats::new();
    let out_a = to_string(&execute_indexed(&outcome.query, &store, ia, &stats).unwrap());
    let out_b = to_string(&execute_indexed(&outcome.query, &store, ib, &stats).unwrap());
    assert!(out_a.contains("X, F"), "{out_a}");
    assert!(out_b.contains("Y, G"), "{out_b}");
}
