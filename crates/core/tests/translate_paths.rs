//! Wider coverage of the XPath→XQuery translation over expressions that
//! appear in real stylesheets, round-tripped through the XQuery parser and
//! checked for evaluation agreement with the XPath engine.

use std::rc::Rc;
use xsltdb::translate::{xpath_to_xq, CtxRef, XlatCtx};
use xsltdb_xml::{parse_xml, NodeId};
use xsltdb_xpath::eval::{Ctx, Env};
use xsltdb_xpath::parse_expr;
use xsltdb_xquery::{evaluate_query_with_vars, Item, NodeHandle, VarDecl, XQuery, XqExpr};

const DOC: &str = "<dept><dname>ACCOUNTING</dname><employees>\
    <emp><empno>1</empno><sal>100</sal></emp>\
    <emp><empno>2</empno><sal>900</sal></emp>\
    </employees></dept>";

/// Evaluate `src` with XPath 1.0 (context = root element), and the
/// translated XQuery (current-node variable bound to the same element);
/// both string-ified results must agree.
fn agree(src: &str) {
    let doc = parse_xml(DOC).unwrap();
    let root = doc.root_element().unwrap();

    let env = Env::default();
    let ctx = Ctx::new(&doc, root, &env);
    let xp = parse_expr(src).unwrap();
    let xpath_val = xsltdb_xpath::evaluate(&xp, &ctx).unwrap().string(&doc);

    let cx = XlatCtx::new(CtxRef::var("cur"), "var000");
    let xq = xpath_to_xq(&xp, &cx).unwrap();
    // Parse the pretty-printed form back to confirm syntactic validity.
    let printed = xsltdb_xquery::pretty(&xq);
    xsltdb_xquery::parse_xq_expr(&printed)
        .unwrap_or_else(|e| panic!("translated expr does not reparse: {printed}\n{e}"));

    let rc = Rc::new(doc);
    let q = XQuery {
        variables: vec![VarDecl { name: "var000".into(), value: XqExpr::ContextItem }],
        functions: Vec::new(),
        body: XqExpr::call("fn:string", vec![xq]),
    };
    let seq = evaluate_query_with_vars(
        &q,
        Some(NodeHandle::new(Rc::clone(&rc), NodeId::DOCUMENT)),
        vec![("cur".into(), vec![Item::Node(NodeHandle::new(rc, root))])],
    )
    .unwrap();
    let xq_val = seq
        .first()
        .map(|i| i.to_string_value())
        .unwrap_or_default();
    assert_eq!(xq_val, xpath_val, "disagreement on `{src}` (translated: {printed})");
}

#[test]
fn paths_agree() {
    for src in [
        "dname",
        "employees/emp/empno",
        ".",
        "/dept/dname",
        "//sal",
        "employees/emp[sal > 500]/empno",
        "employees/emp[2]/sal",
        "employees/emp[last()]/empno",
    ] {
        agree(src);
    }
}

#[test]
fn functions_agree() {
    for src in [
        "string(dname)",
        "concat(dname, '!')",
        "count(employees/emp)",
        "sum(employees/emp/sal)",
        "substring(dname, 2, 3)",
        "string-length(dname)",
        "normalize-space(concat(' ', dname, ' '))",
        "translate(dname, 'ACG', 'acg')",
        "contains(dname, 'COUNT')",
        "starts-with(dname, 'ACC')",
        "not(employees/emp)",
        "floor(sum(employees/emp/sal) div count(employees/emp))",
    ] {
        agree(src);
    }
}

#[test]
fn operators_agree() {
    for src in [
        "1 + 2 * 3 - 4",
        "10 div 4",
        "10 mod 3",
        "sum(employees/emp/sal) > 500",
        "dname = 'ACCOUNTING'",
        "dname != 'X' and count(employees/emp) = 2",
        "count(employees/emp) = 1 or dname = 'ACCOUNTING'",
        "-count(employees/emp)",
    ] {
        agree(src);
    }
}

#[test]
fn unions_and_axes_agree() {
    for src in [
        "dname | employees",
        "employees/emp/empno | employees/emp/sal",
        "employees/emp/sal/..",
    ] {
        agree(src);
    }
}
