//! Focused tests of the template execution graph (paper §4.3): state
//! identity, transition ordering, call-site separation and mode handling.

use xsltdb::pe::partial_evaluate;
use xsltdb_structinfo::{struct_of_dtd, SampleNode, StructInfo};
use xsltdb_xslt::compile_str;

fn info() -> StructInfo {
    struct_of_dtd(
        r#"<!ELEMENT r (a, b)>
           <!ELEMENT a (#PCDATA)>
           <!ELEMENT b (#PCDATA)>"#,
        "r",
    )
    .unwrap()
}

fn wrap(body: &str) -> String {
    format!(
        r#"<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">{body}</xsl:stylesheet>"#
    )
}

#[test]
fn two_sites_in_one_template_are_distinct() {
    let sheet = compile_str(&wrap(
        r#"<xsl:template match="r">
             <xsl:apply-templates select="a"/>
             <xsl:apply-templates select="b"/>
           </xsl:template>
           <xsl:template match="a"><A/></xsl:template>
           <xsl:template match="b"><B/></xsl:template>"#,
    ))
    .unwrap();
    let pe = partial_evaluate(&sheet, &info()).unwrap();
    let r_state = pe
        .graph
        .states
        .iter()
        .find(|s| s.template.is_some() && s.node == SampleNode::Element(vec![]))
        .expect("r template state");
    assert_eq!(r_state.transitions.len(), 2, "one entry per call site");
    for trans in r_state.transitions.values() {
        assert_eq!(trans.len(), 1, "each site saw exactly one node kind");
    }
}

#[test]
fn same_template_at_two_positions_gives_two_states() {
    // `*` matches both a and b: one template, two structural states.
    let sheet = compile_str(&wrap(
        r#"<xsl:template match="r"><xsl:apply-templates/></xsl:template>
           <xsl:template match="*[name() != 'r']"><x/></xsl:template>"#,
    ))
    .unwrap();
    let pe = partial_evaluate(&sheet, &info()).unwrap();
    let star_states = pe
        .graph
        .states
        .iter()
        .filter(|s| {
            s.template.is_some()
                && matches!(&s.node, SampleNode::Element(p) if !p.is_empty())
        })
        .count();
    assert_eq!(star_states, 2);
}

#[test]
fn modes_create_separate_transitions() {
    let sheet = compile_str(&wrap(
        r#"<xsl:template match="r">
             <xsl:apply-templates select="a"/>
             <xsl:apply-templates select="a" mode="m"/>
           </xsl:template>
           <xsl:template match="a"><plain/></xsl:template>
           <xsl:template match="a" mode="m"><loud/></xsl:template>"#,
    ))
    .unwrap();
    let pe = partial_evaluate(&sheet, &info()).unwrap();
    // Both templates instantiated, both reachable from r.
    assert_eq!(pe.graph.instantiated.len(), 3);
    let r_state = pe
        .graph
        .states
        .iter()
        .find(|s| s.template.is_some() && s.node == SampleNode::Element(vec![]))
        .unwrap();
    let targets: Vec<usize> = r_state
        .transitions
        .values()
        .flat_map(|v| v.iter().map(|t| t.target))
        .collect();
    assert_eq!(targets.len(), 2);
    assert_ne!(targets[0], targets[1], "different templates, different states");
}

#[test]
fn call_template_via_edge_recorded() {
    let sheet = compile_str(&wrap(
        r#"<xsl:template match="r"><xsl:call-template name="helper"/></xsl:template>
           <xsl:template name="helper"><h/></xsl:template>"#,
    ))
    .unwrap();
    let pe = partial_evaluate(&sheet, &info()).unwrap();
    let r_state = pe
        .graph
        .states
        .iter()
        .find(|s| s.template.is_some() && s.node == SampleNode::Element(vec![]))
        .unwrap();
    let (_, trans) = r_state.transitions.iter().next().expect("the call site");
    // The callee keeps the caller's current node.
    assert_eq!(trans[0].node, SampleNode::Element(vec![]));
}

#[test]
fn builtin_states_share_identity_across_visits() {
    // The same (builtin, node) pair visited twice reuses one state.
    let sheet = compile_str(&wrap(
        r#"<xsl:template match="r">
             <xsl:apply-templates select="a"/>
             <xsl:apply-templates select="a"/>
           </xsl:template>"#,
    ))
    .unwrap();
    let pe = partial_evaluate(&sheet, &info()).unwrap();
    let builtin_a_states = pe
        .graph
        .states
        .iter()
        .filter(|s| s.template.is_none() && s.node == SampleNode::Element(vec![0]))
        .count();
    assert_eq!(builtin_a_states, 1);
    assert!(!pe.graph.recursive, "re-visiting a completed state is not a cycle");
}
