//! XQuery-subset conformance battery: constructor semantics, FLWOR corner
//! cases, comparison rules and error behaviour beyond the unit tests.

use xsltdb_xquery::{evaluate_query, parse_query, serialize_sequence, NodeHandle};

fn run(src: &str, xml: &str) -> String {
    let q = parse_query(src).unwrap_or_else(|e| panic!("parse failed for {src}: {e}"));
    let input = NodeHandle::document(xsltdb_xml::parse::parse(xml).unwrap());
    let seq = evaluate_query(&q, Some(input))
        .unwrap_or_else(|e| panic!("eval failed for {src}: {e}"));
    serialize_sequence(&seq)
}

fn run_err(src: &str, xml: &str) -> String {
    let q = parse_query(src).unwrap();
    let input = NodeHandle::document(xsltdb_xml::parse::parse(xml).unwrap());
    evaluate_query(&q, Some(input)).unwrap_err().to_string()
}

#[test]
fn constructor_copies_are_new_nodes() {
    // A copied node is distinct from the original: navigating the copy
    // stays inside the new tree.
    assert_eq!(
        run("let $c := <w>{/r/a}</w> return fn:count($c/a)", "<r><a/><a/>ignored</r>"),
        "2"
    );
}

#[test]
fn nested_flwor_tuple_order() {
    // Adjacent atomics in the flattened content sequence are space-joined,
    // even across separate enclosed expressions (XQuery §3.7.1.3) — the
    // reason the XSLT rewrite wraps value-of results in text{} nodes.
    assert_eq!(
        run(
            "for $a in /r/x, $b in /r/y return <p>{fn:string($a)}{fn:string($b)}</p>",
            "<r><x>1</x><x>2</x><y>a</y><y>b</y></r>"
        ),
        "<p>1 a</p><p>1 b</p><p>2 a</p><p>2 b</p>"
    );
    // Text nodes break the adjacency.
    assert_eq!(
        run(
            "for $a in /r/x return <p>{text {fn:string($a)}}{text {fn:string($a)}}</p>",
            "<r><x>7</x></r>"
        ),
        "<p>77</p>"
    );
}

#[test]
fn let_after_for_rebinds_per_tuple() {
    assert_eq!(
        run(
            "for $x in /r/v let $d := $x * 2 return <o>{$d}</o>",
            "<r><v>1</v><v>3</v></r>"
        ),
        "<o>2</o><o>6</o>"
    );
}

#[test]
fn where_filters_tuples() {
    assert_eq!(
        run(
            "for $x in /r/v where $x mod 2 = 0 return fn:string($x)",
            "<r><v>1</v><v>2</v><v>3</v><v>4</v></r>"
        ),
        "2 4"
    );
}

#[test]
fn order_by_numeric_vs_string() {
    let xml = "<r><v>10</v><v>9</v></r>";
    assert_eq!(run("for $v in /r/v order by fn:number($v) return fn:string($v)", xml), "9 10");
    assert_eq!(run("for $v in /r/v order by fn:string($v) return fn:string($v)", xml), "10 9");
}

#[test]
fn empty_for_source_yields_empty() {
    assert_eq!(run("for $x in /r/none return <o/>", "<r/>"), "");
}

#[test]
fn if_branches_lazy() {
    // The untaken branch must not evaluate (an undefined variable there
    // would otherwise error).
    assert_eq!(run("if (fn:true()) then 1 else $undefined", "<r/>"), "1");
}

#[test]
fn and_or_short_circuit() {
    assert_eq!(run("if (fn:false() and $undefined) then 1 else 2", "<r/>"), "2");
    assert_eq!(run("if (fn:true() or $undefined) then 1 else 2", "<r/>"), "1");
}

#[test]
fn general_comparison_empty_sequence_is_false() {
    assert_eq!(run("/r/none = 1", "<r/>"), "false");
    assert_eq!(run("/r/none != 1", "<r/>"), "false");
}

#[test]
fn attribute_step_and_comparison() {
    assert_eq!(
        run("fn:string(/r/i[@k = 'b'])", r#"<r><i k="a">1</i><i k="b">2</i></r>"#),
        "2"
    );
}

#[test]
fn union_in_query() {
    assert_eq!(
        run("fn:count(/r/a | /r/b | /r/a)", "<r><a/><b/><b/></r>"),
        "3"
    );
}

#[test]
fn parent_axis_navigation() {
    assert_eq!(
        run("fn:name(/r/a/text()/..)", "<r><a>x</a></r>"),
        "a"
    );
}

#[test]
fn attr_constructor_merges_into_element() {
    assert_eq!(
        run(r#"<e>{attribute {"k"} {"v"}, "body"}</e>"#, "<r/>"),
        r#"<e k="v">body</e>"#
    );
}

#[test]
fn attribute_after_content_is_an_error() {
    let e = run_err(r#"<e>{"body", attribute {"k"} {"v"}}</e>"#, "<r/>");
    assert!(e.contains("before child content"), "{e}");
}

#[test]
fn sequence_flattening() {
    assert_eq!(run("((1, 2), (3, (4, 5)))", "<r/>"), "1 2 3 4 5");
}

#[test]
fn arithmetic_on_node_values() {
    assert_eq!(run("/r/a + /r/b", "<r><a>3</a><b>4</b></r>"), "7");
}

#[test]
fn division_and_modulo() {
    assert_eq!(run("7 div 2", "<r/>"), "3.5");
    assert_eq!(run("7 mod 2", "<r/>"), "1");
    assert_eq!(run("1 div 0", "<r/>"), "Infinity");
}

#[test]
fn predicates_chain() {
    assert_eq!(
        run("fn:string(/r/i[. > 1][1])", "<r><i>1</i><i>5</i><i>9</i></r>"),
        "5"
    );
}

#[test]
fn function_sees_only_parameters() {
    let e = run_err(
        "declare function local:f($a) { $outer }; let $outer := 1 return local:f(2)",
        "<r/>",
    );
    assert!(e.contains("undefined variable"), "{e}");
}

#[test]
fn instance_of_cardinality_one() {
    // Two nodes are not an `element()` instance (exactly-one semantics).
    assert_eq!(run("(/r/a) instance of element(a)", "<r><a/><a/></r>"), "false");
}

#[test]
fn deep_constructor_nesting() {
    let mut q = String::new();
    for _ in 0..30 {
        q.push_str("<d>");
    }
    q.push_str("{1}");
    for _ in 0..30 {
        q.push_str("</d>");
    }
    let out = run(&q, "<r/>");
    assert!(out.starts_with("<d><d>"));
    assert!(out.contains(">1<"));
}

#[test]
fn comments_ignored_anywhere() {
    assert_eq!(
        run("(: a :) 1 (: b (: nested :) :) + (: c :) 2", "<r/>"),
        "3"
    );
}
