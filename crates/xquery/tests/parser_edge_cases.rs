//! XQuery parser robustness: errors with positions, odd-but-legal inputs,
//! and whitespace/comment tolerance everywhere.

use xsltdb_xquery::{parse_query, parse_xq_expr};

#[test]
fn rejects_malformed_queries() {
    for bad in [
        "",
        "for $x return 1",
        "let $x = 1 return $x",      // `=` instead of `:=`
        "if (1) then 2",             // missing else
        "<a>{1</a>",                 // unterminated enclosed expr
        "<a><b/>",                   // unterminated constructor
        "declare variable $x := 1",  // missing `;`
        "declare function f() { 1 }", // missing `;`
        "1 +",
        "fn:string(",
        "$",
    ] {
        assert!(parse_query(bad).is_err(), "accepted: {bad}");
    }
}

#[test]
fn error_carries_offset() {
    let e = parse_xq_expr("fn:string(").unwrap_err();
    assert!(e.offset > 0);
    assert!(e.to_string().contains("byte"));
}

#[test]
fn accepts_unusual_whitespace_and_comments() {
    for good in [
        "  (:c:)  1  (:d:)  ",
        "for(:a:)$x(:b:)in(:c:)/r return $x",
        "<a   b = \"1\"   />",
        "declare variable\n$v := .;\n$v",
        "element(:between:){'e'}{()}",
    ] {
        assert!(parse_query(good).is_ok(), "rejected: {good}");
    }
}

#[test]
fn quote_doubling_in_literals_and_attrs() {
    let q = parse_xq_expr(r#""say ""hi""""#).unwrap();
    assert_eq!(q, xsltdb_xquery::XqExpr::StrLit("say \"hi\"".into()));
    let q = parse_xq_expr(r#"<a t="x""y"/>"#).unwrap();
    match q {
        xsltdb_xquery::XqExpr::DirectElem { attrs, .. } => {
            match &attrs[0].1[0] {
                xsltdb_xquery::AttrValuePart::Text(t) => assert_eq!(t, "x\"y"),
                other => panic!("{other:?}"),
            }
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn entities_in_constructor_content() {
    let q = parse_xq_expr("<a>&lt;&amp;&gt;</a>").unwrap();
    match q {
        xsltdb_xquery::XqExpr::DirectElem { content, .. } => {
            assert_eq!(content.len(), 1);
            assert!(matches!(&content[0], xsltdb_xquery::XqExpr::TextContent(t) if t == "<&>"));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn brace_escapes_in_content_and_attrs() {
    let q = parse_xq_expr("<a b=\"{{x}}\">{{literal}}</a>").unwrap();
    match q {
        xsltdb_xquery::XqExpr::DirectElem { attrs, content, .. } => {
            assert!(matches!(&attrs[0].1[0], xsltdb_xquery::AttrValuePart::Text(t) if t == "{x}"));
            assert!(
                matches!(&content[0], xsltdb_xquery::XqExpr::TextContent(t) if t == "{literal}")
            );
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn keywords_usable_as_element_names_in_paths() {
    // `if`, `for`, `return` are fine as step names when not in keyword
    // position.
    for src in ["/r/if", "/r/return", "$x/for"] {
        assert!(parse_xq_expr(src).is_ok(), "rejected: {src}");
    }
}

#[test]
fn deeply_nested_expressions_parse() {
    let mut src = String::new();
    for _ in 0..40 {
        src.push('(');
    }
    src.push('1');
    for _ in 0..40 {
        src.push(')');
    }
    assert!(parse_xq_expr(&src).is_ok());
}
