//! Property tests for sink-mode XQuery evaluation: for arbitrary
//! FLWOR/constructor/predicate nests, streaming the query through a
//! `StreamWriter` is byte-for-byte identical to serializing the
//! materialised evaluation — including forced-spill shapes (predicates
//! over fresh elements, function results) — and an output-byte cap trips
//! mid-stream leaving only a bounded prefix on the wire.

use proptest::prelude::*;
use xsltdb_xml::{to_string, Guard, Limits, QName, StreamWriter};
use xsltdb_xpath::{Axis, NodeTest};
use xsltdb_xquery::{
    evaluate_query, evaluate_query_to_sink, sequence_to_document, AttrValuePart, Clause,
    NodeHandle, OrderSpec, XQuery, XqExpr, XqStep,
};

const INPUT_XML: &str = "<r><i>bb</i><i>a</i><i>ccc</i></r>";

fn input() -> NodeHandle {
    NodeHandle::document(xsltdb_xml::parse::parse(INPUT_XML).unwrap())
}

fn child_step(name: &str) -> XqStep {
    XqStep {
        axis: Axis::Child,
        test: NodeTest::Name { prefix: None, local: name.to_string() },
        predicates: Vec::new(),
    }
}

/// `/r/i` — the input-node source every generated query draws from.
fn input_path() -> XqExpr {
    XqExpr::Path {
        start: xsltdb_xquery::PathStart::Root,
        steps: vec![child_step("r"), child_step("i")],
    }
}

fn leaf_strategy() -> impl Strategy<Value = XqExpr> {
    prop_oneof![
        // Atomic literals, including characters the serializer escapes.
        "[a-z <&\"]{0,6}".prop_map(XqExpr::StrLit),
        (0u32..50).prop_map(|n| XqExpr::NumLit(n as f64)),
        Just(XqExpr::Empty),
        // Input nodes in emission position: streamed copy-out.
        Just(input_path()),
        // An atomized re-inspection of the input.
        Just(XqExpr::call("fn:count", vec![input_path()])),
    ]
}

fn expr_strategy() -> impl Strategy<Value = XqExpr> {
    leaf_strategy().prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            // Comma sequence: atomic space-joining across the flattened run.
            proptest::collection::vec(inner.clone(), 0..3).prop_map(XqExpr::Seq),
            // Direct constructor with an AVT attribute and mixed content.
            ("[a-z]{1,4}", proptest::collection::vec(inner.clone(), 0..3), any::<bool>())
                .prop_map(|(name, content, with_attr)| {
                    let attrs = if with_attr {
                        vec![(
                            QName::local("k"),
                            vec![AttrValuePart::Expr(XqExpr::call(
                                "fn:count",
                                vec![input_path()],
                            ))],
                        )]
                    } else {
                        Vec::new()
                    };
                    XqExpr::DirectElem { name: QName::local(&name), attrs, content }
                }),
            // Computed element.
            ("[a-z]{1,4}", inner.clone()).prop_map(|(name, content)| XqExpr::CompElem {
                name: Box::new(XqExpr::StrLit(name)),
                content: Box::new(content),
            }),
            // Computed text (empty content exercises the empty-sequence rule).
            inner.clone().prop_map(|c| XqExpr::CompText(Box::new(c))),
            // Comment and PI constructors.
            "[a-z ]{0,5}".prop_map(|s| XqExpr::CompComment(Box::new(XqExpr::StrLit(s)))),
            "[a-z ]{0,5}".prop_map(|s| XqExpr::CompPi {
                target: "tgt".to_string(),
                content: Box::new(XqExpr::StrLit(s)),
            }),
            // Conditional: branches inherit emission position.
            (inner.clone(), inner.clone()).prop_map(|(then, els)| XqExpr::If {
                cond: Box::new(input_path()),
                then: Box::new(then),
                els: Box::new(els),
            }),
            // FLWOR over the input, optionally sorted, emitting per tuple.
            (inner.clone(), any::<bool>(), any::<bool>()).prop_map(|(ret, sorted, desc)| {
                XqExpr::Flwor {
                    clauses: vec![Clause::For {
                        var: "v".to_string(),
                        at: None,
                        source: input_path(),
                    }],
                    where_clause: None,
                    order_by: if sorted {
                        vec![OrderSpec {
                            key: XqExpr::var("v"),
                            descending: desc,
                            numeric: false,
                        }]
                    } else {
                        Vec::new()
                    },
                    ret: Box::new(XqExpr::Seq(vec![
                        XqExpr::DirectElem {
                            name: QName::local("o"),
                            attrs: Vec::new(),
                            content: vec![XqExpr::var("v")],
                        },
                        ret,
                    ])),
                }
            }),
            // Forced spill: a positional predicate over a fresh element.
            inner.clone().prop_map(|c| XqExpr::Filter {
                base: Box::new(XqExpr::DirectElem {
                    name: QName::local("p"),
                    attrs: Vec::new(),
                    content: vec![c],
                }),
                predicates: vec![XqExpr::NumLit(1.0)],
            }),
        ]
    })
}

/// Materialised reference: evaluate, build the result document, serialize.
fn reference_output(q: &XQuery) -> String {
    let seq = evaluate_query(q, Some(input())).expect("materialised eval succeeds");
    to_string(&sequence_to_document(&seq))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Sink-mode output == serialize(materialised eval), byte for byte.
    #[test]
    fn sink_mode_matches_materialised(body in expr_strategy()) {
        let q = XQuery::of(body);
        let reference = reference_output(&q);

        let mut sw = StreamWriter::new(Vec::new(), Guard::unlimited());
        evaluate_query_to_sink(&q, Some(input()), Vec::new(), Guard::unlimited(), &mut sw)
            .expect("sink-mode eval succeeds");
        let streamed = String::from_utf8(sw.finish().expect("finish")).unwrap();

        prop_assert_eq!(streamed, reference);
    }

    /// With an output-byte cap below the full result, the stream trips
    /// mid-emission: what reached the wire is a bounded prefix of the
    /// reference output, never more than the cap.
    #[test]
    fn sink_mode_byte_cap_leaves_bounded_prefix(body in expr_strategy()) {
        let q = XQuery::of(body);
        let reference = reference_output(&q);
        if reference.len() <= 1 {
            // Nothing to cap; the identity property already covers it.
            return;
        }

        let cap = (reference.len() / 2) as u64;
        let guard = Guard::new(Limits::UNLIMITED.with_max_output_bytes(cap));
        // Stream into a borrowed buffer so the bytes survive the failure.
        let mut buf: Vec<u8> = Vec::new();
        let outcome = {
            let mut sw = StreamWriter::new(&mut buf, guard.clone());
            match evaluate_query_to_sink(&q, Some(input()), Vec::new(), guard.clone(), &mut sw) {
                Ok(_) => sw.finish().map(|_| ()).map_err(|e| e.to_string()),
                Err(e) => Err(e.0),
            }
        };

        match outcome {
            Ok(()) => {
                // The cap is strictly below the reference length, so total
                // charged bytes must exceed it: success is unreachable
                // unless the outputs diverged.
                prop_assert_eq!(String::from_utf8(buf).unwrap(), reference);
            }
            Err(msg) => {
                prop_assert!(
                    guard.trip().is_some(),
                    "failed without a recorded guard trip: {}", msg
                );
                prop_assert!(buf.len() as u64 <= cap, "bytes on the wire exceed the cap");
                prop_assert!(
                    reference.as_bytes().starts_with(&buf),
                    "streamed bytes are not a prefix of the reference"
                );
            }
        }
    }
}
