//! Static typing over realistic generated-query shapes — the structures
//! Example 2's composition depends on.

use xsltdb_xquery::parse_xq_expr;
use xsltdb_xquery::typing::{infer, Shape};

fn elem<'a>(shapes: &'a [xsltdb_xquery::typing::Occurs], name: &str) -> &'a Shape {
    shapes
        .iter()
        .find(|o| matches!(&o.shape, Shape::Element { name: n, .. } if n == name))
        .map(|o| &o.shape)
        .unwrap_or_else(|| panic!("no element {name} in {shapes:?}"))
}

#[test]
fn table8_full_shape() {
    let q = parse_xq_expr(
        r#"(
            <H1>HIGHLY PAID DEPT EMPLOYEES</H1>,
            let $d := $var000/dept return (
              <H2>{fn:concat("Department name: ", fn:string($d/dname))}</H2>,
              <table border="2">{
                (<td><b>EmpNo</b></td>,
                 for $e in $d/employees/emp[sal > 2000] return
                   <tr><td>{fn:string($e/empno)}</td></tr>)
              }</table>
            )
        )"#,
    )
    .unwrap();
    let shapes = infer(&q);
    // Top level: H1 plus the let's results (H2, table).
    assert!(matches!(elem(&shapes, "H1"), Shape::Element { .. }));
    let table = elem(&shapes, "table");
    let Shape::Element { attrs, children, .. } = table else { unreachable!() };
    assert_eq!(attrs, &["border"]);
    let tr = children
        .iter()
        .find(|o| matches!(&o.shape, Shape::Element { name, .. } if name == "tr"))
        .expect("tr under table");
    assert!(tr.many, "for-bound tr repeats");
    assert!(tr.optional, "predicate makes tr optional");
}

#[test]
fn let_preserves_cardinality_for_marks_many() {
    let q = parse_xq_expr("let $a := 1 return for $b in $x/y return <row/>").unwrap();
    let shapes = infer(&q);
    assert!(shapes[0].many);
}

#[test]
fn sequences_concatenate_shapes_in_order() {
    let q = parse_xq_expr("(<a/>, <b/>, <c/>)").unwrap();
    let names: Vec<String> = infer(&q)
        .iter()
        .map(|o| match &o.shape {
            Shape::Element { name, .. } => name.clone(),
            other => panic!("{other:?}"),
        })
        .collect();
    assert_eq!(names, ["a", "b", "c"]);
}

#[test]
fn opaque_content_marks_text_presence() {
    let q = parse_xq_expr("<w>{$anything}</w>").unwrap();
    let shapes = infer(&q);
    let Shape::Element { children, .. } = &shapes[0].shape else { unreachable!() };
    assert!(children.iter().any(|c| matches!(c.shape, Shape::Opaque)));
}
