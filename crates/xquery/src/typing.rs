//! Static structural typing of XQuery results (paper §3.2, fourth bullet):
//! when the input `XMLType` of a transformation is itself *computed from
//! another XQuery* — e.g. an XSLT view wrapped by a further query as in
//! Example 2 — the structural information of that input is derived from the
//! static type of the producing query.
//!
//! The shapes inferred here cover the subset the XSLT rewrite emits:
//! constructors with known names, sequences, FLWOR (for ⇒ repetition,
//! let ⇒ passthrough), conditionals (⇒ optionality), and atomic/opaque
//! expressions (⇒ text content).

use crate::ast::{Clause, XqExpr};

/// One possible child of a constructed node, with cardinality flags.
#[derive(Debug, Clone, PartialEq)]
pub struct Occurs {
    pub shape: Shape,
    /// May repeat (under a `for`).
    pub many: bool,
    /// May be absent (under an `if` or a FLWOR that can yield nothing).
    pub optional: bool,
}

/// Structural shape of one constructed item.
#[derive(Debug, Clone, PartialEq)]
pub enum Shape {
    /// A constructed element with a statically known name.
    Element { name: String, attrs: Vec<String>, children: Vec<Occurs> },
    /// Text or atomic content.
    Text,
    /// Content we cannot see through (paths into the input, variables,
    /// user-function calls).
    Opaque,
}

impl Shape {
    /// Find a child element shape by name, searching one level.
    pub fn child_element(&self, name: &str) -> Option<&Occurs> {
        match self {
            Shape::Element { children, .. } => children.iter().find(|o| {
                matches!(&o.shape, Shape::Element { name: n, .. } if n == name)
            }),
            _ => None,
        }
    }
}

/// Infer the shape sequence of an expression's result.
pub fn infer(e: &XqExpr) -> Vec<Occurs> {
    match e {
        XqExpr::Empty => Vec::new(),
        XqExpr::Seq(es) => es.iter().flat_map(infer).collect(),
        XqExpr::Annotated { expr, .. } => infer(expr),
        XqExpr::DirectElem { name, attrs, content } => {
            let children = content.iter().flat_map(infer).collect();
            vec![Occurs {
                shape: Shape::Element {
                    name: name.local.to_string(),
                    attrs: attrs.iter().map(|(n, _)| n.local.to_string()).collect(),
                    children,
                },
                many: false,
                optional: false,
            }]
        }
        XqExpr::CompElem { name, content } => {
            let n = match name.as_ref() {
                XqExpr::StrLit(s) => s.clone(),
                _ => return vec![opaque()],
            };
            vec![Occurs {
                shape: Shape::Element {
                    name: n,
                    attrs: Vec::new(),
                    children: infer(content),
                },
                many: false,
                optional: false,
            }]
        }
        XqExpr::Flwor { clauses, where_clause, ret, .. } => {
            let repeats = clauses.iter().any(|c| matches!(c, Clause::For { .. }));
            let conditional = where_clause.is_some() || repeats;
            infer(ret)
                .into_iter()
                .map(|mut o| {
                    o.many |= repeats;
                    o.optional |= conditional;
                    o
                })
                .collect()
        }
        XqExpr::If { then, els, .. } => {
            let mut out: Vec<Occurs> = infer(then)
                .into_iter()
                .map(|mut o| {
                    o.optional = true;
                    o
                })
                .collect();
            out.extend(infer(els).into_iter().map(|mut o| {
                o.optional = true;
                o
            }));
            out
        }
        XqExpr::TextContent(_)
        | XqExpr::StrLit(_)
        | XqExpr::NumLit(_)
        | XqExpr::CompText(_)
        | XqExpr::Arith(..)
        | XqExpr::Neg(_) => vec![Occurs { shape: Shape::Text, many: false, optional: false }],
        XqExpr::Call { name, .. } => {
            // String-producing builtins yield text; anything else is opaque.
            let plain = name.strip_prefix("fn:").unwrap_or(name);
            if matches!(
                plain,
                "string"
                    | "concat"
                    | "string-join"
                    | "substring"
                    | "normalize-space"
                    | "translate"
                    | "count"
                    | "sum"
                    | "avg"
                    | "min"
                    | "max"
                    | "number"
            ) {
                vec![Occurs { shape: Shape::Text, many: false, optional: false }]
            } else {
                vec![opaque()]
            }
        }
        XqExpr::Union(..) => vec![opaque()],
        _ => vec![opaque()],
    }
}

fn opaque() -> Occurs {
    Occurs { shape: Shape::Opaque, many: false, optional: true }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    #[test]
    fn constructor_shape() {
        let e = parse_expr(r#"<table border="2"><tr><td>{1}</td></tr></table>"#).unwrap();
        let shapes = infer(&e);
        assert_eq!(shapes.len(), 1);
        match &shapes[0].shape {
            Shape::Element { name, attrs, children } => {
                assert_eq!(name, "table");
                assert_eq!(attrs, &["border"]);
                assert_eq!(children.len(), 1);
                assert!(shapes[0].shape.child_element("tr").is_some());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn for_marks_many() {
        let e = parse_expr("for $e in $x/emp return <tr/>").unwrap();
        let shapes = infer(&e);
        assert!(shapes[0].many);
        assert!(shapes[0].optional);
    }

    #[test]
    fn let_does_not_mark_many() {
        let e = parse_expr("let $a := 1 return <tr/>").unwrap();
        let shapes = infer(&e);
        assert!(!shapes[0].many);
    }

    #[test]
    fn if_marks_optional() {
        let e = parse_expr("if (1) then <a/> else <b/>").unwrap();
        let shapes = infer(&e);
        assert_eq!(shapes.len(), 2);
        assert!(shapes.iter().all(|s| s.optional));
    }

    #[test]
    fn string_calls_are_text() {
        let e = parse_expr("fn:string($x)").unwrap();
        assert_eq!(infer(&e)[0].shape, Shape::Text);
    }

    #[test]
    fn paths_are_opaque() {
        let e = parse_expr("$x/emp").unwrap();
        assert_eq!(infer(&e)[0].shape, Shape::Opaque);
    }
}
