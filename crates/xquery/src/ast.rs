//! Abstract syntax for the XQuery subset used as the paper's intermediate
//! language (§3, §6): FLWOR, conditionals, direct and computed constructors,
//! sequence expressions, user-defined functions, `instance of` tests and
//! path expressions. Axis steps reuse the XPath crate's `Axis`/`NodeTest`.

use std::fmt;
use xsltdb_xml::QName;
use xsltdb_xpath::{Axis, NodeTest};

/// Comparison operators. XQuery general comparisons only — the generated
/// queries never need value comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CompOp {
    pub fn symbol(self) -> &'static str {
        match self {
            CompOp::Eq => "=",
            CompOp::Ne => "!=",
            CompOp::Lt => "<",
            CompOp::Le => "<=",
            CompOp::Gt => ">",
            CompOp::Ge => ">=",
        }
    }
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl ArithOp {
    pub fn symbol(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "div",
            ArithOp::Mod => "mod",
        }
    }
}

/// A FLWOR binding clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Clause {
    /// `for $var at $pos in source` — `at` binds the 1-based position of
    /// the tuple in the *input* sequence (pre-`order by`, per the XQuery
    /// spec). The XSLT rewrite therefore nests a sorted inner FLWOR inside
    /// an outer `for ... at` when post-sort positions are needed.
    For { var: String, at: Option<String>, source: XqExpr },
    Let { var: String, value: XqExpr },
}

/// One `order by` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderSpec {
    pub key: XqExpr,
    pub descending: bool,
    /// Compare keys numerically (`xs:double(...)`-style); the XSLT rewrite
    /// sets this for `data-type="number"` sort keys.
    pub numeric: bool,
}

/// Sequence types accepted after `instance of`.
#[derive(Debug, Clone, PartialEq)]
pub enum SeqType {
    Element(Option<String>),
    Attribute(Option<String>),
    Text,
    Node,
    Item,
}

impl fmt::Display for SeqType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeqType::Element(Some(n)) => write!(f, "element({n})"),
            SeqType::Element(None) => write!(f, "element()"),
            SeqType::Attribute(Some(n)) => write!(f, "attribute({n})"),
            SeqType::Attribute(None) => write!(f, "attribute()"),
            SeqType::Text => write!(f, "text()"),
            SeqType::Node => write!(f, "node()"),
            SeqType::Item => write!(f, "item()"),
        }
    }
}

/// How a path expression starts.
#[derive(Debug, Clone, PartialEq)]
pub enum PathStart {
    /// `/steps` — from the root of the context node's document.
    Root,
    /// `.` or a bare relative path — from the context item.
    Context,
    /// `$var/steps` or `(expr)/steps`.
    Expr(Box<XqExpr>),
}

/// One axis step with predicates.
#[derive(Debug, Clone, PartialEq)]
pub struct XqStep {
    pub axis: Axis,
    pub test: NodeTest,
    pub predicates: Vec<XqExpr>,
}

/// A part of a direct attribute value (mini-AVT: text and enclosed exprs).
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValuePart {
    Text(String),
    Expr(XqExpr),
}

/// XQuery expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum XqExpr {
    /// Comma sequence `(a, b, c)`.
    Seq(Vec<XqExpr>),
    /// FLWOR expression.
    Flwor {
        clauses: Vec<Clause>,
        where_clause: Option<Box<XqExpr>>,
        order_by: Vec<OrderSpec>,
        ret: Box<XqExpr>,
    },
    If {
        cond: Box<XqExpr>,
        then: Box<XqExpr>,
        els: Box<XqExpr>,
    },
    Or(Box<XqExpr>, Box<XqExpr>),
    And(Box<XqExpr>, Box<XqExpr>),
    /// Node-set union `a | b` (document order, deduplicated).
    Union(Box<XqExpr>, Box<XqExpr>),
    Compare(CompOp, Box<XqExpr>, Box<XqExpr>),
    Arith(ArithOp, Box<XqExpr>, Box<XqExpr>),
    Neg(Box<XqExpr>),
    InstanceOf(Box<XqExpr>, SeqType),
    /// A path: a start followed by steps. A start with no steps is just the
    /// start expression.
    Path { start: PathStart, steps: Vec<XqStep> },
    /// Postfix predicates on an arbitrary primary: `$x[...]`.
    Filter { base: Box<XqExpr>, predicates: Vec<XqExpr> },
    StrLit(String),
    NumLit(f64),
    VarRef(String),
    ContextItem,
    /// Function call; `name` keeps its prefix (`fn:string`, `local:t1`).
    Call { name: String, args: Vec<XqExpr> },
    /// `<name attr="...">content</name>`.
    DirectElem {
        name: QName,
        attrs: Vec<(QName, Vec<AttrValuePart>)>,
        content: Vec<XqExpr>,
    },
    /// Literal text inside a direct constructor.
    TextContent(String),
    /// `element {nameExpr} {content}` — name may be constant.
    CompElem { name: Box<XqExpr>, content: Box<XqExpr> },
    /// `attribute {nameExpr} {value}`.
    CompAttr { name: Box<XqExpr>, value: Box<XqExpr> },
    /// `text {expr}`.
    CompText(Box<XqExpr>),
    /// `comment {expr}` — a computed comment node.
    CompComment(Box<XqExpr>),
    /// `processing-instruction target {expr}` — a computed PI with a
    /// constant target (the only form the XSLT rewrite emits).
    CompPi { target: String, content: Box<XqExpr> },
    /// An expression annotated with a pretty-printed comment
    /// (`(: <xsl:template match="dept"> :)` in the paper's Table 8).
    /// Evaluates exactly as the inner expression.
    Annotated { comment: String, expr: Box<XqExpr> },
    /// The empty sequence `()`.
    Empty,
}

impl XqExpr {
    pub fn var(name: &str) -> XqExpr {
        XqExpr::VarRef(name.to_string())
    }

    pub fn call(name: &str, args: Vec<XqExpr>) -> XqExpr {
        XqExpr::Call { name: name.to_string(), args }
    }

    pub fn string_of(e: XqExpr) -> XqExpr {
        XqExpr::call("fn:string", vec![e])
    }

    /// `$var/child1/child2` convenience.
    pub fn var_path(var: &str, children: &[&str]) -> XqExpr {
        XqExpr::Path {
            start: PathStart::Expr(Box::new(XqExpr::var(var))),
            steps: children
                .iter()
                .map(|c| XqStep {
                    axis: Axis::Child,
                    test: NodeTest::Name { prefix: None, local: c.to_string() },
                    predicates: Vec::new(),
                })
                .collect(),
        }
    }

    /// Strip annotations (for structural comparisons in tests).
    pub fn unannotated(&self) -> &XqExpr {
        match self {
            XqExpr::Annotated { expr, .. } => expr.unannotated(),
            other => other,
        }
    }
}

/// A user-defined function from the prolog.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDecl {
    /// Name with prefix, e.g. `local:tmpl001`.
    pub name: String,
    pub params: Vec<String>,
    pub body: XqExpr,
}

/// A prolog variable declaration: `declare variable $x := expr;`.
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    pub name: String,
    pub value: XqExpr,
}

/// A complete query: prolog plus body.
#[derive(Debug, Clone, PartialEq)]
pub struct XQuery {
    pub variables: Vec<VarDecl>,
    pub functions: Vec<FunctionDecl>,
    pub body: XqExpr,
}

impl XQuery {
    /// A query that is just a body.
    pub fn of(body: XqExpr) -> XQuery {
        XQuery { variables: Vec::new(), functions: Vec::new(), body }
    }

    /// Count of user-defined functions — the paper's inline-mode metric
    /// (§5, objective 2) is "queries with zero function calls".
    pub fn function_count(&self) -> usize {
        self.functions.len()
    }
}

/// Walk all subexpressions of `e`, including `e` itself.
pub fn walk_exprs<'a>(e: &'a XqExpr, f: &mut impl FnMut(&'a XqExpr)) {
    f(e);
    match e {
        XqExpr::Seq(es) => es.iter().for_each(|x| walk_exprs(x, f)),
        XqExpr::Flwor { clauses, where_clause, order_by, ret } => {
            for c in clauses {
                match c {
                    Clause::For { source, .. } => walk_exprs(source, f),
                    Clause::Let { value, .. } => walk_exprs(value, f),
                }
            }
            if let Some(w) = where_clause {
                walk_exprs(w, f);
            }
            for o in order_by {
                walk_exprs(&o.key, f);
            }
            walk_exprs(ret, f);
        }
        XqExpr::If { cond, then, els } => {
            walk_exprs(cond, f);
            walk_exprs(then, f);
            walk_exprs(els, f);
        }
        XqExpr::Or(a, b)
        | XqExpr::And(a, b)
        | XqExpr::Union(a, b)
        | XqExpr::Compare(_, a, b)
        | XqExpr::Arith(_, a, b) => {
            walk_exprs(a, f);
            walk_exprs(b, f);
        }
        XqExpr::Neg(a)
        | XqExpr::InstanceOf(a, _)
        | XqExpr::CompText(a)
        | XqExpr::CompComment(a)
        | XqExpr::CompPi { content: a, .. } => walk_exprs(a, f),
        XqExpr::Path { start, steps } => {
            if let PathStart::Expr(e) = start {
                walk_exprs(e, f);
            }
            for s in steps {
                s.predicates.iter().for_each(|p| walk_exprs(p, f));
            }
        }
        XqExpr::Filter { base, predicates } => {
            walk_exprs(base, f);
            predicates.iter().for_each(|p| walk_exprs(p, f));
        }
        XqExpr::Call { args, .. } => args.iter().for_each(|a| walk_exprs(a, f)),
        XqExpr::DirectElem { attrs, content, .. } => {
            for (_, parts) in attrs {
                for p in parts {
                    if let AttrValuePart::Expr(e) = p {
                        walk_exprs(e, f);
                    }
                }
            }
            content.iter().for_each(|c| walk_exprs(c, f));
        }
        XqExpr::CompElem { name, content } => {
            walk_exprs(name, f);
            walk_exprs(content, f);
        }
        XqExpr::CompAttr { name, value } => {
            walk_exprs(name, f);
            walk_exprs(value, f);
        }
        XqExpr::Annotated { expr, .. } => walk_exprs(expr, f),
        XqExpr::StrLit(_)
        | XqExpr::NumLit(_)
        | XqExpr::VarRef(_)
        | XqExpr::ContextItem
        | XqExpr::TextContent(_)
        | XqExpr::Empty => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_path_builds_steps() {
        let e = XqExpr::var_path("var003", &["emp", "sal"]);
        match e {
            XqExpr::Path { start, steps } => {
                assert!(matches!(start, PathStart::Expr(_)));
                assert_eq!(steps.len(), 2);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn unannotated_strips_nesting() {
        let e = XqExpr::Annotated {
            comment: "outer".into(),
            expr: Box::new(XqExpr::Annotated {
                comment: "inner".into(),
                expr: Box::new(XqExpr::NumLit(1.0)),
            }),
        };
        assert_eq!(e.unannotated(), &XqExpr::NumLit(1.0));
    }

    #[test]
    fn walk_visits_all() {
        let e = XqExpr::Seq(vec![
            XqExpr::NumLit(1.0),
            XqExpr::If {
                cond: Box::new(XqExpr::var("x")),
                then: Box::new(XqExpr::NumLit(2.0)),
                els: Box::new(XqExpr::Empty),
            },
        ]);
        let mut n = 0;
        walk_exprs(&e, &mut |_| n += 1);
        assert_eq!(n, 6);
    }
}
