//! Built-in function library for the XQuery subset (the `fn:` namespace).

use crate::ast::XqExpr;
use crate::eval::internal::{ebv, eval, EvalEnv, Item, Sequence, XqError};
use xsltdb_xpath::value::{num_to_string, str_to_num};

pub(crate) fn call_builtin(
    name: &str,
    args: &[XqExpr],
    env: &mut EvalEnv<'_>,
) -> Result<Sequence, XqError> {
    let arity = args.len();
    let mut vals: Vec<Sequence> = Vec::with_capacity(args.len());
    for a in args {
        vals.push(eval(a, env)?);
    }
    let str0 = |vals: &[Sequence], i: usize| -> String {
        vals[i]
            .first()
            .map(|it| it.atomize().to_string_value())
            .unwrap_or_default()
    };
    let num0 = |vals: &[Sequence], i: usize| -> f64 {
        vals[i].first().map(|it| it.to_number()).unwrap_or(f64::NAN)
    };
    let wrong_arity = |want: &str| {
        Err(XqError(format!("fn:{name}() expects {want} argument(s), got {arity}")))
    };

    match name {
        "string" => {
            let s = if arity == 0 {
                env_context_string(env)?
            } else {
                str0(&vals, 0)
            };
            Ok(vec![Item::Str(s)])
        }
        "data" => {
            if arity != 1 {
                return wrong_arity("1");
            }
            Ok(vals.remove_first().into_iter().map(|i| i.atomize()).collect())
        }
        "concat" => {
            if arity < 2 {
                return wrong_arity("2 or more");
            }
            let mut s = String::new();
            for i in 0..arity {
                s.push_str(&str0(&vals, i));
            }
            Ok(vec![Item::Str(s)])
        }
        "string-join" => {
            if arity != 2 {
                return wrong_arity("2");
            }
            let sep = str0(&vals, 1);
            let parts: Vec<String> = vals[0]
                .iter()
                .map(|i| i.atomize().to_string_value())
                .collect();
            Ok(vec![Item::Str(parts.join(&sep))])
        }
        "count" => {
            if arity != 1 {
                return wrong_arity("1");
            }
            Ok(vec![Item::Num(vals[0].len() as f64)])
        }
        "sum" => {
            if arity != 1 {
                return wrong_arity("1");
            }
            let total: f64 = vals[0].iter().map(|i| i.to_number()).sum();
            // XQuery's sum(()) is 0.
            Ok(vec![Item::Num(if vals[0].is_empty() { 0.0 } else { total })])
        }
        "avg" => {
            if arity != 1 {
                return wrong_arity("1");
            }
            if vals[0].is_empty() {
                return Ok(Vec::new());
            }
            let total: f64 = vals[0].iter().map(|i| i.to_number()).sum();
            Ok(vec![Item::Num(total / vals[0].len() as f64)])
        }
        "min" | "max" => {
            if arity != 1 {
                return wrong_arity("1");
            }
            if vals[0].is_empty() {
                return Ok(Vec::new());
            }
            let mut nums: Vec<f64> = vals[0].iter().map(|i| i.to_number()).collect();
            nums.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let v = if name == "min" { nums[0] } else { nums[nums.len() - 1] };
            Ok(vec![Item::Num(v)])
        }
        "exists" => {
            if arity != 1 {
                return wrong_arity("1");
            }
            Ok(vec![Item::Bool(!vals[0].is_empty())])
        }
        "empty" => {
            if arity != 1 {
                return wrong_arity("1");
            }
            Ok(vec![Item::Bool(vals[0].is_empty())])
        }
        "not" => {
            if arity != 1 {
                return wrong_arity("1");
            }
            Ok(vec![Item::Bool(!ebv(&vals[0])?)])
        }
        "boolean" => {
            if arity != 1 {
                return wrong_arity("1");
            }
            Ok(vec![Item::Bool(ebv(&vals[0])?)])
        }
        "true" => Ok(vec![Item::Bool(true)]),
        "false" => Ok(vec![Item::Bool(false)]),
        "number" => {
            let n = if arity == 0 {
                str_to_num(&env_context_string(env)?)
            } else {
                num0(&vals, 0)
            };
            Ok(vec![Item::Num(n)])
        }
        "floor" => {
            if arity != 1 {
                return wrong_arity("1");
            }
            Ok(vec![Item::Num(num0(&vals, 0).floor())])
        }
        "ceiling" => {
            if arity != 1 {
                return wrong_arity("1");
            }
            Ok(vec![Item::Num(num0(&vals, 0).ceil())])
        }
        "round" => {
            if arity != 1 {
                return wrong_arity("1");
            }
            let n = num0(&vals, 0);
            Ok(vec![Item::Num(if n.is_nan() { n } else { (n + 0.5).floor() })])
        }
        "contains" => {
            if arity != 2 {
                return wrong_arity("2");
            }
            Ok(vec![Item::Bool(str0(&vals, 0).contains(&str0(&vals, 1)))])
        }
        "starts-with" => {
            if arity != 2 {
                return wrong_arity("2");
            }
            Ok(vec![Item::Bool(str0(&vals, 0).starts_with(&str0(&vals, 1)))])
        }
        "substring-before" => {
            if arity != 2 {
                return wrong_arity("2");
            }
            let s = str0(&vals, 0);
            let sub = str0(&vals, 1);
            Ok(vec![Item::Str(
                s.find(&sub).map(|i| s[..i].to_string()).unwrap_or_default(),
            )])
        }
        "substring-after" => {
            if arity != 2 {
                return wrong_arity("2");
            }
            let s = str0(&vals, 0);
            let sub = str0(&vals, 1);
            Ok(vec![Item::Str(
                s.find(&sub)
                    .map(|i| s[i + sub.len()..].to_string())
                    .unwrap_or_default(),
            )])
        }
        "substring" => {
            if arity != 2 && arity != 3 {
                return wrong_arity("2 or 3");
            }
            let s = str0(&vals, 0);
            let chars: Vec<char> = s.chars().collect();
            let round = |x: f64| if x.is_nan() { f64::NAN } else { (x + 0.5).floor() };
            let start = round(num0(&vals, 1));
            let end = if arity == 3 { start + round(num0(&vals, 2)) } else { f64::INFINITY };
            let out: String = chars
                .iter()
                .enumerate()
                .filter(|(i, _)| {
                    let p = (*i + 1) as f64;
                    p >= start && p < end
                })
                .map(|(_, c)| *c)
                .collect();
            Ok(vec![Item::Str(out)])
        }
        "string-length" => {
            let s = if arity == 0 {
                env_context_string(env)?
            } else {
                str0(&vals, 0)
            };
            Ok(vec![Item::Num(s.chars().count() as f64)])
        }
        "normalize-space" => {
            let s = if arity == 0 {
                env_context_string(env)?
            } else {
                str0(&vals, 0)
            };
            Ok(vec![Item::Str(
                s.split_ascii_whitespace().collect::<Vec<_>>().join(" "),
            )])
        }
        "translate" => {
            if arity != 3 {
                return wrong_arity("3");
            }
            let s = str0(&vals, 0);
            let from: Vec<char> = str0(&vals, 1).chars().collect();
            let to: Vec<char> = str0(&vals, 2).chars().collect();
            let out: String = s
                .chars()
                .filter_map(|c| match from.iter().position(|&f| f == c) {
                    Some(i) => to.get(i).copied(),
                    None => Some(c),
                })
                .collect();
            Ok(vec![Item::Str(out)])
        }
        "upper-case" => {
            if arity != 1 {
                return wrong_arity("1");
            }
            Ok(vec![Item::Str(str0(&vals, 0).to_uppercase())])
        }
        "lower-case" => {
            if arity != 1 {
                return wrong_arity("1");
            }
            Ok(vec![Item::Str(str0(&vals, 0).to_lowercase())])
        }
        "distinct-values" => {
            if arity != 1 {
                return wrong_arity("1");
            }
            let mut seen = Vec::new();
            let mut out = Vec::new();
            for i in &vals[0] {
                let s = i.atomize().to_string_value();
                if !seen.contains(&s) {
                    seen.push(s.clone());
                    out.push(Item::Str(s));
                }
            }
            Ok(out)
        }
        "position" => Ok(vec![Item::Num(env.pos as f64)]),
        "last" => Ok(vec![Item::Num(env.size as f64)]),
        "name" | "local-name" => {
            let node = if arity == 0 {
                match &env.ctx {
                    Some(Item::Node(n)) => Some(n.clone()),
                    _ => None,
                }
            } else {
                match vals[0].first() {
                    Some(Item::Node(n)) => Some(n.clone()),
                    _ => None,
                }
            };
            let s = node
                .and_then(|n| {
                    n.doc.node_name(n.id).map(|q| {
                        if name == "name" {
                            q.lexical()
                        } else {
                            q.local.to_string()
                        }
                    })
                })
                .unwrap_or_default();
            Ok(vec![Item::Str(s)])
        }
        other => Err(XqError(format!("unknown function fn:{other}()"))),
    }
}

fn env_context_string(env: &EvalEnv<'_>) -> Result<String, XqError> {
    env.ctx
        .as_ref()
        .map(|i| i.to_string_value())
        .ok_or_else(|| XqError("no context item".into()))
}

trait RemoveFirst {
    fn remove_first(self) -> Sequence;
}

impl RemoveFirst for Vec<Sequence> {
    fn remove_first(mut self) -> Sequence {
        if self.is_empty() {
            Vec::new()
        } else {
            self.remove(0)
        }
    }
}

/// Format a number with the shared XPath/XQuery rules.
pub fn format_number(n: f64) -> String {
    num_to_string(n)
}

#[cfg(test)]
mod tests {
    use crate::eval::{evaluate_query, serialize_sequence, NodeHandle};
    use crate::parser::parse_query;

    fn run(src: &str, xml: &str) -> String {
        let q = parse_query(src).unwrap();
        let input = NodeHandle::document(xsltdb_xml::parse::parse(xml).unwrap());
        serialize_sequence(&evaluate_query(&q, Some(input)).unwrap())
    }

    #[test]
    fn aggregates() {
        let xml = "<r><n>1</n><n>2</n><n>3</n></r>";
        assert_eq!(run("fn:count(/r/n)", xml), "3");
        assert_eq!(run("fn:sum(/r/n)", xml), "6");
        assert_eq!(run("fn:avg(/r/n)", xml), "2");
        assert_eq!(run("fn:min(/r/n)", xml), "1");
        assert_eq!(run("fn:max(/r/n)", xml), "3");
        assert_eq!(run("fn:sum(())", xml), "0");
    }

    #[test]
    fn string_functions() {
        let xml = "<r/>";
        assert_eq!(run("fn:concat('a', 'b', 1)", xml), "ab1");
        assert_eq!(run("fn:string-join(('a','b','c'), '-')", xml), "a-b-c");
        assert_eq!(run("fn:contains('hello', 'ell')", xml), "true");
        assert_eq!(run("fn:substring('12345', 2, 3)", xml), "234");
        assert_eq!(run("fn:normalize-space('  a   b ')", xml), "a b");
        assert_eq!(run("fn:upper-case('abc')", xml), "ABC");
        assert_eq!(run("fn:translate('bar', 'abc', 'ABC')", xml), "BAr");
    }

    #[test]
    fn existence_functions() {
        let xml = "<r><a/></r>";
        assert_eq!(run("fn:exists(/r/a)", xml), "true");
        assert_eq!(run("fn:empty(/r/a)", xml), "false");
        assert_eq!(run("fn:not(fn:exists(/r/zz))", xml), "true");
    }

    #[test]
    fn distinct_values() {
        let xml = "<r><n>a</n><n>b</n><n>a</n></r>";
        assert_eq!(run("fn:string-join(fn:distinct-values(/r/n), ',')", xml), "a,b");
    }

    #[test]
    fn fn_prefix_optional() {
        assert_eq!(run("count((1,2))", "<r/>"), "2");
        assert_eq!(run("string(5)", "<r/>"), "5");
    }

    #[test]
    fn name_functions() {
        let xml = "<r><a/></r>";
        assert_eq!(run("fn:name(/r/a)", xml), "a");
        assert_eq!(run("fn:local-name(/r/a)", xml), "a");
    }

    #[test]
    fn position_in_predicate() {
        let xml = "<r><i>x</i><i>y</i></r>";
        assert_eq!(run("fn:string(/r/i[fn:position() = 2])", xml), "y");
        assert_eq!(run("fn:string(/r/i[fn:last()])", xml), "y");
    }

    #[test]
    fn unknown_function_is_error() {
        let q = parse_query("fn:bogus(1)").unwrap();
        let input = NodeHandle::document(xsltdb_xml::parse::parse("<r/>").unwrap());
        assert!(evaluate_query(&q, Some(input)).is_err());
    }
}
