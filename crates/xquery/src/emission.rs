//! Static emission-position analysis: which constructor sites in a query
//! can stream events straight into an `XmlSink`, and which must spill to a
//! materialised tree first.
//!
//! An expression is in **emission position** when its value flows directly
//! to the serialized output without being re-inspected: the query body,
//! elements of a comma sequence in emission position, both branches of a
//! conditional in emission position, the `return` of a FLWOR in emission
//! position (the `return` runs *after* `order by`, so sorting does not
//! force materialisation of the returned constructors), and constructor
//! content. Everything else — FLWOR sources and `let` values, `where` and
//! `order by` keys, predicates, comparison/arithmetic operands, function
//! arguments, AVT attribute expressions and computed names — re-inspects
//! its value and is **spill position**.
//!
//! A *user-declared function's body* inherits the strongest position of
//! its call sites, propagated through the call graph to a fixpoint: a
//! function only ever called from emission positions streams its body
//! (the sink-mode evaluator inlines it), while a single spill-position
//! call site forces the whole body to spill — conservative, since the
//! analysis is static and the body is analyzed once.
//!
//! The analysis is the static twin of the per-expression decision the
//! sink-mode evaluator ([`crate::evaluate_query_to_sink`]) takes
//! dynamically: a query whose [`EmissionReport::spill_sites`] is zero is
//! *guaranteed* to build zero arena nodes while streaming, which is the
//! gate `stream_report` enforces per XSLTMark case.

use crate::ast::{AttrValuePart, Clause, PathStart, XQuery, XqExpr};

/// Constructor-site census of one query, split by emission position.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EmissionReport {
    /// Constructor sites that stream as events (no tree built).
    pub emit_sites: usize,
    /// Constructor sites whose value is re-inspected, so the sink-mode
    /// evaluator spills them to a tree and replays.
    pub spill_sites: usize,
}

impl EmissionReport {
    /// True when sink-mode evaluation of this query cannot build a single
    /// arena node: every constructor streams.
    pub fn spill_free(&self) -> bool {
        self.spill_sites == 0
    }
}

/// How a function's body runs, as decided by its call sites. Strictly
/// ordered — a mode only ever strengthens `Unseen → Emit → Spill` during
/// the fixpoint, which is what bounds the iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum BodyMode {
    /// Never called: analyzed in spill position (nothing is known).
    Unseen,
    /// Only emission-position call sites: the body streams.
    Emit,
    /// At least one spill-position call site: the body spills.
    Spill,
}

/// Analyze a full query: the body starts in emission position; prolog
/// variable values are spill position (their values are bound and
/// re-inspected, never emitted directly); each function body runs in the
/// strongest position among its call sites (see module docs).
pub fn analyze_query(q: &XQuery) -> EmissionReport {
    use std::collections::HashMap;
    let bodies: HashMap<&str, &XqExpr> =
        q.functions.iter().map(|f| (f.name.as_str(), &f.body)).collect();

    // Pass 1 — call-graph fixpoint: propagate call-site positions into
    // function bodies. Re-scanning a body when its mode strengthens lets
    // the new position flow on to its callees; modes strengthen at most
    // twice per function, so the worklist terminates even on recursion.
    let mut modes: HashMap<&str, BodyMode> = HashMap::new();
    let mut work: Vec<(&XqExpr, bool)> = vec![(&q.body, true)];
    for v in &q.variables {
        work.push((&v.value, false));
    }
    while let Some((e, emitting)) = work.pop() {
        let mut calls: Vec<(&str, bool)> = Vec::new();
        let mut scratch = EmissionReport::default();
        visit(e, emitting, &mut scratch, &mut |name, pos| calls.push((name, pos)));
        for (name, pos) in calls {
            let Some((&key, &body)) = bodies.get_key_value(name) else { continue };
            let cur = modes.get(key).copied().unwrap_or(BodyMode::Unseen);
            let next = cur.max(if pos { BodyMode::Emit } else { BodyMode::Spill });
            if next != cur {
                modes.insert(key, next);
                work.push((body, next == BodyMode::Emit));
            }
        }
    }

    // Pass 2 — count constructor sites, each function body exactly once,
    // in the mode the fixpoint settled on.
    let mut report = EmissionReport::default();
    for v in &q.variables {
        visit(&v.value, false, &mut report, &mut |_, _| {});
    }
    for f in &q.functions {
        let emitting =
            modes.get(f.name.as_str()).copied().unwrap_or(BodyMode::Unseen) == BodyMode::Emit;
        visit(&f.body, emitting, &mut report, &mut |_, _| {});
    }
    visit(&q.body, true, &mut report, &mut |_, _| {});
    report
}

/// Analyze a bare expression as if it were a query body (no user
/// functions in scope, so every call is a builtin).
pub fn analyze_expr(e: &XqExpr) -> EmissionReport {
    let mut report = EmissionReport::default();
    visit(e, true, &mut report, &mut |_, _| {});
    report
}

/// Walk `e`, counting constructor sites into `report` and reporting each
/// function-call site's `(name, emitting)` position to `on_call`.
fn visit<'e>(
    e: &'e XqExpr,
    emitting: bool,
    report: &mut EmissionReport,
    on_call: &mut dyn FnMut(&'e str, bool),
) {
    match e {
        // Emission position propagates through exactly the shapes the
        // sink-mode evaluator keeps streaming.
        XqExpr::Seq(es) => es.iter().for_each(|x| visit(x, emitting, report, on_call)),
        XqExpr::If { cond, then, els } => {
            visit(cond, false, report, on_call);
            visit(then, emitting, report, on_call);
            visit(els, emitting, report, on_call);
        }
        XqExpr::Flwor { clauses, where_clause, order_by, ret } => {
            for c in clauses {
                match c {
                    Clause::For { source, .. } => visit(source, false, report, on_call),
                    Clause::Let { value, .. } => visit(value, false, report, on_call),
                }
            }
            if let Some(w) = where_clause {
                visit(w, false, report, on_call);
            }
            for o in order_by {
                visit(&o.key, false, report, on_call);
            }
            visit(ret, emitting, report, on_call);
        }
        XqExpr::Annotated { expr, .. } => visit(expr, emitting, report, on_call),

        // Constructor sites: counted on the side their position decides.
        XqExpr::DirectElem { attrs, content, .. } => {
            count_site(emitting, report);
            for (_, parts) in attrs {
                for p in parts {
                    if let AttrValuePart::Expr(e) = p {
                        visit(e, false, report, on_call);
                    }
                }
            }
            // Direct content inherits the element's position: a nested
            // constructor streams iff its parent streams.
            content.iter().for_each(|c| visit(c, emitting, report, on_call));
        }
        XqExpr::CompElem { name, content } => {
            count_site(emitting, report);
            visit(name, false, report, on_call);
            visit(content, emitting, report, on_call);
        }
        XqExpr::CompAttr { name, value } => {
            count_site(emitting, report);
            visit(name, false, report, on_call);
            visit(value, false, report, on_call);
        }
        XqExpr::CompText(inner) | XqExpr::CompComment(inner) => {
            count_site(emitting, report);
            visit(inner, false, report, on_call);
        }
        XqExpr::CompPi { content, .. } => {
            count_site(emitting, report);
            visit(content, false, report, on_call);
        }

        // A call site: arguments are re-inspected (bound to parameters),
        // the call itself is reported so the caller can propagate its
        // position into the callee's body.
        XqExpr::Call { name, args } => {
            args.iter().for_each(|a| visit(a, false, report, on_call));
            on_call(name.as_str(), emitting);
        }

        // Everything else re-inspects its operands: recurse in spill
        // position.
        XqExpr::Or(a, b)
        | XqExpr::And(a, b)
        | XqExpr::Union(a, b)
        | XqExpr::Compare(_, a, b)
        | XqExpr::Arith(_, a, b) => {
            visit(a, false, report, on_call);
            visit(b, false, report, on_call);
        }
        XqExpr::Neg(a) | XqExpr::InstanceOf(a, _) => visit(a, false, report, on_call),
        XqExpr::Path { start, steps } => {
            if let PathStart::Expr(e) = start {
                visit(e, false, report, on_call);
            }
            for s in steps {
                s.predicates.iter().for_each(|p| visit(p, false, report, on_call));
            }
        }
        XqExpr::Filter { base, predicates } => {
            visit(base, false, report, on_call);
            predicates.iter().for_each(|p| visit(p, false, report, on_call));
        }

        XqExpr::StrLit(_)
        | XqExpr::NumLit(_)
        | XqExpr::VarRef(_)
        | XqExpr::ContextItem
        | XqExpr::TextContent(_)
        | XqExpr::Empty => {}
    }
}

fn count_site(emitting: bool, report: &mut EmissionReport) {
    if emitting {
        report.emit_sites += 1;
    } else {
        report.spill_sites += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn analyze(src: &str) -> EmissionReport {
        analyze_query(&parse_query(src).unwrap())
    }

    #[test]
    fn top_level_constructor_emits() {
        let r = analyze("<a><b/></a>");
        assert_eq!(r, EmissionReport { emit_sites: 2, spill_sites: 0 });
        assert!(r.spill_free());
    }

    #[test]
    fn flwor_return_emits_sources_spill() {
        // The constructor in the return streams; the one inside the
        // where-clause comparison must be re-inspected.
        let r = analyze("for $e in /r/e where $e = <probe/> return <out/>");
        assert_eq!(r, EmissionReport { emit_sites: 1, spill_sites: 1 });
    }

    #[test]
    fn predicate_over_fresh_element_spills() {
        let r = analyze("<out>{(<probe><v>1</v></probe>)[v = 1]}</out>");
        assert_eq!(r.emit_sites, 1);
        // <probe> and its nested <v> both sit under the filter base.
        assert_eq!(r.spill_sites, 2);
    }

    #[test]
    fn function_called_from_emission_position_streams_its_body() {
        let r = analyze("declare function local:w($n) { <w>{fn:string($n)}</w> }; local:w(/r)");
        assert_eq!(r, EmissionReport { emit_sites: 1, spill_sites: 0 });
        assert!(r.spill_free());
    }

    #[test]
    fn function_called_from_spill_position_spills_its_body() {
        // The only call site sits inside a where clause, so the body's
        // constructor must be materialised for re-inspection.
        let r = analyze(
            "declare function local:p($n) { <p>{fn:string($n)}</p> }; \
             for $e in /r/e where local:p($e) return <out/>",
        );
        assert_eq!(r, EmissionReport { emit_sites: 1, spill_sites: 1 });
        assert!(!r.spill_free());
    }

    #[test]
    fn one_spill_call_site_forces_the_whole_body_to_spill() {
        // Called from both positions: the spill site wins (conservative).
        let r = analyze(
            "declare function local:w($n) { <w/> }; \
             (local:w(/r), fn:count(local:w(/r)))",
        );
        assert_eq!(r, EmissionReport { emit_sites: 0, spill_sites: 1 });
    }

    #[test]
    fn recursive_function_reaches_fixpoint_as_emitting() {
        // Self-recursive template function, called only from emission
        // positions (body return + query body): the fixpoint must settle
        // on Emit without looping.
        let r = analyze(
            "declare function local:down($n) { \
               if ($n = 0) then <leaf/> else <node>{local:down($n - 1)}</node> \
             }; local:down(3)",
        );
        assert_eq!(r, EmissionReport { emit_sites: 2, spill_sites: 0 });
        assert!(r.spill_free());
    }

    #[test]
    fn conditional_branches_inherit_position() {
        let r = analyze("if (/r/a) then <yes/> else <no/>");
        assert_eq!(r, EmissionReport { emit_sites: 2, spill_sites: 0 });
    }

    #[test]
    fn order_by_keeps_return_in_emission_position() {
        let r = analyze("for $e in /r/e order by $e/n return <out>{fn:string($e/n)}</out>");
        assert_eq!(r, EmissionReport { emit_sites: 1, spill_sites: 0 });
    }

    #[test]
    fn computed_constructors_count_by_position() {
        let r = analyze("element {'e'} {attribute {'k'} {'v'}, text {'t'}}");
        // element + attribute + text all stream (attribute/text content
        // are string-built, not tree-built, on the sink path).
        assert_eq!(r, EmissionReport { emit_sites: 3, spill_sites: 0 });
    }
}
