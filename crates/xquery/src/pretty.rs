//! Pretty-printer producing the paper's Table-8 style textual XQuery. The
//! output parses back with [`crate::parser::parse_query`] (round-trip tested).

use crate::ast::*;

/// Render a full query.
pub fn pretty_query(q: &XQuery) -> String {
    let mut out = String::new();
    for v in &q.variables {
        out.push_str(&format!("declare variable ${} := {};\n", v.name, pretty(&v.value)));
    }
    for f in &q.functions {
        let params: Vec<String> = f.params.iter().map(|p| format!("${p}")).collect();
        out.push_str(&format!(
            "declare function {}({}) {{\n{}\n}};\n",
            f.name,
            params.join(", "),
            indent(&pretty(&f.body), 1)
        ));
    }
    out.push_str(&pretty(&q.body));
    out
}

/// Render one expression.
pub fn pretty(e: &XqExpr) -> String {
    let mut s = String::new();
    write_expr(e, 0, &mut s);
    s
}

fn indent(s: &str, levels: usize) -> String {
    let pad = "  ".repeat(levels);
    s.lines()
        .map(|l| if l.is_empty() { l.to_string() } else { format!("{pad}{l}") })
        .collect::<Vec<_>>()
        .join("\n")
}

fn pad_to(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_expr(e: &XqExpr, level: usize, out: &mut String) {
    match e {
        XqExpr::Empty => out.push_str("()"),
        XqExpr::StrLit(s) => {
            out.push('"');
            out.push_str(&s.replace('"', "\"\""));
            out.push('"');
        }
        XqExpr::NumLit(n) => out.push_str(&xsltdb_xpath::value::num_to_string(*n)),
        XqExpr::VarRef(v) => {
            out.push('$');
            out.push_str(v);
        }
        XqExpr::ContextItem => out.push('.'),
        XqExpr::TextContent(t) => out.push_str(&escape_content(t)),
        XqExpr::Annotated { comment, expr } => {
            out.push_str(&format!("(: {comment} :)\n"));
            pad_to(out, level);
            write_expr(expr, level, out);
        }
        XqExpr::Seq(es) => {
            out.push_str("(\n");
            for (i, sub) in es.iter().enumerate() {
                pad_to(out, level + 1);
                write_expr(sub, level + 1, out);
                if i + 1 < es.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            pad_to(out, level);
            out.push(')');
        }
        XqExpr::Flwor { clauses, where_clause, order_by, ret } => {
            for c in clauses {
                match c {
                    Clause::For { var, at, source } => {
                        out.push_str(&format!("for ${var}"));
                        if let Some(p) = at {
                            out.push_str(&format!(" at ${p}"));
                        }
                        out.push_str(" in ");
                        write_expr(source, level, out);
                    }
                    Clause::Let { var, value } => {
                        out.push_str(&format!("let ${var} := "));
                        write_expr(value, level, out);
                    }
                }
                out.push('\n');
                pad_to(out, level);
            }
            if let Some(w) = where_clause {
                out.push_str("where ");
                write_expr(w, level, out);
                out.push('\n');
                pad_to(out, level);
            }
            if !order_by.is_empty() {
                out.push_str("order by ");
                for (i, o) in order_by.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_expr(&o.key, level, out);
                    if o.descending {
                        out.push_str(" descending");
                    }
                }
                out.push('\n');
                pad_to(out, level);
            }
            out.push_str("return\n");
            pad_to(out, level + 1);
            write_expr(ret, level + 1, out);
        }
        XqExpr::If { cond, then, els } => {
            out.push_str("if (");
            write_expr(cond, level, out);
            out.push_str(") then\n");
            pad_to(out, level + 1);
            write_expr(then, level + 1, out);
            out.push('\n');
            pad_to(out, level);
            out.push_str("else\n");
            pad_to(out, level + 1);
            write_expr(els, level + 1, out);
        }
        XqExpr::Or(a, b) => binary(out, level, a, "or", b),
        XqExpr::Union(a, b) => binary(out, level, a, "|", b),
        XqExpr::And(a, b) => binary(out, level, a, "and", b),
        XqExpr::Compare(op, a, b) => binary(out, level, a, op.symbol(), b),
        XqExpr::Arith(op, a, b) => binary(out, level, a, op.symbol(), b),
        XqExpr::Neg(a) => {
            out.push('-');
            write_operand(a, level, out);
        }
        XqExpr::InstanceOf(a, t) => {
            write_operand(a, level, out);
            out.push_str(&format!(" instance of {t}"));
        }
        XqExpr::Path { start, steps } => {
            match start {
                PathStart::Root => {
                    out.push('/');
                    if steps.is_empty() {
                        return;
                    }
                }
                PathStart::Context => {
                    // Purely relative; no prefix.
                }
                PathStart::Expr(b) => {
                    write_operand(b, level, out);
                    if !steps.is_empty() {
                        out.push('/');
                    }
                }
            }
            write_steps(steps, start, level, out);
        }
        XqExpr::Filter { base, predicates } => {
            write_operand(base, level, out);
            for p in predicates {
                out.push('[');
                write_expr(p, level, out);
                out.push(']');
            }
        }
        XqExpr::Call { name, args } => {
            out.push_str(name);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(a, level, out);
            }
            out.push(')');
        }
        XqExpr::DirectElem { name, attrs, content } => {
            out.push('<');
            out.push_str(&name.lexical());
            for (aname, parts) in attrs {
                out.push(' ');
                out.push_str(&aname.lexical());
                out.push_str("=\"");
                for p in parts {
                    match p {
                        AttrValuePart::Text(t) => {
                            out.push_str(&t.replace('"', "\"\"").replace('{', "{{").replace('}', "}}"))
                        }
                        AttrValuePart::Expr(e) => {
                            out.push('{');
                            write_expr(e, level, out);
                            out.push('}');
                        }
                    }
                }
                out.push('"');
            }
            if content.is_empty() {
                out.push_str("/>");
                return;
            }
            out.push('>');
            let complex = content.len() > 1
                || content
                    .iter()
                    .any(|c| !matches!(c, XqExpr::TextContent(_) | XqExpr::StrLit(_)));
            // Newlines may only be inserted next to non-text items: a
            // newline adjacent to literal text would change the text node on
            // reparse.
            let mut prev_text = false;
            for c in content {
                match c {
                    XqExpr::TextContent(t) => {
                        out.push_str(&escape_content(t));
                        prev_text = true;
                    }
                    XqExpr::DirectElem { .. } => {
                        if complex && !prev_text {
                            out.push('\n');
                            pad_to(out, level + 1);
                        }
                        write_expr(c, level + 1, out);
                        prev_text = false;
                    }
                    other => {
                        if complex && !prev_text {
                            out.push('\n');
                            pad_to(out, level + 1);
                        }
                        out.push('{');
                        write_expr(other, level + 1, out);
                        out.push('}');
                        prev_text = false;
                    }
                }
            }
            if complex && !prev_text {
                out.push('\n');
                pad_to(out, level);
            }
            out.push_str("</");
            out.push_str(&name.lexical());
            out.push('>');
        }
        XqExpr::CompElem { name, content } => {
            out.push_str("element {");
            write_expr(name, level, out);
            out.push_str("} {");
            write_expr(content, level, out);
            out.push('}');
        }
        XqExpr::CompAttr { name, value } => {
            out.push_str("attribute {");
            write_expr(name, level, out);
            out.push_str("} {");
            write_expr(value, level, out);
            out.push('}');
        }
        XqExpr::CompText(e) => {
            out.push_str("text {");
            write_expr(e, level, out);
            out.push('}');
        }
        XqExpr::CompComment(e) => {
            out.push_str("comment {");
            write_expr(e, level, out);
            out.push('}');
        }
        XqExpr::CompPi { target, content } => {
            out.push_str("processing-instruction ");
            out.push_str(target);
            out.push_str(" {");
            write_expr(content, level, out);
            out.push('}');
        }
    }
}

fn write_steps(steps: &[XqStep], start: &PathStart, level: usize, out: &mut String) {
    let mut first = true;
    let mut i = 0;
    while i < steps.len() {
        let s = &steps[i];
        let collapsible = s.axis == xsltdb_xpath::Axis::DescendantOrSelf
            && s.test == xsltdb_xpath::NodeTest::Node
            && s.predicates.is_empty()
            && i + 1 < steps.len();
        if collapsible && (!first || !matches!(start, PathStart::Context)) {
            out.push('/'); // the caller printed one '/' already
            i += 1;
            write_step(&steps[i], level, out);
            first = false;
            i += 1;
            continue;
        }
        if !first {
            out.push('/');
        }
        write_step(s, level, out);
        first = false;
        i += 1;
    }
}

fn write_step(s: &XqStep, level: usize, out: &mut String) {
    use xsltdb_xpath::Axis;
    match (s.axis, &s.test) {
        (Axis::SelfAxis, xsltdb_xpath::NodeTest::Node) => out.push('.'),
        (Axis::Parent, xsltdb_xpath::NodeTest::Node) => out.push_str(".."),
        (Axis::Child, t) => out.push_str(&t.to_string()),
        (Axis::Attribute, t) => {
            out.push('@');
            out.push_str(&t.to_string());
        }
        (a, t) => out.push_str(&format!("{}::{t}", a.name())),
    }
    for p in &s.predicates {
        out.push('[');
        write_expr(p, level, out);
        out.push(']');
    }
}

fn binary(out: &mut String, level: usize, a: &XqExpr, op: &str, b: &XqExpr) {
    write_operand(a, level, out);
    out.push(' ');
    out.push_str(op);
    out.push(' ');
    write_operand(b, level, out);
}

/// Operands of binary/postfix constructs get parentheses unless atomic.
fn write_operand(e: &XqExpr, level: usize, out: &mut String) {
    let atomic = matches!(
        e,
        XqExpr::StrLit(_)
            | XqExpr::NumLit(_)
            | XqExpr::VarRef(_)
            | XqExpr::ContextItem
            | XqExpr::Call { .. }
            | XqExpr::Path { .. }
            | XqExpr::Filter { .. }
            | XqExpr::Empty
            | XqExpr::DirectElem { .. }
            | XqExpr::Seq(_)
    );
    if atomic {
        write_expr(e, level, out);
    } else {
        out.push('(');
        write_expr(e, level, out);
        out.push(')');
    }
}

fn escape_content(t: &str) -> String {
    t.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('{', "{{")
        .replace('}', "}}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_query};

    fn roundtrip(src: &str) {
        let e1 = parse_expr(src).unwrap();
        let printed = pretty(&e1);
        let e2 = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("reparse failed for:\n{printed}\n{err}"));
        assert_eq!(e1, e2, "mismatch:\n{printed}");
    }

    #[test]
    fn roundtrips() {
        for src in [
            "for $tr in ./table/tr return $tr",
            "let $a := /dept return fn:string($a/dname)",
            r#"<H2>Department name: {fn:string($v)}</H2>"#,
            r#"<table border="2"><td><b>EmpNo</b></td>{1}</table>"#,
            "if ($v instance of element(dname)) then 1 else 2",
            "(1, 2, <x/>)",
            "fn:concat(\"a\", fn:string($b))",
            "$var003/emp[sal > 2000]",
            "$var000//text()",
            "-(1 + 2)",
            "element {'x'} {1, 2}",
            "fn:string-join(for $t in $v//text() return fn:string($t), \" \")",
            "for $e in $x/emp where $e/sal > 100 order by $e/ename descending return $e",
            "for $e at $p in $x/emp return <i n=\"{$p}\">{fn:string($e)}</i>",
            "comment {\"generated\"}",
            "processing-instruction target {\"run\"}",
            "for $v at $p in (for $s in $x/row order by $s/city return $s) return $p",
        ] {
            roundtrip(src);
        }
    }

    #[test]
    fn query_with_prolog_roundtrips() {
        let src = "declare variable $var000 := .;\ndeclare function local:t($n) { fn:string($n) };\nlocal:t($var000)";
        let q1 = parse_query(src).unwrap();
        let printed = pretty_query(&q1);
        let q2 = parse_query(&printed).unwrap_or_else(|e| panic!("{printed}\n{e}"));
        assert_eq!(q1, q2);
    }

    #[test]
    fn annotated_prints_comment() {
        let e = XqExpr::Annotated {
            comment: r#"<xsl:template match="dept">"#.into(),
            expr: Box::new(XqExpr::NumLit(1.0)),
        };
        let p = pretty(&e);
        assert!(p.contains(r#"(: <xsl:template match="dept"> :)"#));
        // And parses back (comment ignored).
        assert_eq!(parse_expr(&p).unwrap(), XqExpr::NumLit(1.0));
    }

    #[test]
    fn string_with_quotes_roundtrips() {
        let e = XqExpr::StrLit("say \"hi\"".into());
        let p = pretty(&e);
        assert_eq!(parse_expr(&p).unwrap(), e);
    }
}
