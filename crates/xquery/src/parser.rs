//! A recursive-descent parser for the XQuery subset.
//!
//! Covers exactly the language the XSLT rewrite emits (plus what users need
//! for queries like Table 10's `for $tr in ./table/tr return $tr`): prolog
//! variable/function declarations, FLWOR, conditionals, comparisons and
//! arithmetic, `instance of`, paths, direct and computed constructors,
//! `(: comments :)`, and function calls.

use crate::ast::*;
use std::fmt;
use xsltdb_xml::escape::decode_entities;
use xsltdb_xml::QName;
use xsltdb_xpath::{Axis, NodeTest};

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct XqParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for XqParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XQuery parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XqParseError {}

/// Parse a complete query (prolog + body).
pub fn parse_query(src: &str) -> Result<XQuery, XqParseError> {
    let mut p = Qp { src, pos: 0 };
    let q = p.query()?;
    p.ws();
    if p.pos != src.len() {
        return Err(p.err("unexpected trailing content"));
    }
    Ok(q)
}

/// Parse a single expression (no prolog).
pub fn parse_expr(src: &str) -> Result<XqExpr, XqParseError> {
    let mut p = Qp { src, pos: 0 };
    let e = p.expr()?;
    p.ws();
    if p.pos != src.len() {
        return Err(p.err("unexpected trailing content"));
    }
    Ok(e)
}

struct Qp<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Qp<'a> {
    fn err(&self, msg: impl Into<String>) -> XqParseError {
        XqParseError { offset: self.pos, message: msg.into() }
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    /// Skip whitespace and `(: ... :)` comments (which may nest).
    fn ws(&mut self) {
        loop {
            while matches!(self.peek(), Some(c) if c.is_ascii_whitespace()) {
                self.bump();
            }
            if self.rest().starts_with("(:") {
                self.pos += 2;
                let mut depth = 1;
                while depth > 0 {
                    if self.rest().starts_with("(:") {
                        depth += 1;
                        self.pos += 2;
                    } else if self.rest().starts_with(":)") {
                        depth -= 1;
                        self.pos += 2;
                    } else if self.bump().is_none() {
                        return; // unterminated comment: stop at EOF
                    }
                }
            } else {
                return;
            }
        }
    }

    fn eat(&mut self, s: &str) -> bool {
        self.ws();
        if self.rest().starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), XqParseError> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{s}`")))
        }
    }

    /// Peek a keyword (identifier with word boundary) without consuming.
    fn peek_kw(&mut self, kw: &str) -> bool {
        self.ws();
        let r = self.rest();
        r.starts_with(kw)
            && !r[kw.len()..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_' || c == '-' || c == ':')
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn ncname(&mut self) -> Result<String, XqParseError> {
        self.ws();
        let start = self.pos;
        match self.peek() {
            Some(c) if c.is_alphabetic() || c == '_' => {
                self.bump();
            }
            _ => return Err(self.err("expected a name")),
        }
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || matches!(c, '_' | '-' | '.')) {
            self.bump();
        }
        Ok(self.src[start..self.pos].to_string())
    }

    /// QName as a string, keeping the prefix: `fn:string`, `local:t1`.
    fn qname_str(&mut self) -> Result<String, XqParseError> {
        let first = self.ncname()?;
        if self.peek() == Some(':') && !self.rest().starts_with("::") {
            self.pos += 1;
            let second = self.ncname_nows()?;
            Ok(format!("{first}:{second}"))
        } else {
            Ok(first)
        }
    }

    fn ncname_nows(&mut self) -> Result<String, XqParseError> {
        let start = self.pos;
        match self.peek() {
            Some(c) if c.is_alphabetic() || c == '_' => {
                self.bump();
            }
            _ => return Err(self.err("expected a name")),
        }
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || matches!(c, '_' | '-' | '.')) {
            self.bump();
        }
        Ok(self.src[start..self.pos].to_string())
    }

    // ----- query & prolog -----

    fn query(&mut self) -> Result<XQuery, XqParseError> {
        let mut variables = Vec::new();
        let mut functions = Vec::new();
        loop {
            self.ws();
            if self.peek_kw("declare") {
                let save = self.pos;
                self.eat_kw("declare");
                if self.eat_kw("variable") {
                    self.expect("$")?;
                    let name = self.qname_str()?;
                    self.expect(":=")?;
                    let value = self.expr_single()?;
                    self.expect(";")?;
                    variables.push(VarDecl { name, value });
                    continue;
                } else if self.eat_kw("function") {
                    let name = self.qname_str()?;
                    self.expect("(")?;
                    let mut params = Vec::new();
                    if !self.eat(")") {
                        loop {
                            self.expect("$")?;
                            params.push(self.qname_str()?);
                            if !self.eat(",") {
                                break;
                            }
                        }
                        self.expect(")")?;
                    }
                    self.expect("{")?;
                    let body = self.expr()?;
                    self.expect("}")?;
                    self.expect(";")?;
                    functions.push(FunctionDecl { name, params, body });
                    continue;
                } else {
                    self.pos = save;
                    break;
                }
            }
            break;
        }
        let body = self.expr()?;
        Ok(XQuery { variables, functions, body })
    }

    // ----- expressions -----

    fn expr(&mut self) -> Result<XqExpr, XqParseError> {
        let mut es = vec![self.expr_single()?];
        while self.eat(",") {
            es.push(self.expr_single()?);
        }
        Ok(if es.len() == 1 { es.pop().expect("one element") } else { XqExpr::Seq(es) })
    }

    fn expr_single(&mut self) -> Result<XqExpr, XqParseError> {
        self.ws();
        if self.peek_kw("for") || self.peek_kw("let") {
            // Lookahead: must be followed by `$`.
            let save = self.pos;
            let kw_for = self.peek_kw("for");
            self.pos += 3;
            self.ws();
            if self.peek() == Some('$') {
                self.pos = save;
                return self.flwor();
            }
            self.pos = save;
            let _ = kw_for;
        }
        if self.peek_kw("if") {
            let save = self.pos;
            self.pos += 2;
            self.ws();
            if self.peek() == Some('(') {
                self.pos = save;
                return self.if_expr();
            }
            self.pos = save;
        }
        self.or_expr()
    }

    fn flwor(&mut self) -> Result<XqExpr, XqParseError> {
        let mut clauses = Vec::new();
        loop {
            if self.eat_kw("for") {
                loop {
                    self.expect("$")?;
                    let var = self.qname_str()?;
                    let at = if self.eat_kw("at") {
                        self.expect("$")?;
                        Some(self.qname_str()?)
                    } else {
                        None
                    };
                    if !self.eat_kw("in") {
                        return Err(self.err("expected `in` in for clause"));
                    }
                    let source = self.expr_single()?;
                    clauses.push(Clause::For { var, at, source });
                    if !self.eat(",") {
                        break;
                    }
                }
            } else if self.eat_kw("let") {
                loop {
                    self.expect("$")?;
                    let var = self.qname_str()?;
                    self.expect(":=")?;
                    let value = self.expr_single()?;
                    clauses.push(Clause::Let { var, value });
                    if !self.eat(",") {
                        break;
                    }
                }
            } else {
                break;
            }
        }
        if clauses.is_empty() {
            return Err(self.err("expected for/let clause"));
        }
        let where_clause = if self.eat_kw("where") {
            Some(Box::new(self.expr_single()?))
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            if !self.eat_kw("by") {
                return Err(self.err("expected `by` after `order`"));
            }
            loop {
                let key = self.expr_single()?;
                let descending = if self.eat_kw("descending") {
                    true
                } else {
                    let _ = self.eat_kw("ascending");
                    false
                };
                order_by.push(OrderSpec { key, descending, numeric: false });
                if !self.eat(",") {
                    break;
                }
            }
        }
        if !self.eat_kw("return") {
            return Err(self.err("expected `return` in FLWOR"));
        }
        let ret = Box::new(self.expr_single()?);
        Ok(XqExpr::Flwor { clauses, where_clause, order_by, ret })
    }

    fn if_expr(&mut self) -> Result<XqExpr, XqParseError> {
        if !self.eat_kw("if") {
            return Err(self.err("expected `if`"));
        }
        self.expect("(")?;
        let cond = Box::new(self.expr()?);
        self.expect(")")?;
        if !self.eat_kw("then") {
            return Err(self.err("expected `then`"));
        }
        let then = Box::new(self.expr_single()?);
        if !self.eat_kw("else") {
            return Err(self.err("expected `else`"));
        }
        let els = Box::new(self.expr_single()?);
        Ok(XqExpr::If { cond, then, els })
    }

    fn or_expr(&mut self) -> Result<XqExpr, XqParseError> {
        let mut e = self.and_expr()?;
        while self.eat_kw("or") {
            let r = self.and_expr()?;
            e = XqExpr::Or(Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<XqExpr, XqParseError> {
        let mut e = self.comparison_expr()?;
        while self.eat_kw("and") {
            let r = self.comparison_expr()?;
            e = XqExpr::And(Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn comparison_expr(&mut self) -> Result<XqExpr, XqParseError> {
        let e = self.additive_expr()?;
        self.ws();
        let op = if self.eat("!=") {
            CompOp::Ne
        } else if self.eat("<=") {
            CompOp::Le
        } else if self.eat(">=") {
            CompOp::Ge
        } else if self.eat("=") {
            CompOp::Eq
        } else if self.rest().starts_with('<') && !self.rest().starts_with("<<") {
            // `<` followed by a name char would be a constructor only in
            // primary position, never after a complete operand.
            self.pos += 1;
            CompOp::Lt
        } else if self.rest().starts_with('>') {
            self.pos += 1;
            CompOp::Gt
        } else {
            return Ok(e);
        };
        let r = self.additive_expr()?;
        Ok(XqExpr::Compare(op, Box::new(e), Box::new(r)))
    }

    fn additive_expr(&mut self) -> Result<XqExpr, XqParseError> {
        let mut e = self.multiplicative_expr()?;
        loop {
            self.ws();
            let op = if self.eat("+") {
                ArithOp::Add
            } else if self.rest().starts_with('-') {
                self.pos += 1;
                ArithOp::Sub
            } else {
                break;
            };
            let r = self.multiplicative_expr()?;
            e = XqExpr::Arith(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn multiplicative_expr(&mut self) -> Result<XqExpr, XqParseError> {
        let mut e = self.instanceof_expr()?;
        loop {
            self.ws();
            let op = if self.eat("*") {
                ArithOp::Mul
            } else if self.eat_kw("div") {
                ArithOp::Div
            } else if self.eat_kw("mod") {
                ArithOp::Mod
            } else {
                break;
            };
            let r = self.instanceof_expr()?;
            e = XqExpr::Arith(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn instanceof_expr(&mut self) -> Result<XqExpr, XqParseError> {
        let e = self.unary_expr()?;
        if self.eat_kw("instance") {
            if !self.eat_kw("of") {
                return Err(self.err("expected `of` after `instance`"));
            }
            let t = self.sequence_type()?;
            return Ok(XqExpr::InstanceOf(Box::new(e), t));
        }
        Ok(e)
    }

    fn sequence_type(&mut self) -> Result<SeqType, XqParseError> {
        let name = self.ncname()?;
        self.expect("(")?;
        let t = match name.as_str() {
            "element" | "attribute" => {
                self.ws();
                let inner = if self.peek() == Some(')') {
                    None
                } else {
                    Some(self.qname_str()?)
                };
                if name == "element" {
                    SeqType::Element(inner)
                } else {
                    SeqType::Attribute(inner)
                }
            }
            "text" => SeqType::Text,
            "node" => SeqType::Node,
            "item" => SeqType::Item,
            other => return Err(self.err(format!("unsupported sequence type `{other}`"))),
        };
        self.expect(")")?;
        Ok(t)
    }

    fn unary_expr(&mut self) -> Result<XqExpr, XqParseError> {
        self.ws();
        if self.rest().starts_with('-') {
            self.pos += 1;
            let e = self.unary_expr()?;
            return Ok(XqExpr::Neg(Box::new(e)));
        }
        self.union_expr()
    }

    fn union_expr(&mut self) -> Result<XqExpr, XqParseError> {
        let mut e = self.path_expr()?;
        loop {
            self.ws();
            if self.rest().starts_with('|') {
                self.pos += 1;
                let r = self.path_expr()?;
                e = XqExpr::Union(Box::new(e), Box::new(r));
            } else if self.eat_kw("union") {
                let r = self.path_expr()?;
                e = XqExpr::Union(Box::new(e), Box::new(r));
            } else {
                return Ok(e);
            }
        }
    }

    // ----- paths -----

    fn path_expr(&mut self) -> Result<XqExpr, XqParseError> {
        self.ws();
        if self.rest().starts_with("//") {
            self.pos += 2;
            let mut steps = vec![XqStep {
                axis: Axis::DescendantOrSelf,
                test: NodeTest::Node,
                predicates: Vec::new(),
            }];
            steps.push(self.axis_step()?);
            self.trailing_steps(&mut steps)?;
            return Ok(XqExpr::Path { start: PathStart::Root, steps });
        }
        if self.rest().starts_with('/') {
            self.pos += 1;
            self.ws();
            let mut steps = Vec::new();
            if self.starts_step() {
                steps.push(self.axis_step()?);
                self.trailing_steps(&mut steps)?;
            }
            return Ok(XqExpr::Path { start: PathStart::Root, steps });
        }
        if self.starts_primary() {
            let base = self.postfix_expr()?;
            self.ws();
            if self.rest().starts_with('/') {
                let mut steps = Vec::new();
                self.trailing_steps(&mut steps)?;
                return Ok(XqExpr::Path { start: PathStart::Expr(Box::new(base)), steps });
            }
            return Ok(base);
        }
        // A relative axis path from the context item.
        let mut steps = vec![self.axis_step()?];
        self.trailing_steps(&mut steps)?;
        Ok(XqExpr::Path { start: PathStart::Context, steps })
    }

    fn trailing_steps(&mut self, steps: &mut Vec<XqStep>) -> Result<(), XqParseError> {
        loop {
            self.ws();
            if self.rest().starts_with("//") {
                self.pos += 2;
                steps.push(XqStep {
                    axis: Axis::DescendantOrSelf,
                    test: NodeTest::Node,
                    predicates: Vec::new(),
                });
                steps.push(self.axis_step()?);
            } else if self.rest().starts_with('/') {
                self.pos += 1;
                steps.push(self.axis_step()?);
            } else {
                return Ok(());
            }
        }
    }

    fn starts_step(&mut self) -> bool {
        self.ws();
        matches!(self.peek(), Some(c) if c.is_alphabetic() || matches!(c, '_' | '@' | '*' | '.'))
    }

    /// Can the next token start a primary expression (rather than an axis
    /// step)?
    fn starts_primary(&mut self) -> bool {
        self.ws();
        match self.peek() {
            Some('$' | '(' | '"' | '\'' | '<') => {
                // `(` could also be a parenthesized step-position? In our
                // subset, parens in step position don't occur.
                !self.rest().starts_with("(:")
            }
            Some(c) if c.is_ascii_digit() => true,
            Some('.') => {
                // `.` alone or `.` followed by `/` is the context item
                // (primary); `..` is a step.
                !self.rest().starts_with("..")
            }
            Some(c) if c.is_alphabetic() || c == '_' => {
                // A name: function call `name(` (unless node-test), or
                // computed constructor `element {`, `attribute {`, `text {`.
                let save = self.pos;
                let name = match self.qname_str() {
                    Ok(n) => n,
                    Err(_) => {
                        self.pos = save;
                        return false;
                    }
                };
                self.ws();
                let next = self.peek();
                self.pos = save;
                match next {
                    Some('(') => !matches!(
                        name.as_str(),
                        "text" | "node" | "comment" | "processing-instruction"
                    ),
                    Some('{') => matches!(
                        name.as_str(),
                        "element" | "attribute" | "text" | "document" | "comment"
                    ),
                    // `processing-instruction target {` — the constructor
                    // names its target before the enclosed content.
                    Some(c2) if c2.is_alphabetic() || c2 == '_' => {
                        name == "processing-instruction"
                    }
                    _ => false,
                }
            }
            _ => false,
        }
    }

    fn axis_step(&mut self) -> Result<XqStep, XqParseError> {
        self.ws();
        if self.rest().starts_with("..") {
            self.pos += 2;
            return self.with_predicates(XqStep {
                axis: Axis::Parent,
                test: NodeTest::Node,
                predicates: Vec::new(),
            });
        }
        if self.rest().starts_with('.') {
            self.pos += 1;
            return self.with_predicates(XqStep {
                axis: Axis::SelfAxis,
                test: NodeTest::Node,
                predicates: Vec::new(),
            });
        }
        let mut axis = Axis::Child;
        if self.rest().starts_with('@') {
            self.pos += 1;
            axis = Axis::Attribute;
        } else {
            // Explicit axis `name::`.
            let save = self.pos;
            if let Ok(n) = self.ncname() {
                if self.rest().starts_with("::") {
                    match Axis::from_name(&n) {
                        Some(a) => {
                            axis = a;
                            self.pos += 2;
                        }
                        None => return Err(self.err(format!("unknown axis `{n}`"))),
                    }
                } else {
                    self.pos = save;
                }
            } else {
                self.pos = save;
            }
        }
        let test = self.node_test()?;
        self.with_predicates(XqStep { axis, test, predicates: Vec::new() })
    }

    fn with_predicates(&mut self, mut step: XqStep) -> Result<XqStep, XqParseError> {
        loop {
            self.ws();
            if self.rest().starts_with('[') {
                self.pos += 1;
                step.predicates.push(self.expr()?);
                self.expect("]")?;
            } else {
                return Ok(step);
            }
        }
    }

    fn node_test(&mut self) -> Result<NodeTest, XqParseError> {
        self.ws();
        if self.rest().starts_with('*') {
            self.pos += 1;
            return Ok(NodeTest::Star);
        }
        let name = self.ncname()?;
        self.ws();
        if self.rest().starts_with('(') {
            match name.as_str() {
                "text" | "node" | "comment" => {
                    self.pos += 1;
                    self.expect(")")?;
                    return Ok(match name.as_str() {
                        "text" => NodeTest::Text,
                        "node" => NodeTest::Node,
                        _ => NodeTest::Comment,
                    });
                }
                _ => return Err(self.err(format!("`{name}(` is not a node test here"))),
            }
        }
        if self.rest().starts_with(':') && !self.rest().starts_with("::") {
            self.pos += 1;
            if self.rest().starts_with('*') {
                self.pos += 1;
                return Ok(NodeTest::PrefixStar(name));
            }
            let local = self.ncname_nows()?;
            return Ok(NodeTest::Name { prefix: Some(name), local });
        }
        Ok(NodeTest::Name { prefix: None, local: name })
    }

    // ----- primaries -----

    fn postfix_expr(&mut self) -> Result<XqExpr, XqParseError> {
        let base = self.primary_expr()?;
        let mut predicates = Vec::new();
        loop {
            self.ws();
            if self.rest().starts_with('[') {
                self.pos += 1;
                predicates.push(self.expr()?);
                self.expect("]")?;
            } else {
                break;
            }
        }
        if predicates.is_empty() {
            Ok(base)
        } else {
            Ok(XqExpr::Filter { base: Box::new(base), predicates })
        }
    }

    fn primary_expr(&mut self) -> Result<XqExpr, XqParseError> {
        self.ws();
        match self.peek() {
            Some('$') => {
                self.pos += 1;
                Ok(XqExpr::VarRef(self.qname_str()?))
            }
            Some('(') => {
                self.pos += 1;
                self.ws();
                if self.peek() == Some(')') {
                    self.pos += 1;
                    return Ok(XqExpr::Empty);
                }
                let e = self.expr()?;
                self.expect(")")?;
                Ok(e)
            }
            Some('"') | Some('\'') => {
                let quote = self.bump().expect("peeked");
                let mut s = String::new();
                loop {
                    match self.bump() {
                        Some(c) if c == quote => {
                            // Doubled quote is an escape.
                            if self.peek() == Some(quote) {
                                self.bump();
                                s.push(quote);
                            } else {
                                break;
                            }
                        }
                        Some(c) => s.push(c),
                        None => return Err(self.err("unterminated string literal")),
                    }
                }
                Ok(XqExpr::StrLit(s))
            }
            Some('.') => {
                self.pos += 1;
                Ok(XqExpr::ContextItem)
            }
            Some('<') => self.direct_constructor(),
            Some(c) if c.is_ascii_digit() => {
                let start = self.pos;
                while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == '.') {
                    self.bump();
                }
                let text = &self.src[start..self.pos];
                let n: f64 = text
                    .parse()
                    .map_err(|_| self.err(format!("bad number `{text}`")))?;
                Ok(XqExpr::NumLit(n))
            }
            Some(c) if c.is_alphabetic() || c == '_' => {
                let name = self.qname_str()?;
                self.ws();
                if name == "processing-instruction"
                    && matches!(self.peek(), Some(c) if c.is_alphabetic() || c == '_')
                {
                    let target = self.ncname()?;
                    self.expect("{")?;
                    self.ws();
                    let content = if self.peek() == Some('}') {
                        Box::new(XqExpr::Empty)
                    } else {
                        Box::new(self.expr()?)
                    };
                    self.expect("}")?;
                    return Ok(XqExpr::CompPi { target, content });
                }
                if self.peek() == Some('{') {
                    return self.computed_constructor(&name);
                }
                self.expect("(")?;
                let mut args = Vec::new();
                self.ws();
                if self.peek() != Some(')') {
                    loop {
                        args.push(self.expr_single()?);
                        if !self.eat(",") {
                            break;
                        }
                    }
                }
                self.expect(")")?;
                Ok(XqExpr::Call { name, args })
            }
            _ => Err(self.err("expected a primary expression")),
        }
    }

    fn computed_constructor(&mut self, kind: &str) -> Result<XqExpr, XqParseError> {
        match kind {
            "element" | "attribute" => {
                // `element {nameExpr} {content}` form only (constant names
                // are emitted as direct constructors by the generator).
                self.expect("{")?;
                let name = Box::new(self.expr()?);
                self.expect("}")?;
                self.expect("{")?;
                self.ws();
                let content = if self.peek() == Some('}') {
                    Box::new(XqExpr::Empty)
                } else {
                    Box::new(self.expr()?)
                };
                self.expect("}")?;
                if kind == "element" {
                    Ok(XqExpr::CompElem { name, content })
                } else {
                    Ok(XqExpr::CompAttr { name, value: content })
                }
            }
            "text" => {
                self.expect("{")?;
                let e = Box::new(self.expr()?);
                self.expect("}")?;
                Ok(XqExpr::CompText(e))
            }
            "comment" => {
                self.expect("{")?;
                let e = Box::new(self.expr()?);
                self.expect("}")?;
                Ok(XqExpr::CompComment(e))
            }
            other => Err(self.err(format!("unsupported computed constructor `{other}`"))),
        }
    }

    fn direct_constructor(&mut self) -> Result<XqExpr, XqParseError> {
        self.expect("<")?;
        let name_str = self.qname_str()?;
        let name = qname_from_lexical(&name_str);
        let mut attrs = Vec::new();
        loop {
            self.ws();
            match self.peek() {
                Some('/') | Some('>') => break,
                Some(c) if c.is_alphabetic() || c == '_' => {
                    let aname_str = self.qname_str()?;
                    self.expect("=")?;
                    self.ws();
                    let quote = match self.bump() {
                        Some(q @ ('"' | '\'')) => q,
                        _ => return Err(self.err("expected quoted attribute value")),
                    };
                    let parts = self.attr_value_parts(quote)?;
                    attrs.push((qname_from_lexical(&aname_str), parts));
                }
                _ => return Err(self.err("malformed direct constructor")),
            }
        }
        if self.eat("/>") {
            return Ok(XqExpr::DirectElem { name, attrs, content: Vec::new() });
        }
        self.expect(">")?;
        let content = self.elem_content(&name_str)?;
        Ok(XqExpr::DirectElem { name, attrs, content })
    }

    fn attr_value_parts(&mut self, quote: char) -> Result<Vec<AttrValuePart>, XqParseError> {
        let mut parts = Vec::new();
        let mut text = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated attribute value")),
                Some(c) if c == quote => {
                    self.bump();
                    if self.peek() == Some(quote) {
                        self.bump();
                        text.push(quote);
                        continue;
                    }
                    break;
                }
                Some('{') => {
                    self.bump();
                    if self.peek() == Some('{') {
                        self.bump();
                        text.push('{');
                        continue;
                    }
                    if !text.is_empty() {
                        parts.push(AttrValuePart::Text(std::mem::take(&mut text)));
                    }
                    let e = self.expr()?;
                    self.expect("}")?;
                    parts.push(AttrValuePart::Expr(e));
                }
                Some('}') => {
                    self.bump();
                    if self.peek() == Some('}') {
                        self.bump();
                    }
                    text.push('}');
                }
                Some('&') => {
                    let decoded = self.entity()?;
                    text.push(decoded);
                }
                Some(c) => {
                    self.bump();
                    text.push(c);
                }
            }
        }
        if !text.is_empty() {
            parts.push(AttrValuePart::Text(text));
        }
        Ok(parts)
    }

    fn entity(&mut self) -> Result<char, XqParseError> {
        let start = self.pos;
        let semi = self
            .rest()
            .find(';')
            .ok_or_else(|| self.err("unterminated entity reference"))?;
        let raw = &self.src[start..start + semi + 1];
        let decoded =
            decode_entities(raw).map_err(|m| XqParseError { offset: start, message: m })?;
        self.pos += semi + 1;
        decoded
            .chars()
            .next()
            .ok_or_else(|| self.err("empty entity reference"))
    }

    fn elem_content(&mut self, open_name: &str) -> Result<Vec<XqExpr>, XqParseError> {
        let mut content = Vec::new();
        let mut text = String::new();
        macro_rules! flush_text {
            () => {
                if !text.is_empty() {
                    // Boundary-space strip: drop whitespace-only segments.
                    if !text.chars().all(|c| c.is_ascii_whitespace()) {
                        content.push(XqExpr::TextContent(std::mem::take(&mut text)));
                    } else {
                        text.clear();
                    }
                }
            };
        }
        loop {
            match self.peek() {
                None => return Err(self.err(format!("unterminated <{open_name}> constructor"))),
                Some('<') => {
                    if self.rest().starts_with("</") {
                        flush_text!();
                        self.pos += 2;
                        let close = self.qname_str()?;
                        if close != open_name {
                            return Err(self.err(format!(
                                "mismatched constructor: <{open_name}> closed by </{close}>"
                            )));
                        }
                        self.ws();
                        self.expect(">")?;
                        return Ok(content);
                    }
                    flush_text!();
                    content.push(self.direct_constructor()?);
                }
                Some('{') => {
                    self.bump();
                    if self.peek() == Some('{') {
                        self.bump();
                        text.push('{');
                        continue;
                    }
                    flush_text!();
                    let e = self.expr()?;
                    self.expect("}")?;
                    content.push(e);
                }
                Some('}') => {
                    self.bump();
                    if self.peek() == Some('}') {
                        self.bump();
                    }
                    text.push('}');
                }
                Some('&') => {
                    let c = self.entity()?;
                    text.push(c);
                }
                Some(c) => {
                    self.bump();
                    text.push(c);
                }
            }
        }
    }
}

fn qname_from_lexical(s: &str) -> QName {
    let (prefix, local) = QName::split(s);
    QName { prefix: prefix.map(Into::into), local: local.into(), ns_uri: None }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_table10_query() {
        let e = parse_expr("for $tr in ./table/tr return $tr").unwrap();
        match e {
            XqExpr::Flwor { clauses, ret, .. } => {
                assert_eq!(clauses.len(), 1);
                assert!(matches!(*ret, XqExpr::VarRef(ref v) if v == "tr"));
            }
            other => panic!("expected FLWOR, got {other:?}"),
        }
    }

    #[test]
    fn parses_prolog_variable() {
        let q = parse_query("declare variable $var000 := .; $var000").unwrap();
        assert_eq!(q.variables.len(), 1);
        assert_eq!(q.variables[0].name, "var000");
    }

    #[test]
    fn parses_function_decl() {
        let q = parse_query(
            "declare function local:t1($n) { <r>{fn:string($n)}</r> }; local:t1(/x)",
        )
        .unwrap();
        assert_eq!(q.functions.len(), 1);
        assert_eq!(q.functions[0].params, vec!["n"]);
        assert!(matches!(q.body, XqExpr::Call { .. }));
    }

    #[test]
    fn parses_direct_constructor_with_attr_avt() {
        let e = parse_expr(r#"<table border="2"><td>{fn:string($x)}</td></table>"#).unwrap();
        match e {
            XqExpr::DirectElem { name, attrs, content } => {
                assert_eq!(&*name.local, "table");
                assert_eq!(attrs.len(), 1);
                assert_eq!(content.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn boundary_whitespace_stripped() {
        let e = parse_expr("<a>\n  <b/>\n  {1}\n</a>").unwrap();
        match e {
            XqExpr::DirectElem { content, .. } => {
                assert_eq!(content.len(), 2);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn mixed_text_kept() {
        let e = parse_expr("<H2>Department name: {fn:string($v)}</H2>").unwrap();
        match e {
            XqExpr::DirectElem { content, .. } => {
                assert!(matches!(&content[0], XqExpr::TextContent(t) if t == "Department name: "));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_if_and_instance_of() {
        let e = parse_expr(
            "if ($v instance of element(dname)) then 1 else 2",
        )
        .unwrap();
        match e {
            XqExpr::If { cond, .. } => {
                assert!(matches!(*cond, XqExpr::InstanceOf(_, SeqType::Element(Some(ref n))) if n == "dname"));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_comments() {
        let e = parse_expr("(: builtin template :) ( (: inner (: nested :) :) 1, 2 )").unwrap();
        assert!(matches!(e, XqExpr::Seq(ref v) if v.len() == 2));
    }

    #[test]
    fn parses_path_with_predicate() {
        let e = parse_expr("$var003/emp[sal > 2000]").unwrap();
        match e {
            XqExpr::Path { steps, .. } => {
                assert_eq!(steps.len(), 1);
                assert_eq!(steps[0].predicates.len(), 1);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_let_nested() {
        let e = parse_expr(
            "let $a := /dept return (let $b := $a/dname return fn:string($b))",
        )
        .unwrap();
        assert!(matches!(e, XqExpr::Flwor { .. }));
    }

    #[test]
    fn parses_string_join_with_inner_flwor() {
        let e = parse_expr(
            r#"fn:string-join(for $t in $d//text() return fn:string($t), " ")"#,
        )
        .unwrap();
        match e {
            XqExpr::Call { name, args } => {
                assert_eq!(name, "fn:string-join");
                assert_eq!(args.len(), 2);
                assert!(matches!(args[0], XqExpr::Flwor { .. }));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_empty_sequence_and_seq() {
        assert_eq!(parse_expr("()").unwrap(), XqExpr::Empty);
        assert!(matches!(parse_expr("(1, 2, 3)").unwrap(), XqExpr::Seq(ref v) if v.len() == 3));
    }

    #[test]
    fn parses_arithmetic_precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        match e {
            XqExpr::Arith(ArithOp::Add, _, r) => {
                assert!(matches!(*r, XqExpr::Arith(ArithOp::Mul, _, _)));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn lt_after_operand_is_comparison() {
        let e = parse_expr("$a < 5").unwrap();
        assert!(matches!(e, XqExpr::Compare(CompOp::Lt, _, _)));
    }

    #[test]
    fn computed_constructors() {
        let e = parse_expr("element {'x'} {1}").unwrap();
        assert!(matches!(e, XqExpr::CompElem { .. }));
        let e = parse_expr("attribute {'k'} {'v'}").unwrap();
        assert!(matches!(e, XqExpr::CompAttr { .. }));
        let e = parse_expr("text {'hi'}").unwrap();
        assert!(matches!(e, XqExpr::CompText(_)));
    }

    #[test]
    fn double_slash_path() {
        let e = parse_expr("$var000//text()").unwrap();
        match e {
            XqExpr::Path { steps, .. } => assert_eq!(steps.len(), 2),
            _ => panic!(),
        }
    }

    #[test]
    fn errors_on_garbage() {
        assert!(parse_expr("for $x re").is_err());
        assert!(parse_expr("<a><b></a></b>").is_err());
        assert!(parse_expr("1 +").is_err());
        assert!(parse_expr("").is_err());
    }

    #[test]
    fn where_and_order_by() {
        let e = parse_expr(
            "for $e in $x/emp where $e/sal > 100 order by $e/ename descending return $e",
        )
        .unwrap();
        match e {
            XqExpr::Flwor { where_clause, order_by, .. } => {
                assert!(where_clause.is_some());
                assert_eq!(order_by.len(), 1);
                assert!(order_by[0].descending);
            }
            _ => panic!(),
        }
    }
}
