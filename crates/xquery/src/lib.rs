//! # xsltdb-xquery
//!
//! The XQuery subset that serves as the paper's *intermediate language*
//! (§3, §6): XSLT stylesheets are rewritten into these queries, which are
//! then either rewritten further into SQL/XML over relational storage or
//! evaluated directly over materialised documents.
//!
//! Provides the AST ([`ast`]), a parser ([`parser`]), a Table-8-style
//! pretty-printer ([`pretty`]), a sequence-semantics evaluator ([`eval`])
//! with the `fn:` library ([`functions`]), and static structural typing
//! ([`typing`]) used when a transformation consumes the output of another
//! query (paper Example 2).
//!
//! ```
//! use xsltdb_xquery::{parse_query, evaluate_query, serialize_sequence, NodeHandle};
//!
//! let q = parse_query("for $e in /dept/emp where $e/sal > 2000 return <hi>{fn:string($e/sal)}</hi>").unwrap();
//! let doc = xsltdb_xml::parse::parse("<dept><emp><sal>2450</sal></emp><emp><sal>1300</sal></emp></dept>").unwrap();
//! let out = evaluate_query(&q, Some(NodeHandle::document(doc))).unwrap();
//! assert_eq!(serialize_sequence(&out), "<hi>2450</hi>");
//! ```

pub mod ast;
pub mod emission;
pub mod eval;
pub mod functions;
pub mod parser;
pub mod pretty;
pub mod typing;

pub use ast::{
    ArithOp, AttrValuePart, Clause, CompOp, FunctionDecl, OrderSpec, PathStart, SeqType, VarDecl,
    XQuery, XqExpr, XqStep,
};
pub use emission::{analyze_expr, analyze_query, EmissionReport};
pub use eval::{
    ebv, evaluate_expr, evaluate_query, evaluate_query_guarded, evaluate_query_guarded_with_vars,
    evaluate_query_to_sink, evaluate_query_with_vars, sequence_to_document,
    serialize_sequence, Item, NodeHandle, Sequence, SinkRun, XqError,
};
pub use parser::{parse_expr as parse_xq_expr, parse_query, XqParseError};
pub use pretty::{pretty, pretty_query};
