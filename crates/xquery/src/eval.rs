//! Evaluator for the XQuery subset: sequences of items over shared
//! immutable documents. Constructors copy content into fresh arenas, per
//! XQuery semantics.

// Guard-bearing hot path: a stray unwrap here is a latent panic the
// pipeline would have to contain at a tier boundary. Keep it impossible.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use crate::ast::*;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use xsltdb_xml::{
    replay_subtree, DocRc, Document, FaultKind, FaultPoint, Guard, GuardExceeded, NodeId, NodeKind,
    QName, SinkError, TreeBuilder, XmlSink,
};
use xsltdb_xpath::axes::{axis_nodes, test_matches};
use xsltdb_xpath::value::{num_to_string, str_to_num};

/// Evaluation error.
#[derive(Debug, Clone, PartialEq)]
pub struct XqError(pub String);

impl fmt::Display for XqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XQuery error: {}", self.0)
    }
}

impl std::error::Error for XqError {}

/// A node in some document.
#[derive(Debug, Clone)]
pub struct NodeHandle {
    pub doc: DocRc,
    pub id: NodeId,
}

impl NodeHandle {
    pub fn new(doc: DocRc, id: NodeId) -> Self {
        NodeHandle { doc, id }
    }

    /// Wrap a document's root (document node).
    pub fn document(doc: Document) -> Self {
        NodeHandle { doc: Rc::new(doc), id: NodeId::DOCUMENT }
    }

    fn order_key(&self) -> (usize, NodeId) {
        (Rc::as_ptr(&self.doc) as *const () as usize, self.id)
    }

    pub fn string_value(&self) -> String {
        self.doc.string_value(self.id)
    }
}

impl PartialEq for NodeHandle {
    fn eq(&self, other: &Self) -> bool {
        self.order_key() == other.order_key()
    }
}

/// One XQuery item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    Node(NodeHandle),
    Str(String),
    Num(f64),
    Bool(bool),
}

impl Item {
    /// Atomize: nodes become untyped (string) values.
    pub fn atomize(&self) -> Item {
        match self {
            Item::Node(n) => Item::Str(n.string_value()),
            other => other.clone(),
        }
    }

    pub fn to_string_value(&self) -> String {
        match self {
            Item::Node(n) => n.string_value(),
            Item::Str(s) => s.clone(),
            Item::Num(n) => num_to_string(*n),
            Item::Bool(b) => if *b { "true" } else { "false" }.to_string(),
        }
    }

    pub fn to_number(&self) -> f64 {
        match self {
            Item::Num(n) => *n,
            Item::Bool(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            other => str_to_num(&other.to_string_value()),
        }
    }
}

/// A sequence of items.
pub type Sequence = Vec<Item>;

/// Effective boolean value.
pub fn ebv(seq: &[Item]) -> Result<bool, XqError> {
    match seq {
        [] => Ok(false),
        [Item::Node(_), ..] => Ok(true),
        [single] => Ok(match single {
            Item::Bool(b) => *b,
            Item::Num(n) => *n != 0.0 && !n.is_nan(),
            Item::Str(s) => !s.is_empty(),
            Item::Node(_) => true,
        }),
        _ => Err(XqError(
            "effective boolean value of a multi-item atomic sequence".into(),
        )),
    }
}

/// Serialize a result sequence the way `XMLQuery(... RETURNING CONTENT)`
/// would: nodes serialize as XML, atomics as their string values separated
/// by spaces.
pub fn serialize_sequence(seq: &[Item]) -> String {
    let mut out = String::new();
    let mut prev_atomic = false;
    for item in seq {
        match item {
            Item::Node(n) => {
                out.push_str(&xsltdb_xml::node_to_string(&n.doc, n.id));
                prev_atomic = false;
            }
            other => {
                if prev_atomic {
                    out.push(' ');
                }
                out.push_str(&other.to_string_value());
                prev_atomic = true;
            }
        }
    }
    out
}

/// Build a single document from a result sequence (the `RETURNING CONTENT`
/// materialisation): nodes are deep-copied, atomics become text.
pub fn sequence_to_document(seq: &[Item]) -> Document {
    let mut b = TreeBuilder::new();
    let mut prev_atomic = false;
    for item in seq {
        match item {
            Item::Node(n) => {
                b.copy_subtree(&n.doc, n.id);
                prev_atomic = false;
            }
            other => {
                if prev_atomic {
                    b.text(" ");
                }
                b.text(&other.to_string_value());
                prev_atomic = true;
            }
        }
    }
    b.finish_lenient()
}

/// Evaluate a full query against an optional input document (bound as the
/// initial context item, like `XMLQuery(... PASSING doc)`).
pub fn evaluate_query(q: &XQuery, input: Option<NodeHandle>) -> Result<Sequence, XqError> {
    evaluate_query_with_vars(q, input, Vec::new())
}

/// Like [`evaluate_query`], but every hot loop charges the supplied
/// [`Guard`]. A trip surfaces as a stringly [`XqError`]; callers that need
/// the structured [`GuardExceeded`] read it back via [`Guard::trip`].
pub fn evaluate_query_guarded(
    q: &XQuery,
    input: Option<NodeHandle>,
    guard: Guard,
) -> Result<Sequence, XqError> {
    evaluate_query_guarded_with_vars(q, input, Vec::new(), guard)
}

/// Guarded evaluation with externally bound variables.
pub fn evaluate_query_guarded_with_vars(
    q: &XQuery,
    input: Option<NodeHandle>,
    extra_vars: Vec<(String, Sequence)>,
    guard: Guard,
) -> Result<Sequence, XqError> {
    if let Some(kind) = guard.take_fault(FaultPoint::XQueryExec) {
        match kind {
            FaultKind::Error => return Err(XqError("injected fault at XQuery tier".into())),
            FaultKind::Panic => panic!("injected panic at XQuery tier"),
        }
    }
    let functions: HashMap<String, &FunctionDecl> =
        q.functions.iter().map(|f| (f.name.clone(), f)).collect();
    let mut env = EvalEnv {
        functions,
        vars: extra_vars,
        ctx: input.map(Item::Node),
        pos: 1,
        size: 1,
        depth: 0,
        guard,
    };
    for v in &q.variables {
        let val = eval(&v.value, &mut env)?;
        env.vars.push((v.name.clone(), val));
    }
    let mut out = EvalOutput::Items(Vec::new());
    eval_into(&q.body, &mut env, &mut out)?;
    match out {
        EvalOutput::Items(items) => Ok(items),
        EvalOutput::Sink(_) => Err(XqError("internal: evaluation output mode changed".into())),
    }
}

/// Evaluate with additional externally bound variables (used by index-
/// assisted execution, which binds pre-probed node sequences).
pub fn evaluate_query_with_vars(
    q: &XQuery,
    input: Option<NodeHandle>,
    extra_vars: Vec<(String, Sequence)>,
) -> Result<Sequence, XqError> {
    evaluate_query_guarded_with_vars(q, input, extra_vars, Guard::unlimited())
}

/// Evaluate a standalone expression with a context item.
pub fn evaluate_expr(e: &XqExpr, input: Option<NodeHandle>) -> Result<Sequence, XqError> {
    let mut env = EvalEnv {
        functions: HashMap::new(),
        vars: Vec::new(),
        ctx: input.map(Item::Node),
        pos: 1,
        size: 1,
        depth: 0,
        guard: Guard::unlimited(),
    };
    eval(e, &mut env)
}

pub(crate) struct EvalEnv<'q> {
    pub(crate) functions: HashMap<String, &'q FunctionDecl>,
    pub(crate) vars: Vec<(String, Sequence)>,
    pub(crate) ctx: Option<Item>,
    pub(crate) pos: usize,
    pub(crate) size: usize,
    pub(crate) depth: usize,
    pub(crate) guard: Guard,
}

const MAX_DEPTH: usize = 96;

fn guard_err(e: GuardExceeded) -> XqError {
    XqError(e.to_string())
}

impl<'q> EvalEnv<'q> {
    fn lookup(&self, name: &str) -> Result<Sequence, XqError> {
        self.vars
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.clone())
            .ok_or_else(|| XqError(format!("undefined variable ${name}")))
    }
}

pub(crate) fn eval(e: &XqExpr, env: &mut EvalEnv<'_>) -> Result<Sequence, XqError> {
    env.guard.charge(1).map_err(guard_err)?;
    match e {
        XqExpr::Empty => Ok(Vec::new()),
        XqExpr::StrLit(s) => Ok(vec![Item::Str(s.clone())]),
        XqExpr::TextContent(t) => Ok(vec![Item::Str(t.clone())]),
        XqExpr::NumLit(n) => Ok(vec![Item::Num(*n)]),
        XqExpr::VarRef(v) => env.lookup(v),
        XqExpr::ContextItem => env
            .ctx
            .clone()
            .map(|i| vec![i])
            .ok_or_else(|| XqError("no context item".into())),
        XqExpr::Annotated { expr, .. } => eval(expr, env),
        XqExpr::Seq(es) => {
            let mut out = Vec::new();
            for sub in es {
                out.extend(eval(sub, env)?);
            }
            Ok(out)
        }
        XqExpr::If { cond, then, els } => {
            let c = eval(cond, env)?;
            if ebv(&c)? {
                eval(then, env)
            } else {
                eval(els, env)
            }
        }
        XqExpr::Or(a, b) => {
            let l = ebv(&eval(a, env)?)?;
            if l {
                return Ok(vec![Item::Bool(true)]);
            }
            Ok(vec![Item::Bool(ebv(&eval(b, env)?)?)])
        }
        XqExpr::And(a, b) => {
            let l = ebv(&eval(a, env)?)?;
            if !l {
                return Ok(vec![Item::Bool(false)]);
            }
            Ok(vec![Item::Bool(ebv(&eval(b, env)?)?)])
        }
        XqExpr::Union(a, b) => {
            let l = eval(a, env)?;
            let r = eval(b, env)?;
            let mut handles = Vec::with_capacity(l.len() + r.len());
            for item in l.into_iter().chain(r) {
                match item {
                    Item::Node(n) => handles.push(n),
                    other => {
                        return Err(XqError(format!(
                            "union operand must be nodes, got {other:?}"
                        )))
                    }
                }
            }
            handles.sort_by_key(|n| n.order_key());
            handles.dedup_by_key(|n| n.order_key());
            Ok(handles.into_iter().map(Item::Node).collect())
        }
        XqExpr::Compare(op, a, b) => {
            let l = eval(a, env)?;
            let r = eval(b, env)?;
            Ok(vec![Item::Bool(general_compare(*op, &l, &r))])
        }
        XqExpr::Arith(op, a, b) => {
            let l = eval(a, env)?;
            let r = eval(b, env)?;
            if l.is_empty() || r.is_empty() {
                return Ok(Vec::new());
            }
            let x = l[0].to_number();
            let y = r[0].to_number();
            let n = match op {
                ArithOp::Add => x + y,
                ArithOp::Sub => x - y,
                ArithOp::Mul => x * y,
                ArithOp::Div => x / y,
                ArithOp::Mod => x % y,
            };
            Ok(vec![Item::Num(n)])
        }
        XqExpr::Neg(a) => {
            let v = eval(a, env)?;
            if v.is_empty() {
                return Ok(Vec::new());
            }
            Ok(vec![Item::Num(-v[0].to_number())])
        }
        XqExpr::InstanceOf(a, t) => {
            let v = eval(a, env)?;
            let ok = v.len() == 1 && item_matches_type(&v[0], t);
            Ok(vec![Item::Bool(ok)])
        }
        XqExpr::Flwor { clauses, where_clause, order_by, ret } => {
            eval_flwor(clauses, where_clause.as_deref(), order_by, ret, env)
        }
        XqExpr::Path { start, steps } => {
            let start_seq: Sequence = match start {
                PathStart::Root => {
                    let ctx = env
                        .ctx
                        .clone()
                        .ok_or_else(|| XqError("no context item for `/`".into()))?;
                    match ctx {
                        Item::Node(n) => {
                            vec![Item::Node(NodeHandle::new(n.doc, NodeId::DOCUMENT))]
                        }
                        _ => return Err(XqError("`/` requires a node context".into())),
                    }
                }
                PathStart::Context => vec![env
                    .ctx
                    .clone()
                    .ok_or_else(|| XqError("no context item".into()))?],
                PathStart::Expr(e) => eval(e, env)?,
            };
            eval_steps(start_seq, steps, env)
        }
        XqExpr::Filter { base, predicates } => {
            let mut seq = eval(base, env)?;
            for p in predicates {
                seq = apply_predicate(seq, p, env)?;
            }
            Ok(seq)
        }
        XqExpr::Call { name, args } => eval_call(name, args, env),
        XqExpr::DirectElem { name, attrs, content } => {
            env.guard.charge_output_nodes(1).map_err(guard_err)?;
            let mut b = TreeBuilder::new();
            b.start_element(name.clone());
            for (aname, parts) in attrs {
                let mut val = String::new();
                for p in parts {
                    match p {
                        AttrValuePart::Text(t) => val.push_str(t),
                        AttrValuePart::Expr(e) => {
                            let seq = eval(e, env)?;
                            let strs: Vec<String> =
                                seq.iter().map(|i| i.atomize().to_string_value()).collect();
                            val.push_str(&strs.join(" "));
                        }
                    }
                }
                b.attribute(aname.clone(), val);
            }
            let mut items = Vec::new();
            for c in content {
                match c {
                    XqExpr::TextContent(t) => items.push(ContentPiece::Text(t.clone())),
                    other => items.push(ContentPiece::Items(eval(other, env)?)),
                }
            }
            build_content(&mut b, items)?;
            b.end_element();
            let doc = Rc::new(b.finish());
            let root = doc.root_element().expect("constructor built an element");
            Ok(vec![Item::Node(NodeHandle::new(doc, root))])
        }
        XqExpr::CompElem { name, content } => {
            env.guard.charge_output_nodes(1).map_err(guard_err)?;
            let n = eval(name, env)?;
            let lexical = n
                .first()
                .map(|i| i.to_string_value())
                .ok_or_else(|| XqError("element constructor with empty name".into()))?;
            let (prefix, local) = QName::split(&lexical);
            let qname = QName { prefix: prefix.map(Into::into), local: local.into(), ns_uri: None };
            let mut b = TreeBuilder::new();
            b.start_element(qname);
            let inner = eval(content, env)?;
            build_content(&mut b, vec![ContentPiece::Items(inner)])?;
            b.end_element();
            let doc = Rc::new(b.finish());
            let root = doc.root_element().expect("constructor built an element");
            Ok(vec![Item::Node(NodeHandle::new(doc, root))])
        }
        XqExpr::CompAttr { name, value } => {
            let n = eval(name, env)?;
            let lexical = n
                .first()
                .map(|i| i.to_string_value())
                .ok_or_else(|| XqError("attribute constructor with empty name".into()))?;
            let v = eval(value, env)?;
            let strs: Vec<String> = v.iter().map(|i| i.atomize().to_string_value()).collect();
            // A freestanding attribute node lives on a holder element.
            let mut b = TreeBuilder::new();
            b.start_element(QName::local("xq-attribute-holder"));
            let (prefix, local) = QName::split(&lexical);
            b.attribute(
                QName { prefix: prefix.map(Into::into), local: local.into(), ns_uri: None },
                strs.join(" "),
            );
            b.end_element();
            let doc = Rc::new(b.finish());
            let holder = doc.root_element().expect("built above");
            let attr = doc.attributes(holder)[0];
            Ok(vec![Item::Node(NodeHandle::new(doc, attr))])
        }
        XqExpr::CompText(e) => {
            let v = eval(e, env)?;
            let strs: Vec<String> = v.iter().map(|i| i.atomize().to_string_value()).collect();
            let mut b = TreeBuilder::new();
            b.start_element(QName::local("xq-text-holder"));
            b.text(&strs.join(" "));
            b.end_element();
            let doc = Rc::new(b.finish());
            let holder = doc.root_element().expect("built above");
            match doc.children(holder).next() {
                Some(t) => Ok(vec![Item::Node(NodeHandle::new(doc, t))]),
                None => Ok(Vec::new()),
            }
        }
        XqExpr::CompComment(e) => {
            let v = eval(e, env)?;
            let strs: Vec<String> = v.iter().map(|i| i.atomize().to_string_value()).collect();
            let mut b = TreeBuilder::new();
            b.start_element(QName::local("xq-comment-holder"));
            b.comment(strs.join(" "));
            b.end_element();
            let doc = Rc::new(b.finish());
            let holder = doc.root_element().expect("built above");
            let node = doc.children(holder).next().expect("comment node built");
            Ok(vec![Item::Node(NodeHandle::new(doc, node))])
        }
        XqExpr::CompPi { target, content } => {
            let v = eval(content, env)?;
            let strs: Vec<String> = v.iter().map(|i| i.atomize().to_string_value()).collect();
            let mut b = TreeBuilder::new();
            b.start_element(QName::local("xq-pi-holder"));
            b.pi(target.as_str(), strs.join(" "));
            b.end_element();
            let doc = Rc::new(b.finish());
            let holder = doc.root_element().expect("built above");
            let node = doc.children(holder).next().expect("pi node built");
            Ok(vec![Item::Node(NodeHandle::new(doc, node))])
        }
    }
}

enum ContentPiece {
    Text(String),
    Items(Sequence),
}

/// Append constructor content: nodes are deep-copied; adjacent atomics are
/// joined with a single space; attribute-node items become attributes.
fn build_content(b: &mut TreeBuilder, pieces: Vec<ContentPiece>) -> Result<(), XqError> {
    // The "adjacent atomics are space-separated" rule applies across the
    // whole flattened content sequence; literal text breaks adjacency.
    let mut prev_atomic = false;
    for piece in pieces {
        match piece {
            ContentPiece::Text(t) => {
                b.text(&t);
                prev_atomic = false;
            }
            ContentPiece::Items(items) => {
                for item in items {
                    match item {
                        Item::Node(n) => {
                            if n.doc.is_attribute(n.id) {
                                if let NodeKind::Attribute { name, value } = n.doc.kind(n.id) {
                                    b.try_attribute(name.clone(), value.clone())
                                        .map_err(|m| XqError(m.to_string()))?;
                                }
                            } else {
                                b.copy_subtree(&n.doc, n.id);
                            }
                            prev_atomic = false;
                        }
                        atomic => {
                            if prev_atomic {
                                b.text(" ");
                            }
                            b.text(&atomic.to_string_value());
                            prev_atomic = true;
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

fn item_matches_type(item: &Item, t: &SeqType) -> bool {
    match (item, t) {
        (Item::Node(n), SeqType::Element(name)) => match n.doc.kind(n.id) {
            NodeKind::Element { name: en, .. } => {
                name.as_ref().is_none_or(|want| {
                    let (p, l) = QName::split(want);
                    en.matches_test(p, l)
                })
            }
            _ => false,
        },
        (Item::Node(n), SeqType::Attribute(name)) => match n.doc.kind(n.id) {
            NodeKind::Attribute { name: an, .. } => {
                name.as_ref().is_none_or(|want| {
                    let (p, l) = QName::split(want);
                    an.matches_test(p, l)
                })
            }
            _ => false,
        },
        (Item::Node(n), SeqType::Text) => n.doc.is_text(n.id),
        (Item::Node(_), SeqType::Node) => true,
        (_, SeqType::Item) => true,
        _ => false,
    }
}

fn general_compare(op: CompOp, l: &[Item], r: &[Item]) -> bool {
    l.iter().any(|a| {
        let av = a.atomize();
        r.iter().any(|b| {
            let bv = b.atomize();
            compare_atomics(op, &av, &bv)
        })
    })
}

fn compare_atomics(op: CompOp, a: &Item, b: &Item) -> bool {
    let num_cmp = |x: f64, y: f64| match op {
        CompOp::Eq => x == y,
        CompOp::Ne => x != y,
        CompOp::Lt => x < y,
        CompOp::Le => x <= y,
        CompOp::Gt => x > y,
        CompOp::Ge => x >= y,
    };
    match (a, b) {
        (Item::Num(_), _) | (_, Item::Num(_)) => num_cmp(a.to_number(), b.to_number()),
        (Item::Bool(x), Item::Bool(y)) => num_cmp(*x as u8 as f64, *y as u8 as f64),
        _ => {
            let (x, y) = (a.to_string_value(), b.to_string_value());
            match op {
                CompOp::Eq => x == y,
                CompOp::Ne => x != y,
                CompOp::Lt => x < y,
                CompOp::Le => x <= y,
                CompOp::Gt => x > y,
                CompOp::Ge => x >= y,
            }
        }
    }
}

/// One FLWOR tuple: the variable bindings the `return` runs under.
type FlworTuple = Vec<(String, Sequence)>;

/// Expand the FLWOR tuple stream (depth-first), apply `where`, and sort by
/// `order by` keys. Both the materialising and the sink-mode `return`
/// loops run over the tuples this produces — the `return` clause itself
/// stays in emission position because it is evaluated *after* the sort.
fn flwor_tuples(
    clauses: &[Clause],
    where_clause: Option<&XqExpr>,
    order_by: &[OrderSpec],
    env: &mut EvalEnv<'_>,
) -> Result<Vec<FlworTuple>, XqError> {
    // Expand the tuple stream depth-first.
    fn expand(
        clauses: &[Clause],
        where_clause: Option<&XqExpr>,
        env: &mut EvalEnv<'_>,
        tuples: &mut Vec<Vec<(String, Sequence)>>,
        current: &mut Vec<(String, Sequence)>,
    ) -> Result<(), XqError> {
        match clauses.split_first() {
            None => {
                if let Some(w) = where_clause {
                    let keep = {
                        let v = eval(w, env)?;
                        ebv(&v)?
                    };
                    if !keep {
                        return Ok(());
                    }
                }
                tuples.push(current.clone());
                Ok(())
            }
            Some((Clause::Let { var, value }, rest)) => {
                let v = eval(value, env)?;
                env.vars.push((var.clone(), v.clone()));
                current.push((var.clone(), v));
                let r = expand(rest, where_clause, env, tuples, current);
                env.vars.pop();
                current.pop();
                r
            }
            Some((Clause::For { var, at, source }, rest)) => {
                let src = eval(source, env)?;
                for (i, item) in src.into_iter().enumerate() {
                    // One fuel unit per FLWOR tuple, so a cross-product of
                    // large sequences is bounded even when each inner eval
                    // is cheap.
                    env.guard.charge(1).map_err(guard_err)?;
                    let single = vec![item];
                    env.vars.push((var.clone(), single.clone()));
                    current.push((var.clone(), single));
                    if let Some(pos_var) = at {
                        // `at` binds the 1-based position in the *input*
                        // sequence (pre-`order by`, per spec).
                        let pos = vec![Item::Num((i + 1) as f64)];
                        env.vars.push((pos_var.clone(), pos.clone()));
                        current.push((pos_var.clone(), pos));
                    }
                    let r = expand(rest, where_clause, env, tuples, current);
                    if at.is_some() {
                        env.vars.pop();
                        current.pop();
                    }
                    env.vars.pop();
                    current.pop();
                    r?;
                }
                Ok(())
            }
        }
    }

    let mut tuples = Vec::new();
    expand(clauses, where_clause, env, &mut tuples, &mut Vec::new())?;

    if !order_by.is_empty() {
        // Decorate each tuple with its keys.
        let mut decorated: Vec<(Vec<Item>, FlworTuple)> = Vec::with_capacity(tuples.len());
        for t in tuples {
            let depth = t.len();
            for binding in &t {
                env.vars.push(binding.clone());
            }
            let mut keys = Vec::with_capacity(order_by.len());
            for o in order_by {
                let k = eval(&o.key, env)?;
                keys.push(k.first().map(|i| i.atomize()).unwrap_or(Item::Str(String::new())));
            }
            for _ in 0..depth {
                env.vars.pop();
            }
            decorated.push((keys, t));
        }
        decorated.sort_by(|(ka, _), (kb, _)| {
            use std::cmp::Ordering;
            for (i, o) in order_by.iter().enumerate() {
                let mut ord = if o.numeric
                    || matches!(ka[i], Item::Num(_))
                    || matches!(kb[i], Item::Num(_))
                {
                    // NaN sorts first (ascending), mirroring the XSLT VM's
                    // number-sort rule so the tiers stay byte-identical.
                    let (a, b) = (ka[i].to_number(), kb[i].to_number());
                    match (a.is_nan(), b.is_nan()) {
                        (true, true) => Ordering::Equal,
                        (true, false) => Ordering::Less,
                        (false, true) => Ordering::Greater,
                        (false, false) => a.partial_cmp(&b).unwrap_or(Ordering::Equal),
                    }
                } else {
                    ka[i].to_string_value().cmp(&kb[i].to_string_value())
                };
                if o.descending {
                    ord = ord.reverse();
                }
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
        tuples = decorated.into_iter().map(|(_, t)| t).collect();
    }
    Ok(tuples)
}

fn eval_flwor(
    clauses: &[Clause],
    where_clause: Option<&XqExpr>,
    order_by: &[OrderSpec],
    ret: &XqExpr,
    env: &mut EvalEnv<'_>,
) -> Result<Sequence, XqError> {
    let tuples = flwor_tuples(clauses, where_clause, order_by, env)?;
    let mut out = Vec::new();
    for t in tuples {
        let depth = t.len();
        for binding in t {
            env.vars.push(binding);
        }
        let r = eval(ret, env);
        for _ in 0..depth {
            env.vars.pop();
        }
        out.extend(r?);
    }
    Ok(out)
}

fn eval_steps(
    start: Sequence,
    steps: &[XqStep],
    env: &mut EvalEnv<'_>,
) -> Result<Sequence, XqError> {
    let mut current: Vec<NodeHandle> = Vec::with_capacity(start.len());
    for item in start {
        match item {
            Item::Node(n) => current.push(n),
            other => {
                if steps.is_empty() {
                    // No steps: atomic passthrough handled by caller.
                    continue;
                }
                return Err(XqError(format!(
                    "path step applied to an atomic value {other:?}"
                )));
            }
        }
    }
    for step in steps {
        let mut next: Vec<NodeHandle> = Vec::new();
        for nh in &current {
            env.guard.charge(1).map_err(guard_err)?;
            let candidates: Vec<NodeId> = axis_nodes(&nh.doc, nh.id, step.axis)
                .into_iter()
                .filter(|&c| test_matches(&nh.doc, c, step.axis, &step.test))
                .collect();
            // Charge for every node the axis surfaced, so `//x//y` blowups
            // are billed even when predicates later discard them.
            env.guard.charge(candidates.len() as u64).map_err(guard_err)?;
            let mut kept: Vec<NodeHandle> = candidates
                .into_iter()
                .map(|c| NodeHandle::new(Rc::clone(&nh.doc), c))
                .collect();
            for p in &step.predicates {
                kept = filter_nodes(kept, p, env)?;
            }
            next.extend(kept);
        }
        next.sort_by_key(|n| n.order_key());
        next.dedup_by_key(|n| n.order_key());
        current = next;
    }
    Ok(current.into_iter().map(Item::Node).collect())
}

fn filter_nodes(
    nodes: Vec<NodeHandle>,
    pred: &XqExpr,
    env: &mut EvalEnv<'_>,
) -> Result<Vec<NodeHandle>, XqError> {
    let size = nodes.len();
    let mut out = Vec::with_capacity(nodes.len());
    for (i, n) in nodes.into_iter().enumerate() {
        let saved_ctx = env.ctx.replace(Item::Node(n.clone()));
        let (saved_pos, saved_size) = (env.pos, env.size);
        env.pos = i + 1;
        env.size = size;
        let v = eval(pred, env);
        env.ctx = saved_ctx;
        env.pos = saved_pos;
        env.size = saved_size;
        let v = v?;
        let keep = match v.as_slice() {
            [Item::Num(x)] => (i + 1) as f64 == *x,
            other => ebv(other)?,
        };
        if keep {
            out.push(n);
        }
    }
    Ok(out)
}

fn apply_predicate(
    seq: Sequence,
    pred: &XqExpr,
    env: &mut EvalEnv<'_>,
) -> Result<Sequence, XqError> {
    let size = seq.len();
    let mut out = Vec::with_capacity(seq.len());
    for (i, item) in seq.into_iter().enumerate() {
        let saved_ctx = env.ctx.replace(item.clone());
        let (saved_pos, saved_size) = (env.pos, env.size);
        env.pos = i + 1;
        env.size = size;
        let v = eval(pred, env);
        env.ctx = saved_ctx;
        env.pos = saved_pos;
        env.size = saved_size;
        let v = v?;
        let keep = match v.as_slice() {
            [Item::Num(x)] => (i + 1) as f64 == *x,
            other => ebv(other)?,
        };
        if keep {
            out.push(item);
        }
    }
    Ok(out)
}

fn eval_call(name: &str, args: &[XqExpr], env: &mut EvalEnv<'_>) -> Result<Sequence, XqError> {
    // User-defined functions are looked up with their full prefixed name.
    if env.functions.contains_key(name) {
        let decl = env.functions[name];
        if decl.params.len() != args.len() {
            return Err(XqError(format!(
                "{name}() expects {} arguments, got {}",
                decl.params.len(),
                args.len()
            )));
        }
        if env.depth + 1 > MAX_DEPTH {
            return Err(XqError(format!(
                "function recursion deeper than {MAX_DEPTH} (infinite recursion?)"
            )));
        }
        let mut bound = Vec::with_capacity(args.len());
        for (p, a) in decl.params.iter().zip(args) {
            bound.push((p.clone(), eval(a, env)?));
        }
        // Functions see only their parameters (and other functions).
        let saved_vars = std::mem::take(&mut env.vars);
        let saved_ctx = env.ctx.take();
        env.vars = bound;
        env.depth += 1;
        let r = match env.guard.enter() {
            Ok(()) => {
                let r = eval(&decl.body, env);
                env.guard.leave();
                r
            }
            Err(e) => Err(guard_err(e)),
        };
        env.depth -= 1;
        env.vars = saved_vars;
        env.ctx = saved_ctx;
        return r;
    }
    let plain = name.strip_prefix("fn:").unwrap_or(name);
    crate::functions::call_builtin(plain, args, env)
}

// ---------------------------------------------------------------------------
// Sink-mode evaluation: constructors in emission position push events
// straight into an `XmlSink` instead of materialising item trees.
// ---------------------------------------------------------------------------

/// Evidence returned by a sink-mode evaluation: how much tree the spill
/// fallback actually built. Zero spills means the whole result left the
/// evaluator as events without a single arena node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SinkRun {
    /// Subtrees that had to be materialised (re-inspected constructors,
    /// function results, path results over fresh trees) and then replayed.
    pub spilled_subtrees: u64,
    /// Arena nodes in the largest single spilled subtree — the peak
    /// residency the streaming path could not avoid.
    pub peak_spilled_nodes: u64,
}

/// Where an expression's value goes: events into a sink (emission
/// position) or a materialised sequence (re-inspection position). The
/// recursive emitter narrows `Sink` to `Items` at exactly the
/// subexpressions whose values must be re-inspected — the dynamic twin of
/// the static analysis in [`crate::emission`].
pub(crate) enum EvalOutput<'s, 'e> {
    Sink(&'s mut Emitter<'e>),
    Items(Sequence),
}

/// Sink-mode evaluation state threaded through the emitting recursion:
/// the sink itself, the space-join adjacency flag (the same `prev_atomic`
/// rule [`build_content`] applies to materialised content), and the spill
/// accounting.
pub(crate) struct Emitter<'s> {
    sink: &'s mut dyn XmlSink,
    /// True when the last thing emitted at this position was an atomic
    /// value, so the next atomic needs a single space before it.
    prev_atomic: bool,
    /// Arena pointers of the documents the caller passed *in* (the bound
    /// input and external variables). Replaying nodes of these documents
    /// is a streamed copy-out, not a spill — no new tree was built.
    input_docs: Vec<usize>,
    spilled_subtrees: u64,
    peak_spilled_nodes: u64,
}

fn sink_err(e: SinkError) -> XqError {
    XqError(e.to_string())
}

impl<'s> Emitter<'s> {
    fn new(sink: &'s mut dyn XmlSink, input_docs: Vec<usize>) -> Emitter<'s> {
        Emitter { sink, prev_atomic: false, input_docs, spilled_subtrees: 0, peak_spilled_nodes: 0 }
    }

    fn run(&self) -> SinkRun {
        SinkRun {
            spilled_subtrees: self.spilled_subtrees,
            peak_spilled_nodes: self.peak_spilled_nodes,
        }
    }

    fn is_input_doc(&self, doc: &DocRc) -> bool {
        self.input_docs.contains(&(Rc::as_ptr(doc) as *const () as usize))
    }

    /// Emit one atomic value under the space-join rule.
    fn emit_atomic(&mut self, s: &str) -> Result<(), XqError> {
        if self.prev_atomic {
            self.sink.text(" ").map_err(sink_err)?;
        }
        self.sink.text(s).map_err(sink_err)?;
        self.prev_atomic = true;
        Ok(())
    }

    /// Emit a materialised sequence — the spill replay. Mirrors
    /// [`build_content`] item by item: attribute-node items become
    /// attribute events (misplaced if content already started), other
    /// nodes replay as subtree events, atomics space-join.
    fn emit_items(&mut self, items: Sequence) -> Result<(), XqError> {
        for item in items {
            match item {
                Item::Node(n) => {
                    let fresh = !self.is_input_doc(&n.doc);
                    let replayed = if n.doc.is_attribute(n.id) {
                        if let NodeKind::Attribute { name, value } = n.doc.kind(n.id) {
                            self.sink.attribute(name.clone(), value).map_err(sink_err)?;
                        }
                        1
                    } else {
                        replay_subtree(&n.doc, n.id, self.sink).map_err(sink_err)?
                    };
                    if fresh {
                        self.spilled_subtrees += 1;
                        self.peak_spilled_nodes = self.peak_spilled_nodes.max(replayed);
                    }
                    self.prev_atomic = false;
                }
                atomic => self.emit_atomic(&atomic.to_string_value())?,
            }
        }
        Ok(())
    }
}

/// Evaluate `e` into `out`: in `Items` mode this is exactly [`eval`]; in
/// `Sink` mode constructors in emission position become events and
/// everything else spills through [`eval`] and replays.
pub(crate) fn eval_into(
    e: &XqExpr,
    env: &mut EvalEnv<'_>,
    out: &mut EvalOutput<'_, '_>,
) -> Result<(), XqError> {
    match out {
        EvalOutput::Items(items) => {
            items.extend(eval(e, env)?);
            Ok(())
        }
        EvalOutput::Sink(em) => emit(e, env, em),
    }
}

/// The emitting recursion. Only expressions whose value flows *directly*
/// to the output stay in emission position (sequences, conditional
/// branches, FLWOR returns, constructor content); every other expression
/// is evaluated with [`eval`] — materialising whatever it must — and its
/// items are replayed as events.
fn emit(e: &XqExpr, env: &mut EvalEnv<'_>, em: &mut Emitter<'_>) -> Result<(), XqError> {
    match e {
        XqExpr::Seq(es) => {
            env.guard.charge(1).map_err(guard_err)?;
            for sub in es {
                emit(sub, env, em)?;
            }
            Ok(())
        }
        XqExpr::If { cond, then, els } => {
            env.guard.charge(1).map_err(guard_err)?;
            let c = eval(cond, env)?;
            if ebv(&c)? {
                emit(then, env, em)
            } else {
                emit(els, env, em)
            }
        }
        XqExpr::Annotated { expr, .. } => {
            env.guard.charge(1).map_err(guard_err)?;
            emit(expr, env, em)
        }
        XqExpr::Flwor { clauses, where_clause, order_by, ret } => {
            env.guard.charge(1).map_err(guard_err)?;
            let tuples = flwor_tuples(clauses, where_clause.as_deref(), order_by, env)?;
            for t in tuples {
                let depth = t.len();
                for binding in t {
                    env.vars.push(binding);
                }
                let r = emit(ret, env, em);
                for _ in 0..depth {
                    env.vars.pop();
                }
                r?;
            }
            Ok(())
        }
        XqExpr::DirectElem { name, attrs, content } => {
            env.guard.charge(1).map_err(guard_err)?;
            env.guard.charge_output_nodes(1).map_err(guard_err)?;
            em.sink.start_element(name.clone()).map_err(sink_err)?;
            for (aname, parts) in attrs {
                let mut val = String::new();
                for p in parts {
                    match p {
                        AttrValuePart::Text(t) => val.push_str(t),
                        AttrValuePart::Expr(e) => {
                            let seq = eval(e, env)?;
                            let strs: Vec<String> =
                                seq.iter().map(|i| i.atomize().to_string_value()).collect();
                            val.push_str(&strs.join(" "));
                        }
                    }
                }
                em.sink.attribute(aname.clone(), &val).map_err(sink_err)?;
            }
            em.prev_atomic = false;
            for c in content {
                match c {
                    // Literal element content is emitted verbatim and
                    // breaks atomic adjacency — the `ContentPiece::Text`
                    // rule of the materialising path.
                    XqExpr::TextContent(t) => {
                        em.sink.text(t).map_err(sink_err)?;
                        em.prev_atomic = false;
                    }
                    other => emit(other, env, em)?,
                }
            }
            em.sink.end_element().map_err(sink_err)?;
            em.prev_atomic = false;
            Ok(())
        }
        XqExpr::CompElem { name, content } => {
            env.guard.charge(1).map_err(guard_err)?;
            env.guard.charge_output_nodes(1).map_err(guard_err)?;
            let n = eval(name, env)?;
            let lexical = n
                .first()
                .map(|i| i.to_string_value())
                .ok_or_else(|| XqError("element constructor with empty name".into()))?;
            let (prefix, local) = QName::split(&lexical);
            let qname = QName { prefix: prefix.map(Into::into), local: local.into(), ns_uri: None };
            em.sink.start_element(qname).map_err(sink_err)?;
            em.prev_atomic = false;
            // No TextContent special case here: the materialising path
            // evaluates computed content with `eval`, where literal text
            // becomes an atomic string.
            emit(content, env, em)?;
            em.sink.end_element().map_err(sink_err)?;
            em.prev_atomic = false;
            Ok(())
        }
        XqExpr::CompAttr { name, value } => {
            env.guard.charge(1).map_err(guard_err)?;
            let n = eval(name, env)?;
            let lexical = n
                .first()
                .map(|i| i.to_string_value())
                .ok_or_else(|| XqError("attribute constructor with empty name".into()))?;
            let v = eval(value, env)?;
            let strs: Vec<String> = v.iter().map(|i| i.atomize().to_string_value()).collect();
            let (prefix, local) = QName::split(&lexical);
            em.sink
                .attribute(
                    QName { prefix: prefix.map(Into::into), local: local.into(), ns_uri: None },
                    &strs.join(" "),
                )
                .map_err(sink_err)?;
            em.prev_atomic = false;
            Ok(())
        }
        XqExpr::CompText(inner) => {
            env.guard.charge(1).map_err(guard_err)?;
            let v = eval(inner, env)?;
            let strs: Vec<String> = v.iter().map(|i| i.atomize().to_string_value()).collect();
            let joined = strs.join(" ");
            // An empty computed text node is an empty sequence on the
            // materialising path: emit nothing and leave atomic adjacency
            // untouched.
            if joined.is_empty() {
                return Ok(());
            }
            em.sink.text(&joined).map_err(sink_err)?;
            em.prev_atomic = false;
            Ok(())
        }
        XqExpr::CompComment(inner) => {
            env.guard.charge(1).map_err(guard_err)?;
            let v = eval(inner, env)?;
            let strs: Vec<String> = v.iter().map(|i| i.atomize().to_string_value()).collect();
            em.sink.comment(&strs.join(" ")).map_err(sink_err)?;
            em.prev_atomic = false;
            Ok(())
        }
        XqExpr::CompPi { target, content } => {
            env.guard.charge(1).map_err(guard_err)?;
            let v = eval(content, env)?;
            let strs: Vec<String> = v.iter().map(|i| i.atomize().to_string_value()).collect();
            em.sink.pi(target.as_str(), &strs.join(" ")).map_err(sink_err)?;
            em.prev_atomic = false;
            Ok(())
        }
        // A call to a *user-declared* function whose result flows straight
        // to the output: inline the body in emission position. The body's
        // value is never re-inspected here, so its constructors may stream
        // — this is what keeps the recursion-shaped XSLTMark cases (whose
        // every constructor lives inside a template function) spill-free.
        // Argument values ARE re-inspected (bound to parameters), so they
        // evaluate in spill position, exactly as `eval_call` does.
        XqExpr::Call { name, args } if env.functions.contains_key(name.as_str()) => {
            env.guard.charge(1).map_err(guard_err)?;
            let decl = env.functions[name.as_str()];
            if decl.params.len() != args.len() {
                return Err(XqError(format!(
                    "{name}() expects {} arguments, got {}",
                    decl.params.len(),
                    args.len()
                )));
            }
            if env.depth + 1 > MAX_DEPTH {
                return Err(XqError(format!(
                    "function recursion deeper than {MAX_DEPTH} (infinite recursion?)"
                )));
            }
            let mut bound = Vec::with_capacity(args.len());
            for (p, a) in decl.params.iter().zip(args) {
                bound.push((p.clone(), eval(a, env)?));
            }
            // Functions see only their parameters (and other functions).
            let saved_vars = std::mem::replace(&mut env.vars, bound);
            let saved_ctx = env.ctx.take();
            env.depth += 1;
            let r = match env.guard.enter() {
                Ok(()) => {
                    let r = emit(&decl.body, env, em);
                    env.guard.leave();
                    r
                }
                Err(e) => Err(guard_err(e)),
            };
            env.depth -= 1;
            env.vars = saved_vars;
            env.ctx = saved_ctx;
            r
        }
        // Everything else must be re-inspected (paths, predicates, builtin
        // calls, comparisons, variables…): evaluate it — `eval` charges the
        // guard — then replay the materialised items as events.
        other => {
            let items = eval(other, env)?;
            em.emit_items(items)
        }
    }
}

/// Evaluate a full query straight into an [`XmlSink`]: the sink-mode twin
/// of [`evaluate_query_guarded_with_vars`] + [`sequence_to_document`].
/// Constructors in emission position never materialise; spilled subtrees
/// are counted in the returned [`SinkRun`]. The event stream is
/// byte-identical (through a `StreamWriter`) to serializing the
/// materialised evaluation — property-tested in `tests/prop_stream.rs`.
pub fn evaluate_query_to_sink(
    q: &XQuery,
    input: Option<NodeHandle>,
    extra_vars: Vec<(String, Sequence)>,
    guard: Guard,
    sink: &mut dyn XmlSink,
) -> Result<SinkRun, XqError> {
    if let Some(kind) = guard.take_fault(FaultPoint::XQueryExec) {
        match kind {
            FaultKind::Error => return Err(XqError("injected fault at XQuery tier".into())),
            FaultKind::Panic => panic!("injected panic at XQuery tier"),
        }
    }
    let mut input_docs = Vec::new();
    if let Some(n) = &input {
        input_docs.push(Rc::as_ptr(&n.doc) as *const () as usize);
    }
    for (_, seq) in &extra_vars {
        for item in seq {
            if let Item::Node(n) = item {
                let key = Rc::as_ptr(&n.doc) as *const () as usize;
                if !input_docs.contains(&key) {
                    input_docs.push(key);
                }
            }
        }
    }
    let functions: HashMap<String, &FunctionDecl> =
        q.functions.iter().map(|f| (f.name.clone(), f)).collect();
    let mut env = EvalEnv {
        functions,
        vars: extra_vars,
        ctx: input.map(Item::Node),
        pos: 1,
        size: 1,
        depth: 0,
        guard,
    };
    // Prolog variables are re-inspection position by definition: their
    // values are bound, not emitted. Fresh trees they build spill later
    // if the body emits them.
    for v in &q.variables {
        let val = eval(&v.value, &mut env)?;
        env.vars.push((v.name.clone(), val));
    }
    let mut em = Emitter::new(sink, input_docs);
    let mut out = EvalOutput::Sink(&mut em);
    eval_into(&q.body, &mut env, &mut out)?;
    Ok(em.run())
}

// The functions module needs access to the evaluator internals.
pub(crate) mod internal {
    pub(crate) use super::{ebv, eval, EvalEnv, Item, Sequence, XqError};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn input(xml: &str) -> NodeHandle {
        NodeHandle::document(xsltdb_xml::parse::parse(xml).unwrap())
    }

    fn run(src: &str, xml: &str) -> String {
        let q = parse_query(src).unwrap();
        let seq = evaluate_query(&q, Some(input(xml))).unwrap();
        serialize_sequence(&seq)
    }

    #[test]
    fn simple_path_and_constructor() {
        assert_eq!(
            run("<p>{fn:string(/dept/dname)}</p>", "<dept><dname>A</dname></dept>"),
            "<p>A</p>"
        );
    }

    #[test]
    fn flwor_over_emps() {
        let xml = "<dept><emp><sal>100</sal></emp><emp><sal>300</sal></emp></dept>";
        assert_eq!(
            run(
                "for $e in /dept/emp where $e/sal > 200 return <hi>{fn:string($e/sal)}</hi>",
                xml
            ),
            "<hi>300</hi>"
        );
    }

    #[test]
    fn let_binding_and_sequence() {
        assert_eq!(
            run("let $x := 2 return ($x, $x * 3)", "<r/>"),
            "2 6"
        );
    }

    #[test]
    fn prolog_variable_is_context() {
        assert_eq!(
            run(
                "declare variable $var000 := .; fn:string($var000/r/v)",
                "<r><v>9</v></r>"
            ),
            "9"
        );
    }

    #[test]
    fn user_function_call() {
        assert_eq!(
            run(
                "declare function local:wrap($n) { <w>{fn:string($n)}</w> }; local:wrap(/r/v)",
                "<r><v>q</v></r>"
            ),
            "<w>q</w>"
        );
    }

    #[test]
    fn recursive_function_detected() {
        let q = parse_query("declare function local:f($n) { local:f($n) }; local:f(1)").unwrap();
        let r = evaluate_query(&q, Some(input("<r/>")));
        assert!(r.is_err());
    }

    #[test]
    fn predicates_positional_and_value() {
        let xml = "<r><i>a</i><i>b</i><i>c</i></r>";
        assert_eq!(run("fn:string(/r/i[2])", xml), "b");
        assert_eq!(run("fn:string(/r/i[. = 'c'])", xml), "c");
    }

    #[test]
    fn instance_of_checks() {
        let xml = "<r><a>1</a></r>";
        assert_eq!(run("for $n in /r/node() return ($n instance of element(a))", xml), "true");
        assert_eq!(run("(/r/a instance of element(b))", xml), "false");
        assert_eq!(run("(/r/a/text() instance of text())", xml), "true");
    }

    #[test]
    fn constructor_copies_nodes() {
        let xml = "<r><a k=\"1\">x</a></r>";
        assert_eq!(run("<out>{/r/a}</out>", xml), "<out><a k=\"1\">x</a></out>");
    }

    #[test]
    fn adjacent_atomics_get_space() {
        assert_eq!(run("<o>{1, 2, 'x'}</o>", "<r/>"), "<o>1 2 x</o>");
    }

    #[test]
    fn attribute_avt_in_constructor() {
        assert_eq!(
            run("<t border=\"{1 + 1}\"/>", "<r/>"),
            "<t border=\"2\"/>"
        );
    }

    #[test]
    fn computed_constructors_work() {
        assert_eq!(run("element {'e'} {attribute {'k'} {'v'}, 'body'}", "<r/>"), "<e k=\"v\">body</e>");
        assert_eq!(run("text {'plain'}", "<r/>"), "plain");
    }

    #[test]
    fn empty_and_arith_propagation() {
        assert_eq!(run("()", "<r/>"), "");
        assert_eq!(run("1 + 2 * 3", "<r/>"), "7");
        assert_eq!(run("/r/nothing + 1", "<r/>"), "");
    }

    #[test]
    fn general_comparison_existential() {
        let xml = "<r><s>100</s><s>300</s></r>";
        assert_eq!(run("/r/s > 200", xml), "true");
        assert_eq!(run("/r/s > 400", xml), "false");
    }

    #[test]
    fn order_by_sorts_tuples() {
        let xml = "<r><e><n>b</n></e><e><n>a</n></e></r>";
        assert_eq!(
            run("for $e in /r/e order by $e/n return fn:string($e/n)", xml),
            "a b"
        );
        assert_eq!(
            run("for $e in /r/e order by $e/n descending return fn:string($e/n)", xml),
            "b a"
        );
    }

    #[test]
    fn double_slash_descendants() {
        let xml = "<a><b><c>1</c></b><c>2</c></a>";
        assert_eq!(run("fn:count(//c)", xml), "2");
    }

    #[test]
    fn sequence_to_document_materialises() {
        let q = parse_query("(<a/>, 'x', <b/>)").unwrap();
        let seq = evaluate_query(&q, Some(input("<r/>"))).unwrap();
        let doc = sequence_to_document(&seq);
        assert_eq!(xsltdb_xml::to_string(&doc), "<a/>x<b/>");
    }

    #[test]
    fn undefined_variable_is_error() {
        let q = parse_query("$nope").unwrap();
        assert!(evaluate_query(&q, Some(input("<r/>"))).is_err());
    }

    fn run_guarded(src: &str, xml: &str, guard: Guard) -> Result<Sequence, XqError> {
        let q = parse_query(src).unwrap();
        evaluate_query_guarded(&q, Some(input(xml)), guard)
    }

    #[test]
    fn guard_fuel_trips_on_flwor_cross_product() {
        use xsltdb_xml::{Limits, Resource};
        let guard = Guard::new(Limits::UNLIMITED.with_fuel(40));
        let xml = "<r><a/><a/><a/><a/><a/><a/><a/><a/></r>";
        let r = run_guarded(
            "for $x in /r/a for $y in /r/a return <p/>",
            xml,
            guard.clone(),
        );
        let err = r.unwrap_err();
        assert!(err.0.contains("fuel"), "unexpected error: {}", err.0);
        let trip = guard.trip().expect("guard recorded the trip");
        assert_eq!(trip.resource, Resource::Fuel);
        assert_eq!(trip.limit, 40);
    }

    #[test]
    fn guard_depth_trips_on_recursive_function() {
        use xsltdb_xml::{Limits, Resource};
        let guard = Guard::new(Limits::UNLIMITED.with_max_depth(8));
        let r = run_guarded(
            "declare function local:f($n) { local:f($n) }; local:f(1)",
            "<r/>",
            guard.clone(),
        );
        assert!(r.is_err());
        let trip = guard.trip().expect("guard recorded the trip");
        assert_eq!(trip.resource, Resource::Depth);
        assert_eq!(trip.limit, 8);
    }

    #[test]
    fn guard_expired_deadline_trips() {
        use std::time::Duration;
        use xsltdb_xml::{Limits, Resource};
        let guard = Guard::new(Limits::UNLIMITED.with_deadline(Duration::from_secs(0)));
        std::thread::sleep(Duration::from_millis(2));
        let r = run_guarded("for $x in /r/a return $x", "<r><a/></r>", guard.clone());
        assert!(r.is_err());
        let trip = guard.trip().expect("guard recorded the trip");
        assert_eq!(trip.resource, Resource::Deadline);
    }

    #[test]
    fn guard_output_nodes_cap_trips_on_constructors() {
        use xsltdb_xml::{Limits, Resource};
        let guard = Guard::new(Limits::UNLIMITED.with_max_output_nodes(3));
        let xml = "<r><a/><a/><a/><a/><a/><a/></r>";
        let r = run_guarded("for $x in /r/a return <p/>", xml, guard.clone());
        assert!(r.is_err());
        let trip = guard.trip().expect("guard recorded the trip");
        assert_eq!(trip.resource, Resource::OutputNodes);
        assert_eq!(trip.limit, 3);
    }

    #[test]
    fn guard_unlimited_keeps_queries_working() {
        let seq = run_guarded(
            "for $e in /d/e return <o>{fn:string($e)}</o>",
            "<d><e>1</e><e>2</e></d>",
            Guard::unlimited(),
        )
        .unwrap();
        assert_eq!(serialize_sequence(&seq), "<o>1</o><o>2</o>");
    }

    #[test]
    fn injected_xquery_fault_errors_once() {
        let guard = Guard::unlimited().with_fault(FaultPoint::XQueryExec, FaultKind::Error);
        let err = run_guarded("1", "<r/>", guard.clone()).unwrap_err();
        assert!(err.0.contains("injected fault"), "unexpected: {}", err.0);
        // One-shot: the same guard succeeds on retry.
        assert!(run_guarded("1", "<r/>", guard).is_ok());
    }

    /// Sink-mode evaluation through a StreamWriter, plus the materialised
    /// reference for the same query: the outputs must be byte-identical.
    fn run_sink(src: &str, xml: &str) -> (String, String, SinkRun) {
        let q = parse_query(src).unwrap();
        let in_doc = input(xml);
        let mut sw = xsltdb_xml::StreamWriter::new(Vec::new(), Guard::unlimited());
        let sink_run =
            evaluate_query_to_sink(&q, Some(in_doc.clone()), Vec::new(), Guard::unlimited(), &mut sw)
                .unwrap();
        let streamed = String::from_utf8(sw.finish().unwrap()).unwrap();
        let seq = evaluate_query(&q, Some(in_doc)).unwrap();
        let reference = xsltdb_xml::to_string(&sequence_to_document(&seq));
        (streamed, reference, sink_run)
    }

    #[test]
    fn sink_mode_streams_top_level_constructors_without_spilling() {
        let xml = "<dept><emp><sal>100</sal></emp><emp><sal>300</sal></emp></dept>";
        let (streamed, reference, run) = run_sink(
            "for $e in /dept/emp return <hi s=\"{fn:string($e/sal)}\">{fn:string($e/sal)}</hi>",
            xml,
        );
        assert_eq!(streamed, reference);
        assert_eq!(streamed, "<hi s=\"100\">100</hi><hi s=\"300\">300</hi>");
        assert_eq!(run, SinkRun::default(), "no constructor should have spilled");
    }

    #[test]
    fn sink_mode_copies_input_subtrees_without_counting_spills() {
        let xml = "<r><a k=\"1\">x</a><a k=\"2\">y</a></r>";
        let (streamed, reference, run) = run_sink("<out>{/r/a}</out>", xml);
        assert_eq!(streamed, reference);
        assert_eq!(streamed, "<out><a k=\"1\">x</a><a k=\"2\">y</a></out>");
        // Input-document subtrees replay as a streamed copy-out, not a spill.
        assert_eq!(run.spilled_subtrees, 0);
    }

    #[test]
    fn sink_mode_spills_predicate_over_fresh_element() {
        let (streamed, reference, run) =
            run_sink("<out>{(<probe><v>1</v></probe>)[v = 1]}</out>", "<r/>");
        assert_eq!(streamed, reference);
        assert_eq!(streamed, "<out><probe><v>1</v></probe></out>");
        assert_eq!(run.spilled_subtrees, 1);
        // probe + v + text("1") = 3 arena nodes in the spilled subtree.
        assert_eq!(run.peak_spilled_nodes, 3);
    }

    #[test]
    fn sink_mode_inlines_emission_position_function_calls() {
        // The call is in emission position, so the body's constructor
        // streams: zero spills even though the constructor lives inside
        // a user function.
        let (streamed, reference, run) = run_sink(
            "declare function local:wrap($n) { <w>{fn:string($n)}</w> }; local:wrap(/r/v)",
            "<r><v>q</v></r>",
        );
        assert_eq!(streamed, reference);
        assert_eq!(streamed, "<w>q</w>");
        assert_eq!(run.spilled_subtrees, 0);
    }

    #[test]
    fn sink_mode_spills_function_results_that_are_reinspected() {
        // Same function, but the result is filtered: the call sits in
        // spill position, so the body materialises once and replays.
        let (streamed, reference, run) = run_sink(
            "declare function local:wrap($n) { <w>{fn:string($n)}</w> }; (local:wrap(/r/v))[1]",
            "<r><v>q</v></r>",
        );
        assert_eq!(streamed, reference);
        assert_eq!(streamed, "<w>q</w>");
        assert_eq!(run.spilled_subtrees, 1);
    }

    #[test]
    fn sink_mode_streams_recursive_template_functions() {
        let (streamed, reference, run) = run_sink(
            "declare function local:down($n) { \
               if ($n = 0) then <leaf/> else <node>{local:down($n - 1)}</node> \
             }; local:down(3)",
            "<r/>",
        );
        assert_eq!(streamed, reference);
        assert_eq!(streamed, "<node><node><node><leaf/></node></node></node>");
        assert_eq!(run.spilled_subtrees, 0);
    }

    #[test]
    fn sink_mode_space_joins_and_empty_text_match_materialised() {
        for src in [
            "<o>{1, 2, 'x'}</o>",
            "('x', text {''}, 'y')",
            "('x', text {'a'}, 'y')",
            "element {'e'} {attribute {'k'} {'v'}, 'body'}",
            "<o>lit{'a'}{'b'}</o>",
            "(<a/>, 'x', <b/>)",
            "if (/r) then <yes/> else <no/>",
            "comment {'c'}, processing-instruction tgt {'d'}",
        ] {
            let (streamed, reference, _) = run_sink(src, "<r/>");
            assert_eq!(streamed, reference, "diverged on {src}");
        }
    }

    #[test]
    fn sink_mode_order_by_streams_sorted_returns() {
        let xml = "<r><e><n>b</n></e><e><n>a</n></e></r>";
        let (streamed, reference, run) =
            run_sink("for $e in /r/e order by $e/n return <o>{fn:string($e/n)}</o>", xml);
        assert_eq!(streamed, reference);
        assert_eq!(streamed, "<o>a</o><o>b</o>");
        assert_eq!(run.spilled_subtrees, 0, "sorting tuples must not spill the returns");
    }

    #[test]
    fn sink_mode_byte_cap_trips_mid_stream() {
        use xsltdb_xml::{Limits, Resource};
        let q = parse_query("for $e in /d/e return <o>{fn:string($e)}</o>").unwrap();
        let guard = Guard::new(Limits::UNLIMITED.with_max_output_bytes(12));
        let mut sw = xsltdb_xml::StreamWriter::new(Vec::new(), guard.clone());
        let err = evaluate_query_to_sink(
            &q,
            Some(input("<d><e>aaaa</e><e>bbbb</e><e>cccc</e></d>")),
            Vec::new(),
            guard.clone(),
            &mut sw,
        )
        .unwrap_err();
        assert!(err.0.contains("output bytes"), "unexpected error: {}", err.0);
        let trip = guard.trip().expect("guard recorded the trip");
        assert_eq!(trip.resource, Resource::OutputBytes);
        assert!(sw.bytes_written() <= 12, "bytes on the wire exceed the cap");
    }

    #[test]
    fn sink_mode_injected_fault_fires_before_any_event() {
        let guard = Guard::unlimited().with_fault(FaultPoint::XQueryExec, FaultKind::Error);
        let q = parse_query("<a/>").unwrap();
        let mut sw = xsltdb_xml::StreamWriter::new(Vec::new(), guard.clone());
        let err = evaluate_query_to_sink(&q, Some(input("<r/>")), Vec::new(), guard, &mut sw)
            .unwrap_err();
        assert!(err.0.contains("injected fault"));
        assert_eq!(sw.bytes_written(), 0);
    }
}
