//! XSLT 1.0 conformance battery for the XSLTVM beyond the unit tests:
//! whitespace rules, dispatch subtleties, result-tree-fragment semantics,
//! numeric formatting, and error behaviour.

use xsltdb_xslt::transform_str;

fn wrap(body: &str) -> String {
    format!(
        r#"<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">{body}</xsl:stylesheet>"#
    )
}

fn run(body: &str, input: &str) -> String {
    transform_str(&wrap(body), input).unwrap()
}

#[test]
fn number_formatting_integers_without_point() {
    assert_eq!(
        run(
            r#"<xsl:template match="/"><o><xsl:value-of select="1 + 2"/>,<xsl:value-of select="10 div 4"/>,<xsl:value-of select="1 div 0"/></o></xsl:template>"#,
            "<r/>"
        ),
        "<o>3,2.5,Infinity</o>"
    );
}

#[test]
fn nan_stringifies() {
    assert_eq!(
        run(
            r#"<xsl:template match="/"><o><xsl:value-of select="number('zzz')"/></o></xsl:template>"#,
            "<r/>"
        ),
        "<o>NaN</o>"
    );
}

#[test]
fn value_of_nodeset_takes_first_in_doc_order() {
    assert_eq!(
        run(
            r#"<xsl:template match="/"><o><xsl:value-of select="//x"/></o></xsl:template>"#,
            "<r><x>first</x><x>second</x></r>"
        ),
        "<o>first</o>"
    );
}

#[test]
fn copy_of_nodeset_copies_all_in_doc_order() {
    assert_eq!(
        run(
            r#"<xsl:template match="/"><o><xsl:copy-of select="//x"/></o></xsl:template>"#,
            "<r><x>1</x><y/><x>2</x></r>"
        ),
        "<o><x>1</x><x>2</x></o>"
    );
}

#[test]
fn choose_without_otherwise_yields_nothing() {
    assert_eq!(
        run(
            r#"<xsl:template match="/"><o><xsl:choose><xsl:when test="false()">x</xsl:when></xsl:choose></o></xsl:template>"#,
            "<r/>"
        ),
        "<o/>"
    );
}

#[test]
fn sort_is_stable_on_equal_keys() {
    assert_eq!(
        run(
            r#"<xsl:template match="/"><xsl:for-each select="//i">
                 <xsl:sort select="@k"/>
                 <v><xsl:value-of select="."/></v>
               </xsl:for-each></xsl:template>"#,
            r#"<r><i k="b">1</i><i k="a">2</i><i k="b">3</i><i k="a">4</i></r>"#
        ),
        "<v>2</v><v>4</v><v>1</v><v>3</v>"
    );
}

#[test]
fn two_sort_keys_nested_order() {
    assert_eq!(
        run(
            r#"<xsl:template match="/"><xsl:for-each select="//i">
                 <xsl:sort select="@g"/>
                 <xsl:sort select="." data-type="number" order="descending"/>
                 <v><xsl:value-of select="."/></v>
               </xsl:for-each></xsl:template>"#,
            r#"<r><i g="b">5</i><i g="a">1</i><i g="a">9</i><i g="b">7</i></r>"#
        ),
        "<v>9</v><v>1</v><v>7</v><v>5</v>"
    );
}

#[test]
fn rtf_variable_number_context() {
    // Arithmetic over an RTF's string value.
    assert_eq!(
        run(
            r#"<xsl:template match="/">
                 <xsl:variable name="n"><x>4</x></xsl:variable>
                 <o><xsl:value-of select="$n * 2"/></o>
               </xsl:template>"#,
            "<r/>"
        ),
        "<o>8</o>"
    );
}

#[test]
fn variable_shadowing_inner_scope_wins() {
    assert_eq!(
        run(
            r#"<xsl:template match="/">
                 <xsl:variable name="v" select="'outer'"/>
                 <xsl:for-each select="//i">
                   <xsl:variable name="v" select="'inner'"/>
                   <a><xsl:value-of select="$v"/></a>
                 </xsl:for-each>
                 <b><xsl:value-of select="$v"/></b>
               </xsl:template>"#,
            "<r><i/></r>"
        ),
        "<a>inner</a><b>outer</b>"
    );
}

#[test]
fn attribute_value_template_escaping() {
    assert_eq!(
        run(
            r#"<xsl:template match="/"><o a="{{literal}}" b="{1+1}"/></xsl:template>"#,
            "<r/>"
        ),
        r#"<o a="{literal}" b="2"/>"#
    );
}

#[test]
fn later_attribute_instruction_overrides_literal() {
    assert_eq!(
        run(
            r#"<xsl:template match="/">
                 <o a="first"><xsl:attribute name="a">second</xsl:attribute></o>
               </xsl:template>"#,
            "<r/>"
        ),
        r#"<o a="second"/>"#
    );
}

#[test]
fn builtin_rule_skips_comments_and_pis() {
    assert_eq!(run("", "<r>a<!--x--><?p d?>b</r>"), "ab");
}

#[test]
fn apply_templates_on_attributes_via_select() {
    assert_eq!(
        run(
            r#"<xsl:template match="r"><o><xsl:apply-templates select="@*"/></o></xsl:template>
               <xsl:template match="@k">[<xsl:value-of select="."/>]</xsl:template>"#,
            r#"<r k="v" other="w"/>"#
        ),
        "<o>[v]w</o>" // @other falls to the built-in attribute rule
    );
}

#[test]
fn current_vs_context_in_predicates() {
    // current() stays the template's node while `.` is the predicate node.
    assert_eq!(
        run(
            r#"<xsl:template match="i">
                 <n><xsl:value-of select="count(//i[@g = current()/@g])"/></n>
               </xsl:template>
               <xsl:template match="text()"/>"#,
            r#"<r><i g="a"/><i g="b"/><i g="a"/></r>"#
        ),
        "<n>2</n><n>1</n><n>2</n>"
    );
}

#[test]
fn global_param_behaves_like_variable() {
    assert_eq!(
        run(
            r#"<xsl:param name="p" select="'dflt'"/>
               <xsl:template match="/"><o><xsl:value-of select="$p"/></o></xsl:template>"#,
            "<r/>"
        ),
        "<o>dflt</o>"
    );
}

#[test]
fn empty_apply_templates_leafs_to_builtin_text() {
    assert_eq!(
        run(
            r#"<xsl:template match="r"><o><xsl:apply-templates/></o></xsl:template>"#,
            "<r>hello</r>"
        ),
        "<o>hello</o>"
    );
}

#[test]
fn boolean_string_conversion_in_output() {
    assert_eq!(
        run(
            r#"<xsl:template match="/"><o><xsl:value-of select="1 &lt; 2"/>-<xsl:value-of select="2 &lt; 1"/></o></xsl:template>"#,
            "<r/>"
        ),
        "<o>true-false</o>"
    );
}

#[test]
fn deep_input_document_transform() {
    let mut input = String::new();
    for _ in 0..60 {
        input.push_str("<d>");
    }
    input.push('x');
    for _ in 0..60 {
        input.push_str("</d>");
    }
    // Built-in rules recurse through all levels.
    assert_eq!(run("", &input), "x");
}

#[test]
fn error_no_template_named() {
    let r = transform_str(
        &wrap(r#"<xsl:template match="/"><xsl:call-template name="missing"/></xsl:template>"#),
        "<r/>",
    );
    assert!(r.is_err());
}

#[test]
fn error_select_yields_non_nodeset() {
    let r = transform_str(
        &wrap(r#"<xsl:template match="/"><xsl:apply-templates select="1 + 1"/></xsl:template>"#),
        "<r/>",
    );
    assert!(r.is_err());
}

#[test]
fn whitespace_only_text_in_stylesheet_dropped_but_input_kept() {
    assert_eq!(
        run(
            r#"<xsl:template match="r">
                 <o>
                   <xsl:apply-templates/>
                 </o>
               </xsl:template>"#,
            "<r> spaced </r>"
        ),
        "<o> spaced </o>"
    );
}

#[test]
fn prefixed_literal_elements_keep_their_namespace_declarations() {
    let out = run(
        r#"<xsl:template match="/">
             <h:table xmlns:h="urn:html"><h:tr/></h:table>
           </xsl:template>"#,
        "<r/>",
    );
    assert_eq!(out, r#"<h:table xmlns:h="urn:html"><h:tr/></h:table>"#);
}

#[test]
fn xsl_namespace_declarations_are_stripped_from_output() {
    // A literal element re-declaring the XSLT namespace must not leak it.
    let out = run(
        r#"<xsl:template match="/">
             <o xmlns:xsl="http://www.w3.org/1999/XSL/Transform">x</o>
           </xsl:template>"#,
        "<r/>",
    );
    assert_eq!(out, "<o>x</o>");
}

#[test]
fn stylesheet_matching_prefixed_input() {
    let out = run(
        r#"<xsl:template match="item"><hit><xsl:value-of select="."/></hit></xsl:template>
           <xsl:template match="text()"/>"#,
        r#"<inv:list xmlns:inv="urn:inv"><item>widget</item></inv:list>"#,
    );
    assert_eq!(out, "<hit>widget</hit>");
}

#[test]
fn sort_lang_independent_byte_order() {
    // Documented behaviour: text sorts are byte-wise (no collations).
    let out = run(
        r#"<xsl:template match="/"><xsl:for-each select="//w">
             <xsl:sort select="."/>
             <v><xsl:value-of select="."/></v>
           </xsl:for-each></xsl:template>"#,
        "<r><w>b</w><w>B</w><w>a</w></r>",
    );
    assert_eq!(out, "<v>B</v><v>a</v><v>b</v>");
}

#[test]
fn for_each_changes_context_for_relative_paths() {
    let out = run(
        r#"<xsl:template match="r">
             <xsl:for-each select="grp">
               <g n="{@id}"><xsl:value-of select="count(item)"/></g>
             </xsl:for-each>
           </xsl:template>"#,
        r#"<r><grp id="a"><item/><item/></grp><grp id="b"><item/></grp></r>"#,
    );
    assert_eq!(out, r#"<g n="a">2</g><g n="b">1</g>"#);
}
