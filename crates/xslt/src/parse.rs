//! Stylesheet compilation: XML document → [`Stylesheet`].

use crate::ast::{
    Op, OutputMethod, SiteId, SortKey, Stylesheet, Template, VarValueSource, WithParam,
};
use crate::avt::Avt;
use crate::error::XsltError;
use xsltdb_xml::{Document, NodeId, NodeKind};
use xsltdb_xpath::{parse_expr, Pattern};

/// Compile a stylesheet from its XML text.
pub fn compile_str(src: &str) -> Result<Stylesheet, XsltError> {
    let doc = xsltdb_xml::parse::parse(src)?;
    compile(&doc)
}

/// Compile a stylesheet from a parsed document.
pub fn compile(doc: &Document) -> Result<Stylesheet, XsltError> {
    let root = doc
        .root_element()
        .ok_or_else(|| XsltError::new("empty stylesheet document"))?;
    let root_name = doc.element_name(root).expect("root is an element");
    if !(root_name.is_xsl()
        && (&*root_name.local == "stylesheet" || &*root_name.local == "transform"))
    {
        return Err(XsltError::new(format!(
            "expected <xsl:stylesheet> or <xsl:transform> root, found <{root_name}>"
        )));
    }

    let mut c = Compiler { doc, next_site: 0 };
    let mut templates = Vec::new();
    let mut output = OutputMethod::default();
    let mut global_vars = Vec::new();

    for child in doc.children(root) {
        let (name, is_xsl) = match doc.kind(child) {
            NodeKind::Element { name, .. } => (name.clone(), name.is_xsl()),
            NodeKind::Text(t) if t.trim().is_empty() => continue,
            NodeKind::Comment(_) | NodeKind::Pi { .. } => continue,
            other => {
                return Err(XsltError::new(format!(
                    "unexpected top-level content in stylesheet: {other:?}"
                )))
            }
        };
        if !is_xsl {
            return Err(XsltError::new(format!(
                "unexpected non-XSLT top-level element <{name}>"
            )));
        }
        match &*name.local {
            "template" => templates.push(c.compile_template(child)?),
            "output" => {
                output = match doc.attribute(child, "method") {
                    Some("html") => OutputMethod::Html,
                    Some("text") => OutputMethod::Text,
                    _ => OutputMethod::Xml,
                };
            }
            "variable" | "param" => {
                let var_name = doc
                    .attribute(child, "name")
                    .ok_or_else(|| XsltError::new("top-level xsl:variable without name"))?
                    .to_string();
                global_vars.push((var_name, c.var_value_source(child)?));
            }
            "strip-space" | "preserve-space" => {
                // Whitespace control is a no-op: inputs are parsed with the
                // whitespace policy the caller chose.
            }
            "decimal-format" | "namespace-alias" | "attribute-set" => {
                return Err(XsltError::new(format!(
                    "unsupported top-level instruction xsl:{}",
                    name.local
                )))
            }
            "import" | "include" => {
                return Err(XsltError::new(
                    "xsl:import/xsl:include are not supported (single-document stylesheets only)",
                ))
            }
            "key" => return Err(XsltError::new("xsl:key is not supported")),
            other => {
                return Err(XsltError::new(format!(
                    "unknown top-level instruction xsl:{other}"
                )))
            }
        }
    }

    Ok(Stylesheet { templates, output, site_count: c.next_site, global_vars })
}

/// `(sorts, with-params, remaining children)` of an instruction element.
type SortsParamsRest = (Vec<SortKey>, Vec<WithParam>, Vec<NodeId>);

struct Compiler<'a> {
    doc: &'a Document,
    next_site: u32,
}

impl<'a> Compiler<'a> {
    fn site(&mut self) -> SiteId {
        let s = SiteId(self.next_site);
        self.next_site += 1;
        s
    }

    fn attr(&self, node: NodeId, name: &str) -> Option<&'a str> {
        self.doc.attribute(node, name)
    }

    fn compile_template(&mut self, node: NodeId) -> Result<Template, XsltError> {
        let pattern = match self.attr(node, "match") {
            Some(m) => Some(
                Pattern::parse(m)
                    .map_err(|e| XsltError::new(format!("in match=\"{m}\": {e}")))?,
            ),
            None => None,
        };
        let name = self.attr(node, "name").map(str::to_string);
        if pattern.is_none() && name.is_none() {
            return Err(XsltError::new("xsl:template needs `match` or `name`"));
        }
        let mode = self.attr(node, "mode").map(str::to_string);
        let priority = match self.attr(node, "priority") {
            Some(p) => p
                .parse()
                .map_err(|_| XsltError::new(format!("bad priority `{p}`")))?,
            None => pattern.as_ref().map(|p| p.default_priority()).unwrap_or(0.0),
        };

        // Leading xsl:param children declare parameters.
        let mut params = Vec::new();
        let mut body_nodes = Vec::new();
        let mut in_params = true;
        for child in self.doc.children(node) {
            if in_params {
                if let NodeKind::Element { name, .. } = self.doc.kind(child) {
                    if name.is_xsl() && &*name.local == "param" {
                        let pname = self
                            .attr(child, "name")
                            .ok_or_else(|| XsltError::new("xsl:param without name"))?
                            .to_string();
                        params.push((pname, self.var_value_source(child)?));
                        continue;
                    }
                }
                if let NodeKind::Text(t) = self.doc.kind(child) {
                    if t.trim().is_empty() {
                        continue;
                    }
                }
                in_params = false;
            }
            body_nodes.push(child);
        }
        let body = self.compile_body(&body_nodes)?;
        Ok(Template { pattern, name, mode, priority, params, body })
    }

    fn var_value_source(&mut self, node: NodeId) -> Result<VarValueSource, XsltError> {
        if let Some(sel) = self.attr(node, "select") {
            let e = parse_expr(sel)
                .map_err(|e| XsltError::new(format!("in select=\"{sel}\": {e}")))?;
            return Ok(VarValueSource::Select(e));
        }
        let children: Vec<NodeId> = self.doc.children(node).collect();
        let body = self.compile_body(&children)?;
        if body.is_empty() {
            Ok(VarValueSource::Empty)
        } else {
            Ok(VarValueSource::Body(body))
        }
    }

    fn compile_body(&mut self, nodes: &[NodeId]) -> Result<Vec<Op>, XsltError> {
        let mut ops = Vec::new();
        for &n in nodes {
            match self.doc.kind(n) {
                NodeKind::Text(t) => {
                    // Stylesheet whitespace stripping: whitespace-only text
                    // nodes are dropped (xsl:text preserves, handled below).
                    if !t.trim().is_empty() {
                        ops.push(Op::Text(t.clone()));
                    }
                }
                NodeKind::Comment(_) | NodeKind::Pi { .. } => {}
                NodeKind::Element { name, .. } => {
                    if name.is_xsl() {
                        self.compile_instruction(n, &name.local.clone(), &mut ops)?;
                    } else {
                        ops.push(self.compile_literal_element(n)?);
                    }
                }
                other => {
                    return Err(XsltError::new(format!(
                        "unexpected node in template body: {other:?}"
                    )))
                }
            }
        }
        Ok(ops)
    }

    fn compile_children(&mut self, node: NodeId) -> Result<Vec<Op>, XsltError> {
        let children: Vec<NodeId> = self.doc.children(node).collect();
        self.compile_body(&children)
    }

    fn compile_literal_element(&mut self, node: NodeId) -> Result<Op, XsltError> {
        let name = self.doc.element_name(node).expect("literal element").clone();
        let mut attrs = Vec::new();
        for &a in self.doc.attributes(node) {
            if let NodeKind::Attribute { name: aname, value } = self.doc.kind(a) {
                // Namespace declarations for the XSLT namespace itself are
                // noise in the output; drop them. Other xmlns attrs pass
                // through literally.
                if value == xsltdb_xml::XSL_NS
                    && (&*aname.local == "xmlns" || aname.local.starts_with("xmlns:"))
                {
                    continue;
                }
                let avt = Avt::parse(value)
                    .map_err(|e| XsltError::new(format!("in AVT `{value}`: {e}")))?;
                attrs.push((aname.clone(), avt));
            }
        }
        let body = self.compile_children(node)?;
        Ok(Op::LiteralElement { name, attrs, body })
    }

    fn required_attr(&self, node: NodeId, name: &str, instr: &str) -> Result<&'a str, XsltError> {
        self.attr(node, name)
            .ok_or_else(|| XsltError::new(format!("xsl:{instr} requires `{name}`")))
    }

    fn parse_select(&self, node: NodeId, instr: &str) -> Result<xsltdb_xpath::Expr, XsltError> {
        let s = self.required_attr(node, "select", instr)?;
        parse_expr(s).map_err(|e| XsltError::new(format!("in select=\"{s}\": {e}")))
    }

    fn collect_sorts_and_params(
        &mut self,
        node: NodeId,
    ) -> Result<SortsParamsRest, XsltError> {
        let mut sorts = Vec::new();
        let mut with_params = Vec::new();
        let mut rest = Vec::new();
        for child in self.doc.children(node) {
            if let NodeKind::Element { name, .. } = self.doc.kind(child) {
                if name.is_xsl() && &*name.local == "sort" {
                    let select = match self.attr(child, "select") {
                        Some(s) => parse_expr(s)
                            .map_err(|e| XsltError::new(format!("in sort select: {e}")))?,
                        None => parse_expr(".").expect("constant"),
                    };
                    sorts.push(SortKey {
                        select,
                        data_type_number: self.attr(child, "data-type") == Some("number"),
                        descending: self.attr(child, "order") == Some("descending"),
                    });
                    continue;
                }
                if name.is_xsl() && &*name.local == "with-param" {
                    let pname = self
                        .required_attr(child, "name", "with-param")?
                        .to_string();
                    with_params.push(WithParam {
                        name: pname,
                        value: self.var_value_source(child)?,
                    });
                    continue;
                }
            }
            rest.push(child);
        }
        Ok((sorts, with_params, rest))
    }

    fn compile_instruction(
        &mut self,
        node: NodeId,
        local: &str,
        ops: &mut Vec<Op>,
    ) -> Result<(), XsltError> {
        match local {
            "apply-templates" => {
                let select = match self.attr(node, "select") {
                    Some(s) => Some(
                        parse_expr(s)
                            .map_err(|e| XsltError::new(format!("in select=\"{s}\": {e}")))?,
                    ),
                    None => None,
                };
                let mode = self.attr(node, "mode").map(str::to_string);
                let (sorts, with_params, rest) = self.collect_sorts_and_params(node)?;
                for r in rest {
                    if let NodeKind::Text(t) = self.doc.kind(r) {
                        if t.trim().is_empty() {
                            continue;
                        }
                    }
                    return Err(XsltError::new(
                        "xsl:apply-templates allows only xsl:sort/xsl:with-param children",
                    ));
                }
                ops.push(Op::ApplyTemplates {
                    site: self.site(),
                    select,
                    mode,
                    sorts,
                    with_params,
                });
            }
            "call-template" => {
                let name = self.required_attr(node, "name", "call-template")?.to_string();
                let (_sorts, with_params, _rest) = self.collect_sorts_and_params(node)?;
                ops.push(Op::CallTemplate { site: self.site(), name, with_params });
            }
            "value-of" => {
                ops.push(Op::ValueOf(self.parse_select(node, "value-of")?));
            }
            "for-each" => {
                let select = self.parse_select(node, "for-each")?;
                let (sorts, _params, rest) = self.collect_sorts_and_params(node)?;
                let body = self.compile_body(&rest)?;
                ops.push(Op::ForEach { select, sorts, body });
            }
            "if" => {
                let t = self.required_attr(node, "test", "if")?;
                let test = parse_expr(t)
                    .map_err(|e| XsltError::new(format!("in test=\"{t}\": {e}")))?;
                let body = self.compile_children(node)?;
                ops.push(Op::If { test, body });
            }
            "choose" => {
                let mut whens = Vec::new();
                let mut otherwise = Vec::new();
                for child in self.doc.children(node) {
                    match self.doc.kind(child) {
                        NodeKind::Element { name, .. } if name.is_xsl() => {
                            match &*name.local {
                                "when" => {
                                    let t = self.required_attr(child, "test", "when")?;
                                    let test = parse_expr(t).map_err(|e| {
                                        XsltError::new(format!("in test=\"{t}\": {e}"))
                                    })?;
                                    whens.push((test, self.compile_children(child)?));
                                }
                                "otherwise" => {
                                    otherwise = self.compile_children(child)?;
                                }
                                other => {
                                    return Err(XsltError::new(format!(
                                        "unexpected xsl:{other} inside xsl:choose"
                                    )))
                                }
                            }
                        }
                        NodeKind::Text(t) if t.trim().is_empty() => {}
                        NodeKind::Comment(_) => {}
                        _ => {
                            return Err(XsltError::new(
                                "xsl:choose allows only xsl:when/xsl:otherwise",
                            ))
                        }
                    }
                }
                if whens.is_empty() {
                    return Err(XsltError::new("xsl:choose without xsl:when"));
                }
                ops.push(Op::Choose { whens, otherwise });
            }
            "variable" => {
                let name = self.required_attr(node, "name", "variable")?.to_string();
                ops.push(Op::Variable { name, value: self.var_value_source(node)? });
            }
            "text" => {
                let mut s = String::new();
                for child in self.doc.children(node) {
                    match self.doc.kind(child) {
                        NodeKind::Text(t) => s.push_str(t),
                        _ => return Err(XsltError::new("xsl:text allows only text")),
                    }
                }
                if !s.is_empty() {
                    ops.push(Op::Text(s));
                }
            }
            "element" => {
                let name = self.required_attr(node, "name", "element")?;
                let avt = Avt::parse(name)
                    .map_err(|e| XsltError::new(format!("in name AVT: {e}")))?;
                let body = self.compile_children(node)?;
                ops.push(Op::Element { name: avt, body });
            }
            "attribute" => {
                let name = self.required_attr(node, "name", "attribute")?;
                let avt = Avt::parse(name)
                    .map_err(|e| XsltError::new(format!("in name AVT: {e}")))?;
                let body = self.compile_children(node)?;
                ops.push(Op::Attribute { name: avt, body });
            }
            "comment" => {
                ops.push(Op::Comment { body: self.compile_children(node)? });
            }
            "processing-instruction" => {
                let name = self.required_attr(node, "name", "processing-instruction")?;
                let avt = Avt::parse(name)
                    .map_err(|e| XsltError::new(format!("in name AVT: {e}")))?;
                ops.push(Op::Pi { name: avt, body: self.compile_children(node)? });
            }
            "copy" => {
                ops.push(Op::Copy { body: self.compile_children(node)? });
            }
            "copy-of" => {
                ops.push(Op::CopyOf(self.parse_select(node, "copy-of")?));
            }
            "message" => {
                ops.push(Op::Message { body: self.compile_children(node)? });
            }
            "number" | "apply-imports" | "fallback" => {
                return Err(XsltError::new(format!("unsupported instruction xsl:{local}")))
            }
            other => {
                return Err(XsltError::new(format!("unknown instruction xsl:{other}")))
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Op;

    const SHEET: &str = r#"<?xml version="1.0"?>
<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
  <xsl:template match="dept">
    <H1>HIGHLY PAID DEPT EMPLOYEES</H1>
    <xsl:apply-templates/>
  </xsl:template>
  <xsl:template match="dname">
    <H2>Department name: <xsl:value-of select="."/></H2>
  </xsl:template>
  <xsl:template match="employees">
    <table border="2">
      <xsl:apply-templates select="emp[sal > 2000]"/>
    </table>
  </xsl:template>
  <xsl:template match="text()">
    <xsl:value-of select="."/>
  </xsl:template>
</xsl:stylesheet>"#;

    #[test]
    fn compiles_paper_stylesheet() {
        let s = compile_str(SHEET).unwrap();
        assert_eq!(s.templates.len(), 4);
        assert_eq!(s.site_count, 2);
        let t0 = &s.templates[0];
        assert_eq!(t0.pattern.as_ref().unwrap().to_string(), "dept");
        assert_eq!(t0.body.len(), 2);
        assert!(matches!(t0.body[0], Op::LiteralElement { .. }));
        assert!(matches!(t0.body[1], Op::ApplyTemplates { select: None, .. }));
    }

    #[test]
    fn literal_element_attrs_are_avts() {
        let s = compile_str(SHEET).unwrap();
        match &s.templates[2].body[0] {
            Op::LiteralElement { name, attrs, body } => {
                assert_eq!(&*name.local, "table");
                assert_eq!(attrs.len(), 1);
                assert_eq!(attrs[0].1.as_constant().as_deref(), Some("2"));
                assert!(matches!(body[0], Op::ApplyTemplates { select: Some(_), .. }));
            }
            other => panic!("expected literal element, got {other:?}"),
        }
    }

    #[test]
    fn whitespace_between_instructions_is_stripped() {
        let s = compile_str(SHEET).unwrap();
        // Template for dname mixes literal text and value-of.
        match &s.templates[1].body[0] {
            Op::LiteralElement { body, .. } => {
                assert_eq!(body.len(), 2);
                assert!(matches!(&body[0], Op::Text(t) if t == "Department name: "));
                assert!(matches!(body[1], Op::ValueOf(_)));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn empty_stylesheet_compiles() {
        let s = compile_str(
            r#"<xsl:stylesheet version="1.0"
                 xmlns:xsl="http://www.w3.org/1999/XSL/Transform"/>"#,
        )
        .unwrap();
        assert!(s.templates.is_empty());
    }

    #[test]
    fn named_template_and_params() {
        let s = compile_str(
            r#"<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
              <xsl:template name="fmt">
                <xsl:param name="x" select="1"/>
                <xsl:value-of select="$x"/>
              </xsl:template>
              <xsl:template match="/">
                <xsl:call-template name="fmt">
                  <xsl:with-param name="x" select="2"/>
                </xsl:call-template>
              </xsl:template>
            </xsl:stylesheet>"#,
        )
        .unwrap();
        assert!(s.named_template("fmt").is_some());
        let t = s.template(s.named_template("fmt").unwrap());
        assert_eq!(t.params.len(), 1);
    }

    #[test]
    fn choose_structure() {
        let s = compile_str(
            r#"<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
              <xsl:template match="/">
                <xsl:choose>
                  <xsl:when test="1 = 1">a</xsl:when>
                  <xsl:when test="2 = 2">b</xsl:when>
                  <xsl:otherwise>c</xsl:otherwise>
                </xsl:choose>
              </xsl:template>
            </xsl:stylesheet>"#,
        )
        .unwrap();
        match &s.templates[0].body[0] {
            Op::Choose { whens, otherwise } => {
                assert_eq!(whens.len(), 2);
                assert_eq!(otherwise.len(), 1);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn rejects_unknown_instruction() {
        let r = compile_str(
            r#"<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
              <xsl:template match="/"><xsl:frobnicate/></xsl:template>
            </xsl:stylesheet>"#,
        );
        assert!(r.is_err());
    }

    #[test]
    fn rejects_import() {
        let r = compile_str(
            r#"<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
              <xsl:import href="x.xsl"/>
            </xsl:stylesheet>"#,
        );
        assert!(r.is_err());
    }

    #[test]
    fn template_without_match_or_name_rejected() {
        let r = compile_str(
            r#"<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
              <xsl:template>x</xsl:template>
            </xsl:stylesheet>"#,
        );
        assert!(r.is_err());
    }

    #[test]
    fn explicit_priority_parsed() {
        let s = compile_str(
            r#"<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
              <xsl:template match="a" priority="3.5">x</xsl:template>
            </xsl:stylesheet>"#,
        )
        .unwrap();
        assert_eq!(s.templates[0].priority, 3.5);
    }

    #[test]
    fn xsl_text_preserves_whitespace() {
        let s = compile_str(
            r#"<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
              <xsl:template match="/"><xsl:text>  </xsl:text></xsl:template>
            </xsl:stylesheet>"#,
        )
        .unwrap();
        assert!(matches!(&s.templates[0].body[0], Op::Text(t) if t == "  "));
    }

    #[test]
    fn output_method_parsed() {
        let s = compile_str(
            r#"<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
              <xsl:output method="html"/>
            </xsl:stylesheet>"#,
        )
        .unwrap();
        assert_eq!(s.output, OutputMethod::Html);
    }
}
