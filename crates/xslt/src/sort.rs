//! `<xsl:sort>` evaluation.

use crate::ast::SortKey;
use crate::error::XsltError;
use std::cmp::Ordering;
use xsltdb_xml::NodeId;

/// One evaluated sort key value.
#[derive(Debug, Clone)]
enum KeyVal {
    Num(f64),
    Str(String),
}

impl KeyVal {
    fn cmp_key(&self, other: &KeyVal) -> Ordering {
        match (self, other) {
            (KeyVal::Num(a), KeyVal::Num(b)) => {
                // NaN sorts first, as an "unordered" value.
                match (a.is_nan(), b.is_nan()) {
                    (true, true) => Ordering::Equal,
                    (true, false) => Ordering::Less,
                    (false, true) => Ordering::Greater,
                    (false, false) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
                }
            }
            (KeyVal::Str(a), KeyVal::Str(b)) => a.cmp(b),
            _ => Ordering::Equal,
        }
    }
}

/// Sort `nodes` by `keys`, where `eval_key` evaluates one key expression in
/// the context of one node (position/size per the pre-sort order).
pub fn sort_nodes(
    nodes: &mut Vec<NodeId>,
    keys: &[SortKey],
    mut eval_key: impl FnMut(&SortKey, NodeId, usize, usize) -> Result<String, XsltError>,
) -> Result<(), XsltError> {
    if keys.is_empty() {
        return Ok(());
    }
    let size = nodes.len();
    let mut decorated: Vec<(Vec<KeyVal>, NodeId)> = Vec::with_capacity(nodes.len());
    for (i, &n) in nodes.iter().enumerate() {
        let mut kvs = Vec::with_capacity(keys.len());
        for k in keys {
            let s = eval_key(k, n, i + 1, size)?;
            kvs.push(if k.data_type_number {
                KeyVal::Num(xsltdb_xpath::value::str_to_num(&s))
            } else {
                KeyVal::Str(s)
            });
        }
        kvs.shrink_to_fit();
        decorated.push((kvs, n));
    }
    decorated.sort_by(|(ka, _), (kb, _)| {
        for (i, k) in keys.iter().enumerate() {
            let mut ord = ka[i].cmp_key(&kb[i]);
            if k.descending {
                ord = ord.reverse();
            }
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal // stable sort preserves document order for ties
    });
    *nodes = decorated.into_iter().map(|(_, n)| n).collect();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsltdb_xpath::parse_expr;

    fn key(numeric: bool, descending: bool) -> SortKey {
        SortKey {
            select: parse_expr(".").unwrap(),
            data_type_number: numeric,
            descending,
        }
    }

    #[test]
    fn text_ascending() {
        let mut nodes = vec![NodeId(1), NodeId(2), NodeId(3)];
        let names = ["banana", "apple", "cherry"];
        sort_nodes(&mut nodes, &[key(false, false)], |_, n, _, _| {
            Ok(names[n.0 as usize - 1].to_string())
        })
        .unwrap();
        assert_eq!(nodes, vec![NodeId(2), NodeId(1), NodeId(3)]);
    }

    #[test]
    fn numeric_descending() {
        let mut nodes = vec![NodeId(1), NodeId(2), NodeId(3)];
        let vals = ["10", "9", "100"];
        sort_nodes(&mut nodes, &[key(true, true)], |_, n, _, _| {
            Ok(vals[n.0 as usize - 1].to_string())
        })
        .unwrap();
        assert_eq!(nodes, vec![NodeId(3), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn numeric_vs_text_ordering_differs() {
        let mut a = vec![NodeId(1), NodeId(2)];
        let vals = ["10", "9"];
        sort_nodes(&mut a, &[key(false, false)], |_, n, _, _| {
            Ok(vals[n.0 as usize - 1].to_string())
        })
        .unwrap();
        // Text order: "10" < "9".
        assert_eq!(a, vec![NodeId(1), NodeId(2)]);
        let mut b = vec![NodeId(1), NodeId(2)];
        sort_nodes(&mut b, &[key(true, false)], |_, n, _, _| {
            Ok(vals[n.0 as usize - 1].to_string())
        })
        .unwrap();
        assert_eq!(b, vec![NodeId(2), NodeId(1)]);
    }

    #[test]
    fn multiple_keys_with_tie() {
        let mut nodes = vec![NodeId(1), NodeId(2), NodeId(3)];
        let primary = ["a", "a", "b"];
        let secondary = ["2", "1", "0"];
        let keys = [key(false, false), key(true, false)];
        sort_nodes(&mut nodes, &keys, |k, n, _, _| {
            let i = n.0 as usize - 1;
            Ok(if k.data_type_number { secondary[i] } else { primary[i] }.to_string())
        })
        .unwrap();
        assert_eq!(nodes, vec![NodeId(2), NodeId(1), NodeId(3)]);
    }

    #[test]
    fn nan_sorts_first() {
        let mut nodes = vec![NodeId(1), NodeId(2)];
        let vals = ["5", "oops"];
        sort_nodes(&mut nodes, &[key(true, false)], |_, n, _, _| {
            Ok(vals[n.0 as usize - 1].to_string())
        })
        .unwrap();
        assert_eq!(nodes, vec![NodeId(2), NodeId(1)]);
    }

    #[test]
    fn empty_keys_is_noop() {
        let mut nodes = vec![NodeId(3), NodeId(1)];
        sort_nodes(&mut nodes, &[], |_, _, _, _| unreachable!()).unwrap();
        assert_eq!(nodes, vec![NodeId(3), NodeId(1)]);
    }
}
