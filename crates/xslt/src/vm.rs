//! The XSLTVM: executes a compiled [`Stylesheet`] over an input document.
//!
//! This engine serves two roles from the paper:
//!
//! * the **no-rewrite baseline** — the functional evaluation of
//!   `XMLTransform()` that materialises the input XML as a DOM and runs the
//!   template interpreter over it (§1, §5);
//! * the **partial-evaluation tracer** (§4.3) — run over an annotated sample
//!   document with [`TransformOptions::assume_predicates`] set and a
//!   [`TraceSink`] attached, it reports which templates each
//!   `<xsl:apply-templates>` site instantiates.

// Guard-bearing hot path: a stray unwrap here is a latent panic the
// pipeline would have to contain at a tier boundary. Keep it impossible.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use crate::ast::{Op, SortKey, Stylesheet, Template, TemplateId, VarValueSource, WithParam};
use crate::avt::{Avt, AvtPart};
use crate::error::XsltError;
use crate::sort::sort_nodes;
use crate::trace::{TraceSink, Via, BUILTIN_SITE};
use std::rc::Rc;
use xsltdb_xml::{DocRc, Document, Guard, GuardExceeded, NodeId, NodeKind, QName, TreeBuilder};
use xsltdb_xpath::eval::{Ctx, Env, VarResolver};
use xsltdb_xpath::{evaluate, Expr, Value};

/// Execution options.
#[derive(Debug, Clone)]
pub struct TransformOptions {
    /// Partial-evaluation mode: value predicates in patterns and selects are
    /// assumed true; both branches of conditionals execute (so the trace
    /// covers every potentially instantiated template).
    pub assume_predicates: bool,
    /// Recursion limit (template call depth). The default is conservative
    /// because each template level costs several interpreter stack frames;
    /// raise it (on a thread with a larger stack) for deeply recursive
    /// stylesheets.
    pub max_depth: usize,
    /// Resource budgets (fuel, depth, output size, deadline) charged while
    /// executing; unlimited by default. Shared with the XPath evaluator for
    /// every expression this transform evaluates.
    pub guard: Guard,
}

impl Default for TransformOptions {
    fn default() -> Self {
        TransformOptions {
            assume_predicates: false,
            max_depth: 128,
            guard: Guard::unlimited(),
        }
    }
}

/// Surface a guard trip as this engine's native error type; the structured
/// [`GuardExceeded`] stays recorded on the guard for the pipeline to read.
fn guard_err(e: GuardExceeded) -> XsltError {
    XsltError::new(e.to_string())
}

/// A value bound to an XSLT variable or parameter.
#[derive(Debug, Clone)]
pub enum XsltValue {
    XPath(Value),
    /// A result-tree fragment built from a variable body.
    Fragment(DocRc),
}

impl XsltValue {
    fn as_xpath_value(&self) -> Value {
        match self {
            XsltValue::XPath(v) => v.clone(),
            XsltValue::Fragment(f) => {
                Value::Str(f.string_value(NodeId::DOCUMENT))
            }
        }
    }
}

/// Lexically scoped variable bindings. Template invocations push a barrier:
/// resolution inside a template sees the template's own frames plus the
/// globals, never the caller's locals.
#[derive(Default)]
struct VarScopes {
    frames: Vec<Frame>,
}

struct Frame {
    barrier: bool,
    vars: Vec<(String, XsltValue)>,
}

impl VarScopes {
    fn push(&mut self, barrier: bool) {
        self.frames.push(Frame { barrier, vars: Vec::new() });
    }

    fn pop(&mut self) {
        self.frames.pop();
    }

    fn bind(&mut self, name: String, value: XsltValue) {
        self.frames
            .last_mut()
            .expect("a frame is always open during execution")
            .vars
            .push((name, value));
    }

    fn get(&self, name: &str) -> Option<&XsltValue> {
        for (i, f) in self.frames.iter().enumerate().rev() {
            if let Some((_, v)) = f.vars.iter().rev().find(|(n, _)| n == name) {
                return Some(v);
            }
            if f.barrier && i > 0 {
                // Jump to the globals frame (index 0).
                let globals = &self.frames[0];
                return globals
                    .vars
                    .iter()
                    .rev()
                    .find(|(n, _)| n == name)
                    .map(|(_, v)| v);
            }
        }
        None
    }
}

impl VarResolver for VarScopes {
    fn resolve(&self, name: &str) -> Option<Value> {
        self.get(name).map(|v| v.as_xpath_value())
    }
}

/// Where output currently goes: the result tree / a fragment under
/// construction, or a text capture for attribute/comment/PI content.
enum Sink {
    Tree(TreeBuilder),
    Text(String),
}

/// Transform `doc` with a compiled stylesheet. Returns the result tree.
pub fn transform(sheet: &Stylesheet, doc: &Document) -> Result<Document, XsltError> {
    transform_with(sheet, doc, &TransformOptions::default(), &mut crate::trace::NoTrace)
}

/// Transform with explicit options and a trace sink.
pub fn transform_with(
    sheet: &Stylesheet,
    doc: &Document,
    opts: &TransformOptions,
    trace: &mut dyn TraceSink,
) -> Result<Document, XsltError> {
    match opts.guard.take_fault(xsltdb_xml::guard::FaultPoint::VmExec) {
        Some(xsltdb_xml::guard::FaultKind::Error) => {
            return Err(XsltError::new("injected fault at VM tier"));
        }
        Some(xsltdb_xml::guard::FaultKind::Panic) => {
            panic!("injected panic at VM tier");
        }
        None => {}
    }
    let mut engine = Engine {
        sheet,
        doc,
        opts,
        trace,
        vars: VarScopes::default(),
        sinks: vec![Sink::Tree(TreeBuilder::new())],
        depth: 0,
        messages: Vec::new(),
    };
    engine.vars.push(false); // globals frame
    for (name, src) in &sheet.global_vars {
        let v = engine.eval_var_source(src, NodeId::DOCUMENT, 1, 1)?;
        engine.vars.bind(name.clone(), v);
    }
    engine.apply_to_nodes(vec![NodeId::DOCUMENT], None, &[], Via::Root)?;
    match engine.sinks.pop() {
        Some(Sink::Tree(b)) => Ok(b.finish_lenient()),
        _ => unreachable!("root sink is a tree"),
    }
}

/// Convenience: parse + compile + transform, serialize result.
pub fn transform_str(stylesheet: &str, input: &str) -> Result<String, XsltError> {
    let sheet = crate::parse::compile_str(stylesheet)?;
    let doc = xsltdb_xml::parse::parse(input)?;
    let out = transform(&sheet, &doc)?;
    Ok(xsltdb_xml::to_string(&out))
}

struct Engine<'a> {
    sheet: &'a Stylesheet,
    doc: &'a Document,
    opts: &'a TransformOptions,
    trace: &'a mut dyn TraceSink,
    vars: VarScopes,
    sinks: Vec<Sink>,
    depth: usize,
    messages: Vec<String>,
}

impl<'a> Engine<'a> {
    // ----- expression evaluation -----

    fn eval(&self, e: &Expr, node: NodeId, pos: usize, size: usize) -> Result<Value, XsltError> {
        let env = Env {
            vars: &self.vars,
            current: Some(node),
            assume_predicates: self.opts.assume_predicates,
            guard: self.opts.guard.clone(),
        };
        let ctx = Ctx { doc: self.doc, node, position: pos, size, env: &env };
        evaluate(e, &ctx).map_err(Into::into)
    }

    fn eval_string(&self, e: &Expr, node: NodeId, pos: usize, size: usize) -> Result<String, XsltError> {
        Ok(self.eval(e, node, pos, size)?.string(self.doc))
    }

    fn eval_avt(&self, avt: &Avt, node: NodeId, pos: usize, size: usize) -> Result<String, XsltError> {
        let mut out = String::new();
        for part in &avt.0 {
            match part {
                AvtPart::Text(t) => out.push_str(t),
                AvtPart::Expr(e) => out.push_str(&self.eval_string(e, node, pos, size)?),
            }
        }
        Ok(out)
    }

    fn eval_var_source(
        &mut self,
        src: &VarValueSource,
        node: NodeId,
        pos: usize,
        size: usize,
    ) -> Result<XsltValue, XsltError> {
        match src {
            VarValueSource::Select(e) => Ok(XsltValue::XPath(self.eval(e, node, pos, size)?)),
            VarValueSource::Empty => Ok(XsltValue::XPath(Value::Str(String::new()))),
            VarValueSource::Body(body) => {
                self.sinks.push(Sink::Tree(TreeBuilder::new()));
                self.exec_block(body, node, pos, size)?;
                match self.sinks.pop() {
                    Some(Sink::Tree(b)) => {
                        Ok(XsltValue::Fragment(Rc::new(b.finish_lenient())))
                    }
                    _ => unreachable!("pushed a tree sink above"),
                }
            }
        }
    }

    // ----- output -----

    fn out_text(&mut self, s: &str) -> Result<(), XsltError> {
        self.opts
            .guard
            .charge_output_bytes(s.len() as u64)
            .map_err(guard_err)?;
        match self.sinks.last_mut().expect("a sink is always open") {
            Sink::Tree(b) => b.text(s),
            Sink::Text(t) => t.push_str(s),
        }
        Ok(())
    }

    /// Account one result-tree node against the guard's output budget.
    fn note_node(&self) -> Result<(), XsltError> {
        self.opts.guard.charge_output_nodes(1).map_err(guard_err)
    }

    fn tree_sink(&mut self, what: &str) -> Result<&mut TreeBuilder, XsltError> {
        match self.sinks.last_mut().expect("a sink is always open") {
            Sink::Tree(b) => Ok(b),
            Sink::Text(_) => Err(XsltError::new(format!(
                "cannot create {what} inside attribute/comment/PI content"
            ))),
        }
    }

    fn capture_text(
        &mut self,
        body: &[Op],
        node: NodeId,
        pos: usize,
        size: usize,
    ) -> Result<String, XsltError> {
        self.sinks.push(Sink::Text(String::new()));
        let r = self.exec_block(body, node, pos, size);
        let captured = match self.sinks.pop() {
            Some(Sink::Text(t)) => t,
            _ => unreachable!("pushed a text sink above"),
        };
        r?;
        Ok(captured)
    }

    // ----- template dispatch -----

    fn select_template(&self, node: NodeId, mode: Option<&str>) -> Option<TemplateId> {
        let env = Env {
            vars: &self.vars,
            current: Some(node),
            assume_predicates: self.opts.assume_predicates,
            guard: self.opts.guard.clone(),
        };
        let mut best: Option<(f64, TemplateId)> = None;
        for (tid, t) in self.sheet.match_templates() {
            if t.mode.as_deref() != mode {
                continue;
            }
            let pattern = t.pattern.as_ref().expect("match_templates filters");
            if !pattern.matches(self.doc, node, &env) {
                continue;
            }
            // Highest priority wins; later templates beat earlier on ties.
            match best {
                Some((p, _)) if p > t.priority => {}
                _ => best = Some((t.priority, tid)),
            }
        }
        best.map(|(_, tid)| tid)
    }

    fn apply_to_nodes(
        &mut self,
        nodes: Vec<NodeId>,
        mode: Option<&str>,
        params: &[(String, XsltValue)],
        via: Via,
    ) -> Result<(), XsltError> {
        let size = nodes.len();
        for (i, n) in nodes.into_iter().enumerate() {
            if self.opts.assume_predicates {
                // Partial-evaluation mode: every candidate down to the first
                // unconditional one may fire at run time (the predicates are
                // residual), so instantiate them all to trace them all
                // (paper Tables 18/19).
                let candidates =
                    candidate_templates(self.sheet, self.doc, n, mode, &self.vars, true);
                if candidates.is_empty() {
                    self.trace.enter_template(None, n, via);
                    let r = self.builtin_rule(n, mode, i + 1, size);
                    self.trace.leave_template();
                    r?;
                    continue;
                }
                let needs_builtin_fallback = {
                    let last = *candidates.last().expect("non-empty");
                    template_is_conditional(self.sheet.template(last))
                };
                for tid in &candidates {
                    self.trace.enter_template(Some(*tid), n, via);
                    let r = self.instantiate(*tid, n, i + 1, size, params);
                    self.trace.leave_template();
                    r?;
                }
                if needs_builtin_fallback {
                    self.trace.enter_template(None, n, via);
                    let r = self.builtin_rule(n, mode, i + 1, size);
                    self.trace.leave_template();
                    r?;
                }
                continue;
            }
            match self.select_template(n, mode) {
                Some(tid) => {
                    self.trace.enter_template(Some(tid), n, via);
                    let r = self.instantiate(tid, n, i + 1, size, params);
                    self.trace.leave_template();
                    r?;
                }
                None => {
                    self.trace.enter_template(None, n, via);
                    let r = self.builtin_rule(n, mode, i + 1, size);
                    self.trace.leave_template();
                    r?;
                }
            }
        }
        Ok(())
    }

    /// The XSLT built-in template rules.
    fn builtin_rule(
        &mut self,
        node: NodeId,
        mode: Option<&str>,
        _pos: usize,
        _size: usize,
    ) -> Result<(), XsltError> {
        match self.doc.kind(node) {
            NodeKind::Document | NodeKind::Element { .. } => {
                let children: Vec<NodeId> = self.doc.children(node).collect();
                self.apply_to_nodes(children, mode, &[], Via::Apply(BUILTIN_SITE))
            }
            NodeKind::Text(t) => {
                let t = t.clone();
                self.out_text(&t)?;
                Ok(())
            }
            NodeKind::Attribute { value, .. } => {
                let v = value.clone();
                self.out_text(&v)?;
                Ok(())
            }
            NodeKind::Comment(_) | NodeKind::Pi { .. } => Ok(()),
        }
    }

    fn instantiate(
        &mut self,
        tid: TemplateId,
        node: NodeId,
        pos: usize,
        size: usize,
        params: &[(String, XsltValue)],
    ) -> Result<(), XsltError> {
        self.depth += 1;
        if self.depth > self.opts.max_depth {
            self.depth -= 1;
            return Err(XsltError::new(format!(
                "template recursion deeper than {} (infinite recursion?)",
                self.opts.max_depth
            )));
        }
        // The shared guard enforces the cross-tier ceiling too (it can be
        // stricter than the per-transform `max_depth`).
        if let Err(e) = self.opts.guard.enter() {
            self.depth -= 1;
            return Err(guard_err(e));
        }
        let template: &Template = self.sheet.template(tid);
        // Evaluate declared-param defaults before pushing the barrier, so
        // defaults see the caller's context node but not its locals; in
        // practice defaults are simple selects.
        self.vars.push(true);
        for (pname, default) in &template.params {
            let value = match params.iter().find(|(n, _)| n == pname) {
                Some((_, v)) => v.clone(),
                None => self.eval_var_source(default, node, pos, size)?,
            };
            self.vars.bind(pname.clone(), value);
        }
        let body = &template.body;
        let r = self.exec_block(body, node, pos, size);
        self.vars.pop();
        self.depth -= 1;
        self.opts.guard.leave();
        r
    }

    // ----- instruction execution -----

    /// Execute a body in a fresh variable scope.
    fn exec_block(
        &mut self,
        ops: &[Op],
        node: NodeId,
        pos: usize,
        size: usize,
    ) -> Result<(), XsltError> {
        self.vars.push(false);
        let r = self.exec_ops(ops, node, pos, size);
        self.vars.pop();
        r
    }

    fn exec_ops(
        &mut self,
        ops: &[Op],
        node: NodeId,
        pos: usize,
        size: usize,
    ) -> Result<(), XsltError> {
        for op in ops {
            self.exec_op(op, node, pos, size)?;
        }
        Ok(())
    }

    fn exec_op(&mut self, op: &Op, node: NodeId, pos: usize, size: usize) -> Result<(), XsltError> {
        self.opts.guard.charge(1).map_err(guard_err)?;
        match op {
            Op::Text(t) => self.out_text(t)?,
            Op::ValueOf(e) => {
                let s = self.eval_string(e, node, pos, size)?;
                self.out_text(&s)?;
            }
            Op::LiteralElement { name, attrs, body } => {
                self.note_node()?;
                self.tree_sink("an element")?.start_element(name.clone());
                for (aname, avt) in attrs {
                    let v = self.eval_avt(avt, node, pos, size)?;
                    self.tree_sink("an attribute")?
                        .try_attribute(aname.clone(), v)
                        .map_err(XsltError::new)?;
                }
                self.exec_block(body, node, pos, size)?;
                self.tree_sink("an element")?.end_element();
            }
            Op::Element { name, body } => {
                let lexical = self.eval_avt(name, node, pos, size)?;
                let (prefix, local) = QName::split(&lexical);
                let qname = QName {
                    prefix: prefix.map(Into::into),
                    local: local.into(),
                    ns_uri: None,
                };
                self.note_node()?;
                self.tree_sink("an element")?.start_element(qname);
                self.exec_block(body, node, pos, size)?;
                self.tree_sink("an element")?.end_element();
            }
            Op::Attribute { name, body } => {
                let lexical = self.eval_avt(name, node, pos, size)?;
                let value = self.capture_text(body, node, pos, size)?;
                let (prefix, local) = QName::split(&lexical);
                let qname = QName {
                    prefix: prefix.map(Into::into),
                    local: local.into(),
                    ns_uri: None,
                };
                self.tree_sink("an attribute")?
                    .try_attribute(qname, value)
                    .map_err(XsltError::new)?;
            }
            Op::Comment { body } => {
                let text = self.capture_text(body, node, pos, size)?;
                self.tree_sink("a comment")?.comment(text);
            }
            Op::Pi { name, body } => {
                let target = self.eval_avt(name, node, pos, size)?;
                let data = self.capture_text(body, node, pos, size)?;
                self.tree_sink("a processing instruction")?.pi(target, data);
            }
            Op::If { test, body } => {
                let take = self.opts.assume_predicates
                    || self.eval(test, node, pos, size)?.boolean();
                if take {
                    self.exec_block(body, node, pos, size)?;
                }
            }
            Op::Choose { whens, otherwise } => {
                if self.opts.assume_predicates {
                    // PE mode: run every branch so the trace covers all
                    // potentially instantiated templates.
                    for (_, b) in whens {
                        self.exec_block(b, node, pos, size)?;
                    }
                    self.exec_block(otherwise, node, pos, size)?;
                } else {
                    let mut taken = false;
                    for (test, b) in whens {
                        if self.eval(test, node, pos, size)?.boolean() {
                            self.exec_block(b, node, pos, size)?;
                            taken = true;
                            break;
                        }
                    }
                    if !taken {
                        self.exec_block(otherwise, node, pos, size)?;
                    }
                }
            }
            Op::Variable { name, value } => {
                let v = self.eval_var_source(value, node, pos, size)?;
                self.vars.bind(name.clone(), v);
            }
            Op::ForEach { select, sorts, body } => {
                let mut nodes = self.nodeset(select, node, pos, size)?;
                self.sort(&mut nodes, sorts)?;
                let len = nodes.len();
                for (i, n) in nodes.into_iter().enumerate() {
                    self.exec_block(body, n, i + 1, len)?;
                }
            }
            Op::ApplyTemplates { site, select, mode, sorts, with_params } => {
                let mut nodes = match select {
                    Some(e) => self.nodeset(e, node, pos, size)?,
                    None => self.doc.children(node).collect(),
                };
                self.sort(&mut nodes, sorts)?;
                let params = self.eval_with_params(with_params, node, pos, size)?;
                self.apply_to_nodes(nodes, mode.as_deref(), &params, Via::Apply(*site))?;
            }
            Op::CallTemplate { site, name, with_params } => {
                let tid = self.sheet.named_template(name).ok_or_else(|| {
                    XsltError::new(format!("no template named `{name}`"))
                })?;
                let params = self.eval_with_params(with_params, node, pos, size)?;
                self.trace.enter_template(Some(tid), node, Via::Call(*site));
                let r = self.instantiate(tid, node, pos, size, &params);
                self.trace.leave_template();
                r?;
            }
            Op::Copy { body } => match self.doc.kind(node).clone() {
                NodeKind::Document => self.exec_block(body, node, pos, size)?,
                NodeKind::Element { name, .. } => {
                    self.note_node()?;
                    self.tree_sink("an element")?.start_element(name);
                    self.exec_block(body, node, pos, size)?;
                    self.tree_sink("an element")?.end_element();
                }
                NodeKind::Attribute { name, value } => {
                    self.tree_sink("an attribute")?
                        .try_attribute(name, value)
                        .map_err(XsltError::new)?;
                }
                NodeKind::Text(t) => self.out_text(&t)?,
                NodeKind::Comment(t) => self.tree_sink("a comment")?.comment(t),
                NodeKind::Pi { target, data } => {
                    self.tree_sink("a processing instruction")?.pi(target, data)
                }
            },
            Op::CopyOf(e) => self.exec_copy_of(e, node, pos, size)?,
            Op::Message { body } => {
                let text = self.capture_text(body, node, pos, size)?;
                self.messages.push(text);
            }
        }
        Ok(())
    }

    fn exec_copy_of(
        &mut self,
        e: &Expr,
        node: NodeId,
        pos: usize,
        size: usize,
    ) -> Result<(), XsltError> {
        // `copy-of select="$frag"` copies the fragment tree.
        if let Expr::Var(name) = e {
            if let Some(XsltValue::Fragment(frag)) = self.vars.get(name) {
                let frag = Rc::clone(frag);
                match self.sinks.last_mut().expect("a sink is always open") {
                    Sink::Tree(b) => b.copy_subtree(&frag, NodeId::DOCUMENT),
                    Sink::Text(t) => t.push_str(&frag.string_value(NodeId::DOCUMENT)),
                }
                return Ok(());
            }
        }
        match self.eval(e, node, pos, size)? {
            Value::NodeSet(ns) => {
                for n in ns {
                    match self.sinks.last_mut().expect("a sink is always open") {
                        Sink::Tree(b) => b.copy_subtree(self.doc, n),
                        Sink::Text(t) => t.push_str(&self.doc.string_value(n)),
                    }
                }
            }
            other => {
                let s = other.string(self.doc);
                self.out_text(&s)?;
            }
        }
        Ok(())
    }

    fn eval_with_params(
        &mut self,
        with_params: &[WithParam],
        node: NodeId,
        pos: usize,
        size: usize,
    ) -> Result<Vec<(String, XsltValue)>, XsltError> {
        let mut out = Vec::with_capacity(with_params.len());
        for wp in with_params {
            let v = self.eval_var_source(&wp.value, node, pos, size)?;
            out.push((wp.name.clone(), v));
        }
        Ok(out)
    }

    fn nodeset(
        &self,
        e: &Expr,
        node: NodeId,
        pos: usize,
        size: usize,
    ) -> Result<Vec<NodeId>, XsltError> {
        self.eval(e, node, pos, size)?
            .into_nodeset("select expression")
            .map_err(XsltError::new)
    }

    fn sort(&mut self, nodes: &mut Vec<NodeId>, sorts: &[SortKey]) -> Result<(), XsltError> {
        if sorts.is_empty() {
            return Ok(());
        }
        // Work around the borrow of `self` inside the closure: evaluate via
        // an immutable reference.
        let this: &Engine<'a> = self;
        let mut result: Result<(), XsltError> = Ok(());
        let mut nodes2 = std::mem::take(nodes);
        let r = sort_nodes(&mut nodes2, sorts, |k, n, p, s| {
            this.eval_string(&k.select, n, p, s)
        });
        if let Err(e) = r {
            result = Err(e);
        }
        *nodes = nodes2;
        result
    }

    #[allow(dead_code)]
    fn take_messages(&mut self) -> Vec<String> {
        std::mem::take(&mut self.messages)
    }
}


/// Does a template's match pattern carry predicates — i.e. can it fail at
/// run time even though the partial evaluator assumed it matched?
pub fn template_is_conditional(t: &Template) -> bool {
    t.pattern
        .as_ref()
        .is_some_and(|p| p.alternatives.iter().any(|a| {
            a.steps.iter().any(|s| !s.predicates.is_empty())
        }))
}

/// The candidate templates for `node` in priority order (best first).
///
/// With `assume_predicates`, pattern predicates are treated as residual:
/// the list contains every matching candidate down to and including the
/// first *unconditional* one — the chain the generated XQuery must test at
/// run time. Without it, only the winner is returned.
pub fn candidate_templates(
    sheet: &Stylesheet,
    doc: &Document,
    node: NodeId,
    mode: Option<&str>,
    vars: &dyn VarResolver,
    assume_predicates: bool,
) -> Vec<TemplateId> {
    let env = Env {
        vars,
        current: Some(node),
        assume_predicates,
        guard: Guard::unlimited(),
    };
    let mut matching: Vec<(f64, u32, TemplateId)> = sheet
        .match_templates()
        .filter(|(_, t)| t.mode.as_deref() == mode)
        .filter(|(_, t)| {
            t.pattern
                .as_ref()
                .expect("match_templates filters")
                .matches(doc, node, &env)
        })
        .map(|(tid, t)| (t.priority, tid.0, tid))
        .collect();
    // Best first: priority desc, then later-declared first.
    matching.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(b.1.cmp(&a.1))
    });
    if !assume_predicates {
        matching.truncate(1);
        return matching.into_iter().map(|(_, _, tid)| tid).collect();
    }
    let mut out = Vec::new();
    for (_, _, tid) in matching {
        let conditional = template_is_conditional(sheet.template(tid));
        out.push(tid);
        if !conditional {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(sheet: &str, input: &str) -> String {
        transform_str(sheet, input).unwrap()
    }

    fn wrap(body: &str) -> String {
        format!(
            r#"<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">{body}</xsl:stylesheet>"#
        )
    }

    #[test]
    fn identityish_value_of() {
        let sheet = wrap(r#"<xsl:template match="/"><out><xsl:value-of select="//b"/></out></xsl:template>"#);
        assert_eq!(run(&sheet, "<a><b>hi</b></a>"), "<out>hi</out>");
    }

    #[test]
    fn paper_example_1_structure() {
        let sheet = wrap(
            r#"
            <xsl:template match="dept">
              <H1>HIGHLY PAID DEPT EMPLOYEES</H1>
              <xsl:apply-templates/>
            </xsl:template>
            <xsl:template match="dname">
              <H2>Department name: <xsl:value-of select="."/></H2>
            </xsl:template>
            <xsl:template match="loc">
              <H2>Department location: <xsl:value-of select="."/></H2>
            </xsl:template>
            <xsl:template match="employees">
              <H2>Employees Table</H2>
              <table border="2">
                <td><b>EmpNo</b></td>
                <td><b>Name</b></td>
                <td><b>Weekly Salary</b></td>
                <xsl:apply-templates select="emp[sal &gt; 2000]"/>
              </table>
            </xsl:template>
            <xsl:template match="emp">
              <tr>
                <td><xsl:value-of select="empno"/></td>
                <td><xsl:value-of select="ename"/></td>
                <td><xsl:value-of select="sal"/></td>
              </tr>
            </xsl:template>
            <xsl:template match="text()"><xsl:value-of select="."/></xsl:template>
            "#,
        );
        let input = "<dept><dname>ACCOUNTING</dname><loc>NEW YORK</loc><employees>\
            <emp><empno>7782</empno><ename>CLARK</ename><sal>2450</sal></emp>\
            <emp><empno>7934</empno><ename>MILLER</ename><sal>1300</sal></emp>\
            </employees></dept>";
        let out = run(&sheet, input);
        assert!(out.contains("<H1>HIGHLY PAID DEPT EMPLOYEES</H1>"));
        assert!(out.contains("<H2>Department name: ACCOUNTING</H2>"));
        assert!(out.contains("<td>7782</td>"));
        assert!(!out.contains("7934"), "low-paid employee filtered out: {out}");
        assert!(out.contains(r#"<table border="2">"#));
    }

    #[test]
    fn builtin_templates_copy_text() {
        let sheet = wrap("");
        assert_eq!(run(&sheet, "<a><b>x</b><c>y</c></a>"), "xy");
    }

    #[test]
    fn for_each_with_sort() {
        let sheet = wrap(
            r#"<xsl:template match="/"><xsl:for-each select="//n">
                 <xsl:sort select="." data-type="number" order="descending"/>
                 <v><xsl:value-of select="."/></v>
               </xsl:for-each></xsl:template>"#,
        );
        assert_eq!(
            run(&sheet, "<r><n>5</n><n>100</n><n>9</n></r>"),
            "<v>100</v><v>9</v><v>5</v>"
        );
    }

    #[test]
    fn apply_templates_with_sort() {
        let sheet = wrap(
            r#"<xsl:template match="/"><xsl:apply-templates select="//n">
                 <xsl:sort select="."/>
               </xsl:apply-templates></xsl:template>
               <xsl:template match="n"><v><xsl:value-of select="."/></v></xsl:template>"#,
        );
        assert_eq!(run(&sheet, "<r><n>b</n><n>a</n></r>"), "<v>a</v><v>b</v>");
    }

    #[test]
    fn choose_branches() {
        let sheet = wrap(
            r#"<xsl:template match="n">
                 <xsl:choose>
                   <xsl:when test=". &gt; 10">big</xsl:when>
                   <xsl:when test=". &gt; 5">mid</xsl:when>
                   <xsl:otherwise>small</xsl:otherwise>
                 </xsl:choose>
               </xsl:template>
               <xsl:template match="text()"/>"#,
        );
        assert_eq!(run(&sheet, "<r><n>20</n><n>7</n><n>1</n></r>"), "bigmidsmall");
    }

    #[test]
    fn variables_and_params() {
        let sheet = wrap(
            r#"<xsl:template match="/">
                 <xsl:variable name="x" select="2 + 3"/>
                 <xsl:call-template name="show">
                   <xsl:with-param name="v" select="$x * 2"/>
                 </xsl:call-template>
               </xsl:template>
               <xsl:template name="show">
                 <xsl:param name="v" select="0"/>
                 <out><xsl:value-of select="$v"/></out>
               </xsl:template>"#,
        );
        assert_eq!(run(&sheet, "<r/>"), "<out>10</out>");
    }

    #[test]
    fn param_default_used_when_not_passed() {
        let sheet = wrap(
            r#"<xsl:template match="/">
                 <xsl:call-template name="show"/>
               </xsl:template>
               <xsl:template name="show">
                 <xsl:param name="v" select="41 + 1"/>
                 <out><xsl:value-of select="$v"/></out>
               </xsl:template>"#,
        );
        assert_eq!(run(&sheet, "<r/>"), "<out>42</out>");
    }

    #[test]
    fn variable_fragment_and_copy_of() {
        let sheet = wrap(
            r#"<xsl:template match="/">
                 <xsl:variable name="f"><x>1</x><y>2</y></xsl:variable>
                 <out><xsl:copy-of select="$f"/></out>
                 <s><xsl:value-of select="$f"/></s>
               </xsl:template>"#,
        );
        assert_eq!(run(&sheet, "<r/>"), "<out><x>1</x><y>2</y></out><s>12</s>");
    }

    #[test]
    fn attribute_value_templates() {
        let sheet = wrap(
            r#"<xsl:template match="item">
                 <row id="r-{@n}"><xsl:value-of select="."/></row>
               </xsl:template>
               <xsl:template match="text()"/>"#,
        );
        assert_eq!(
            run(&sheet, r#"<r><item n="1">a</item><item n="2">b</item></r>"#),
            r#"<row id="r-1">a</row><row id="r-2">b</row>"#
        );
    }

    #[test]
    fn xsl_element_and_attribute() {
        let sheet = wrap(
            r#"<xsl:template match="item">
                 <xsl:element name="{@kind}">
                   <xsl:attribute name="v"><xsl:value-of select="."/></xsl:attribute>
                 </xsl:element>
               </xsl:template>
               <xsl:template match="text()"/>"#,
        );
        assert_eq!(
            run(&sheet, r#"<r><item kind="alpha">x</item></r>"#),
            r#"<alpha v="x"/>"#
        );
    }

    #[test]
    fn copy_identity_transform() {
        let sheet = wrap(
            r#"<xsl:template match="@*|node()">
                 <xsl:copy><xsl:apply-templates select="@*|node()"/></xsl:copy>
               </xsl:template>"#,
        );
        let input = r#"<a k="1"><b>x</b><!--c--></a>"#;
        assert_eq!(run(&sheet, input), input);
    }

    #[test]
    fn mode_dispatch() {
        let sheet = wrap(
            r#"<xsl:template match="/">
                 <xsl:apply-templates select="//n"/>
                 <xsl:apply-templates select="//n" mode="loud"/>
               </xsl:template>
               <xsl:template match="n"><q><xsl:value-of select="."/></q></xsl:template>
               <xsl:template match="n" mode="loud"><Q><xsl:value-of select="."/></Q></xsl:template>"#,
        );
        assert_eq!(run(&sheet, "<r><n>x</n></r>"), "<q>x</q><Q>x</Q>");
    }

    #[test]
    fn priority_tiebreak_prefers_later() {
        let sheet = wrap(
            r#"<xsl:template match="n">first</xsl:template>
               <xsl:template match="n">second</xsl:template>
               <xsl:template match="text()"/>"#,
        );
        assert_eq!(run(&sheet, "<r><n>x</n></r>"), "second");
    }

    #[test]
    fn explicit_priority_wins() {
        let sheet = wrap(
            r#"<xsl:template match="n" priority="2">hi</xsl:template>
               <xsl:template match="n">lo</xsl:template>
               <xsl:template match="text()"/>"#,
        );
        assert_eq!(run(&sheet, "<r><n>x</n></r>"), "hi");
    }

    #[test]
    fn comment_and_pi_output() {
        let sheet = wrap(
            r#"<xsl:template match="/">
                 <xsl:comment>note</xsl:comment>
                 <xsl:processing-instruction name="target">data</xsl:processing-instruction>
               </xsl:template>"#,
        );
        assert_eq!(run(&sheet, "<r/>"), "<!--note--><?target data?>");
    }

    #[test]
    fn infinite_recursion_detected() {
        let sheet = wrap(
            r#"<xsl:template match="/"><xsl:call-template name="loop"/></xsl:template>
               <xsl:template name="loop"><xsl:call-template name="loop"/></xsl:template>"#,
        );
        let r = transform_str(&sheet, "<r/>");
        assert!(r.is_err());
        assert!(r.unwrap_err().0.contains("recursion"));
    }

    /// Run a stylesheet under an explicit guard, returning the engine error.
    fn run_guarded(sheet: &str, input: &str, guard: Guard) -> Result<Document, XsltError> {
        let sheet = crate::parse::compile_str(sheet).unwrap();
        let doc = xsltdb_xml::parse::parse(input).unwrap();
        let opts = TransformOptions { guard, ..Default::default() };
        transform_with(&sheet, &doc, &opts, &mut crate::trace::NoTrace)
    }

    #[test]
    fn guard_depth_trips_before_engine_limit() {
        use xsltdb_xml::guard::{Limits, Resource};
        let sheet = wrap(
            r#"<xsl:template match="/"><xsl:call-template name="loop"/></xsl:template>
               <xsl:template name="loop"><xsl:call-template name="loop"/></xsl:template>"#,
        );
        let guard = Guard::new(Limits::UNLIMITED.with_max_depth(8));
        let err = run_guarded(&sheet, "<r/>", guard.clone()).unwrap_err();
        assert!(err.0.contains("recursion depth"), "{err}");
        let trip = guard.trip().expect("structured trip recorded");
        assert_eq!(trip.resource, Resource::Depth);
        assert_eq!(trip.limit, 8);
    }

    #[test]
    fn guard_fuel_trips_infinite_recursion() {
        use xsltdb_xml::guard::{Limits, Resource};
        // Depth unlimited on the guard: fuel must still stop the loop.
        let sheet = wrap(
            r#"<xsl:template match="/"><xsl:call-template name="loop"/></xsl:template>
               <xsl:template name="loop"><xsl:text>x</xsl:text><xsl:call-template name="loop"/></xsl:template>"#,
        );
        let guard = Guard::new(Limits::UNLIMITED.with_fuel(50).with_max_depth(u64::MAX));
        // Engine max_depth would also fire at 128; give fuel the smaller
        // budget so it demonstrably trips first.
        let err = run_guarded(&sheet, "<r/>", guard.clone()).unwrap_err();
        assert!(err.0.contains("fuel"), "{err}");
        assert_eq!(guard.trip().unwrap().resource, Resource::Fuel);
    }

    #[test]
    fn guard_output_bytes_cap_trips() {
        use xsltdb_xml::guard::{Limits, Resource};
        let sheet = wrap(
            r#"<xsl:template match="/"><xsl:for-each select="//v"><xsl:value-of select="."/></xsl:for-each></xsl:template>"#,
        );
        let input = "<r><v>0123456789</v><v>0123456789</v><v>0123456789</v></r>";
        let guard = Guard::new(Limits::UNLIMITED.with_max_output_bytes(15));
        let err = run_guarded(&sheet, input, guard.clone()).unwrap_err();
        assert!(err.0.contains("output bytes"), "{err}");
        assert_eq!(guard.trip().unwrap().resource, Resource::OutputBytes);
    }

    #[test]
    fn guard_output_nodes_cap_trips() {
        use xsltdb_xml::guard::{Limits, Resource};
        let sheet = wrap(
            r#"<xsl:template match="/"><out><xsl:for-each select="//v"><e/></xsl:for-each></out></xsl:template>"#,
        );
        let input = "<r><v/><v/><v/><v/><v/></r>";
        let guard = Guard::new(Limits::UNLIMITED.with_max_output_nodes(3));
        let err = run_guarded(&sheet, input, guard.clone()).unwrap_err();
        assert!(err.0.contains("output nodes"), "{err}");
        assert_eq!(guard.trip().unwrap().resource, Resource::OutputNodes);
    }

    #[test]
    fn guard_expired_deadline_trips() {
        use xsltdb_xml::guard::{Limits, Resource};
        let sheet = wrap(r#"<xsl:template match="/"><done/></xsl:template>"#);
        let guard = Guard::new(
            Limits::UNLIMITED.with_deadline(std::time::Duration::from_millis(1)),
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
        let err = run_guarded(&sheet, "<r/>", guard.clone()).unwrap_err();
        assert!(err.0.contains("deadline"), "{err}");
        assert_eq!(guard.trip().unwrap().resource, Resource::Deadline);
    }

    #[test]
    fn injected_vm_fault_errors_once() {
        use xsltdb_xml::guard::{FaultKind, FaultPoint};
        let sheet = wrap(r#"<xsl:template match="/"><done/></xsl:template>"#);
        let guard = Guard::unlimited().with_fault(FaultPoint::VmExec, FaultKind::Error);
        let err = run_guarded(&sheet, "<r/>", guard.clone()).unwrap_err();
        assert!(err.0.contains("injected fault"), "{err}");
        // One-shot: the retry succeeds.
        assert!(run_guarded(&sheet, "<r/>", guard).is_ok());
    }

    #[test]
    fn element_inside_attribute_errors() {
        let sheet = wrap(
            r#"<xsl:template match="/">
                 <e><xsl:attribute name="a"><x/></xsl:attribute></e>
               </xsl:template>"#,
        );
        assert!(transform_str(&sheet, "<r/>").is_err());
    }

    #[test]
    fn global_variables_visible_in_templates() {
        let sheet = wrap(
            r#"<xsl:variable name="g" select="'GG'"/>
               <xsl:template match="/"><o><xsl:value-of select="$g"/></o></xsl:template>"#,
        );
        assert_eq!(run(&sheet, "<r/>"), "<o>GG</o>");
    }

    #[test]
    fn caller_locals_invisible_in_called_template() {
        let sheet = wrap(
            r#"<xsl:template match="/">
                 <xsl:variable name="secret" select="'s'"/>
                 <xsl:call-template name="t"/>
               </xsl:template>
               <xsl:template name="t"><o><xsl:value-of select="$secret"/></o></xsl:template>"#,
        );
        assert!(transform_str(&sheet, "<r/>").is_err());
    }

    #[test]
    fn trace_records_instantiations() {
        use crate::trace::{RecordingTrace, TraceEvent};
        let sheet = crate::parse::compile_str(&wrap(
            r#"<xsl:template match="a"><xsl:apply-templates/></xsl:template>
               <xsl:template match="b">B</xsl:template>"#,
        ))
        .unwrap();
        let doc = xsltdb_xml::parse::parse("<a><b/></a>").unwrap();
        let mut trace = RecordingTrace::default();
        transform_with(&sheet, &doc, &TransformOptions::default(), &mut trace).unwrap();
        let enters = trace
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Enter { .. }))
            .count();
        // root (builtin), template a, template b.
        assert_eq!(enters, 3);
    }

    #[test]
    fn pe_mode_executes_all_branches() {
        let sheet = crate::parse::compile_str(&wrap(
            r#"<xsl:template match="n">
                 <xsl:choose>
                   <xsl:when test=". &gt; 10"><big/></xsl:when>
                   <xsl:otherwise><small/></xsl:otherwise>
                 </xsl:choose>
               </xsl:template>
               <xsl:template match="text()"/>"#,
        ))
        .unwrap();
        let doc = xsltdb_xml::parse::parse("<r><n>1</n></r>").unwrap();
        let opts = TransformOptions { assume_predicates: true, ..Default::default() };
        let out = transform_with(&sheet, &doc, &opts, &mut crate::trace::NoTrace).unwrap();
        let s = xsltdb_xml::to_string(&out);
        assert!(s.contains("<big/>") && s.contains("<small/>"));
    }

    #[test]
    fn position_and_last_in_templates() {
        let sheet = wrap(
            r#"<xsl:template match="n"><i p="{position()}" l="{last()}"/></xsl:template>
               <xsl:template match="text()"/>"#,
        );
        assert_eq!(
            run(&sheet, "<r><n/><n/></r>"),
            r#"<i p="1" l="2"/><i p="2" l="2"/>"#
        );
    }
}

/// Serialize a transformation result according to the stylesheet's
/// `<xsl:output method>`: `text` emits the string value (no markup),
/// `html`/`xml` emit markup (HTML differs only in not self-closing empty
/// elements, which our serializer never needs for the supported output).
pub fn serialize_result(sheet: &Stylesheet, result: &Document) -> String {
    match sheet.output {
        crate::ast::OutputMethod::Text => result.string_value(NodeId::DOCUMENT),
        crate::ast::OutputMethod::Xml | crate::ast::OutputMethod::Html => {
            xsltdb_xml::to_string(result)
        }
    }
}

#[cfg(test)]
mod output_tests {
    use super::*;

    #[test]
    fn text_method_emits_no_markup() {
        let sheet = crate::parse::compile_str(
            r#"<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
               <xsl:output method="text"/>
               <xsl:template match="r"><x>A&amp;B</x></xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        let doc = xsltdb_xml::parse::parse("<r/>").unwrap();
        let out = transform(&sheet, &doc).unwrap();
        assert_eq!(serialize_result(&sheet, &out), "A&B");
    }

    #[test]
    fn xml_method_escapes() {
        let sheet = crate::parse::compile_str(
            r#"<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
               <xsl:template match="r"><x>A&amp;B</x></xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        let doc = xsltdb_xml::parse::parse("<r/>").unwrap();
        let out = transform(&sheet, &doc).unwrap();
        assert_eq!(serialize_result(&sheet, &out), "<x>A&amp;B</x>");
    }
}
