//! # xsltdb-xslt
//!
//! An XSLT 1.0 processor (the "XSLTVM") over the `xsltdb-xml` /
//! `xsltdb-xpath` substrate. In the reproduced paper this engine plays two
//! roles:
//!
//! * **No-rewrite baseline**: the functional evaluation of
//!   `XMLTransform()` — materialise the input XML as a DOM and interpret the
//!   stylesheet over it (paper §1 and the "No-Rewrite" series of Figures
//!   2–3);
//! * **Partial-evaluation tracer** (paper §4.3): run over an annotated
//!   sample document with [`TransformOptions::assume_predicates`] and a
//!   [`trace::TraceSink`], it reports which templates every
//!   `<xsl:apply-templates>` site instantiates, feeding the template
//!   execution graph in the `xsltdb` core crate.
//!
//! Supported: template rules with match patterns, modes and priorities,
//! named templates with parameters, `apply-templates` / `call-template` /
//! `for-each` (with `xsl:sort`), `value-of`, `if` / `choose`, variables and
//! result-tree fragments, `copy` / `copy-of`, computed elements/attributes,
//! comments/PIs, attribute value templates, and the built-in template
//! rules. Not supported (rejected at compile time): `xsl:import/include`,
//! `xsl:key`, `xsl:number`, attribute sets.
//!
//! ```
//! let out = xsltdb_xslt::transform_str(
//!     r#"<xsl:stylesheet version="1.0"
//!          xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
//!          <xsl:template match="greeting"><p><xsl:value-of select="."/></p></xsl:template>
//!        </xsl:stylesheet>"#,
//!     "<greeting>hello</greeting>",
//! ).unwrap();
//! assert_eq!(out, "<p>hello</p>");
//! ```

pub mod ast;
pub mod avt;
pub mod error;
pub mod parse;
pub mod sort;
pub mod trace;
pub mod vm;

pub use ast::{Op, OutputMethod, SiteId, Stylesheet, Template, TemplateId, VarValueSource};
pub use avt::{Avt, AvtPart};
pub use error::XsltError;
pub use parse::{compile, compile_str};
pub use trace::{NoTrace, RecordingTrace, TraceSink, Via, BUILTIN_SITE};
pub use vm::{candidate_templates, serialize_result, template_is_conditional, transform, transform_str, transform_with, TransformOptions, XsltValue};
