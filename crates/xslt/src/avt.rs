//! Attribute value templates: `border="{1+1}"`.

use std::fmt;
use xsltdb_xpath::{parse_expr, Expr, XPathParseError};

/// One segment of an attribute value template.
#[derive(Debug, Clone, PartialEq)]
pub enum AvtPart {
    Text(String),
    Expr(Expr),
}

/// A parsed attribute value template.
#[derive(Debug, Clone, PartialEq)]
pub struct Avt(pub Vec<AvtPart>);

impl Avt {
    /// Parse an AVT string. `{{` and `}}` are literal braces.
    pub fn parse(input: &str) -> Result<Avt, XPathParseError> {
        let mut parts = Vec::new();
        let mut text = String::new();
        let mut chars = input.chars().peekable();
        while let Some(c) = chars.next() {
            match c {
                '{' if chars.peek() == Some(&'{') => {
                    chars.next();
                    text.push('{');
                }
                '}' if chars.peek() == Some(&'}') => {
                    chars.next();
                    text.push('}');
                }
                '{' => {
                    if !text.is_empty() {
                        parts.push(AvtPart::Text(std::mem::take(&mut text)));
                    }
                    let mut expr_src = String::new();
                    let mut closed = false;
                    // Braces cannot nest in XSLT 1.0 AVTs, but string
                    // literals inside the expression may contain `}`.
                    let mut quote: Option<char> = None;
                    for c2 in chars.by_ref() {
                        match quote {
                            Some(q) => {
                                expr_src.push(c2);
                                if c2 == q {
                                    quote = None;
                                }
                            }
                            None => match c2 {
                                '}' => {
                                    closed = true;
                                    break;
                                }
                                '\'' | '"' => {
                                    quote = Some(c2);
                                    expr_src.push(c2);
                                }
                                _ => expr_src.push(c2),
                            },
                        }
                    }
                    if !closed {
                        return Err(XPathParseError {
                            message: format!("unterminated `{{` in AVT `{input}`"),
                        });
                    }
                    parts.push(AvtPart::Expr(parse_expr(&expr_src)?));
                }
                '}' => {
                    return Err(XPathParseError {
                        message: format!("unmatched `}}` in AVT `{input}`"),
                    })
                }
                _ => text.push(c),
            }
        }
        if !text.is_empty() {
            parts.push(AvtPart::Text(text));
        }
        Ok(Avt(parts))
    }

    /// A constant AVT.
    pub fn literal(s: &str) -> Avt {
        if s.is_empty() {
            Avt(Vec::new())
        } else {
            Avt(vec![AvtPart::Text(s.to_string())])
        }
    }

    /// The constant string value, if the AVT has no expression parts.
    pub fn as_constant(&self) -> Option<String> {
        let mut out = String::new();
        for p in &self.0 {
            match p {
                AvtPart::Text(t) => out.push_str(t),
                AvtPart::Expr(_) => return None,
            }
        }
        Some(out)
    }
}

impl fmt::Display for Avt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in &self.0 {
            match p {
                AvtPart::Text(t) => {
                    write!(f, "{}", t.replace('{', "{{").replace('}', "}}"))?
                }
                AvtPart::Expr(e) => write!(f, "{{{e}}}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_text() {
        let a = Avt::parse("hello").unwrap();
        assert_eq!(a.as_constant().as_deref(), Some("hello"));
    }

    #[test]
    fn single_expr() {
        let a = Avt::parse("{1 + 1}").unwrap();
        assert_eq!(a.0.len(), 1);
        assert!(a.as_constant().is_none());
    }

    #[test]
    fn mixed() {
        let a = Avt::parse("emp-{@id}-x").unwrap();
        assert_eq!(a.0.len(), 3);
        assert!(matches!(&a.0[0], AvtPart::Text(t) if t == "emp-"));
        assert!(matches!(&a.0[2], AvtPart::Text(t) if t == "-x"));
    }

    #[test]
    fn escaped_braces() {
        let a = Avt::parse("a{{b}}c").unwrap();
        assert_eq!(a.as_constant().as_deref(), Some("a{b}c"));
    }

    #[test]
    fn brace_inside_string_literal() {
        let a = Avt::parse("{concat('}', name())}").unwrap();
        assert_eq!(a.0.len(), 1);
    }

    #[test]
    fn errors() {
        assert!(Avt::parse("{unclosed").is_err());
        assert!(Avt::parse("}stray").is_err());
        assert!(Avt::parse("{1 +}").is_err());
    }

    #[test]
    fn display_roundtrip() {
        for s in ["hello", "emp-{@id}", "a{{b}}"] {
            let a = Avt::parse(s).unwrap();
            let printed = a.to_string();
            assert_eq!(Avt::parse(&printed).unwrap(), a);
        }
    }
}
