//! Error type shared by stylesheet compilation and execution.

use std::fmt;

/// An XSLT compilation or runtime error.
#[derive(Debug, Clone, PartialEq)]
pub struct XsltError(pub String);

impl XsltError {
    pub fn new(msg: impl Into<String>) -> Self {
        XsltError(msg.into())
    }
}

impl fmt::Display for XsltError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XSLT error: {}", self.0)
    }
}

impl std::error::Error for XsltError {}

impl From<xsltdb_xpath::XPathParseError> for XsltError {
    fn from(e: xsltdb_xpath::XPathParseError) -> Self {
        XsltError(e.to_string())
    }
}

impl From<xsltdb_xpath::XPathError> for XsltError {
    fn from(e: xsltdb_xpath::XPathError) -> Self {
        XsltError(e.to_string())
    }
}

impl From<xsltdb_xml::ParseError> for XsltError {
    fn from(e: xsltdb_xml::ParseError) -> Self {
        XsltError(e.to_string())
    }
}
