//! Compiled stylesheet representation.
//!
//! Parsing (`crate::parse`) turns a stylesheet document into this compiled
//! form: XPath expressions and match patterns are parsed, attribute value
//! templates are split, and every `<xsl:apply-templates>` instruction gets a
//! unique [`SiteId`] — the hook on which the paper's partial evaluator
//! (§4.3) builds its trace table and template execution graph.

use crate::avt::Avt;
use xsltdb_xml::QName;
use xsltdb_xpath::{Expr, Pattern};

/// Identifies one `<xsl:apply-templates>` or `<xsl:call-template>` call site
/// within a stylesheet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteId(pub u32);

/// Index of a template in [`Stylesheet::templates`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TemplateId(pub u32);

/// A sort key from `<xsl:sort>`.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    pub select: Expr,
    pub data_type_number: bool,
    pub descending: bool,
}

/// An evaluated-at-call-time parameter binding (`<xsl:with-param>`).
#[derive(Debug, Clone, PartialEq)]
pub struct WithParam {
    pub name: String,
    pub value: VarValueSource,
}

/// Where a variable/param value comes from: a `select` expression or a
/// content body producing a result-tree fragment.
#[derive(Debug, Clone, PartialEq)]
pub enum VarValueSource {
    Select(Expr),
    Body(Vec<Op>),
    /// Neither select nor content: the empty string.
    Empty,
}

/// Compiled stylesheet operations — the instruction set of the XSLTVM.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// A literal result element with AVT attributes.
    LiteralElement { name: QName, attrs: Vec<(QName, Avt)>, body: Vec<Op> },
    /// Literal text (from text nodes and `<xsl:text>`).
    Text(String),
    /// `<xsl:value-of select>`.
    ValueOf(Expr),
    /// `<xsl:apply-templates>`; `select: None` means `child::node()`.
    ApplyTemplates {
        site: SiteId,
        select: Option<Expr>,
        mode: Option<String>,
        sorts: Vec<SortKey>,
        with_params: Vec<WithParam>,
    },
    /// `<xsl:call-template>`.
    CallTemplate { site: SiteId, name: String, with_params: Vec<WithParam> },
    /// `<xsl:for-each>`.
    ForEach { select: Expr, sorts: Vec<SortKey>, body: Vec<Op> },
    /// `<xsl:if>`.
    If { test: Expr, body: Vec<Op> },
    /// `<xsl:choose>`.
    Choose { whens: Vec<(Expr, Vec<Op>)>, otherwise: Vec<Op> },
    /// `<xsl:variable>`.
    Variable { name: String, value: VarValueSource },
    /// `<xsl:element>` (computed name).
    Element { name: Avt, body: Vec<Op> },
    /// `<xsl:attribute>` (computed name, content captured as text).
    Attribute { name: Avt, body: Vec<Op> },
    /// `<xsl:comment>`.
    Comment { body: Vec<Op> },
    /// `<xsl:processing-instruction>`.
    Pi { name: Avt, body: Vec<Op> },
    /// `<xsl:copy>` — shallow copy of the current node.
    Copy { body: Vec<Op> },
    /// `<xsl:copy-of select>` — deep copy.
    CopyOf(Expr),
    /// `<xsl:message>` — collected, not printed.
    Message { body: Vec<Op> },
}

/// A compiled template rule.
#[derive(Debug, Clone)]
pub struct Template {
    /// `match` pattern, absent for purely named templates.
    pub pattern: Option<Pattern>,
    /// `name` attribute for `<xsl:call-template>` dispatch.
    pub name: Option<String>,
    pub mode: Option<String>,
    /// Explicit `priority` or the pattern's default priority.
    pub priority: f64,
    /// Declared `<xsl:param>`s with their default values.
    pub params: Vec<(String, VarValueSource)>,
    pub body: Vec<Op>,
}

/// Output method requested by `<xsl:output>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputMethod {
    #[default]
    Xml,
    Html,
    Text,
}

/// A compiled stylesheet.
#[derive(Debug, Clone)]
pub struct Stylesheet {
    pub templates: Vec<Template>,
    pub output: OutputMethod,
    /// Total number of call sites allocated (`SiteId`s are `0..site_count`).
    pub site_count: u32,
    /// Top-level `<xsl:variable>`s, evaluated once with the document root as
    /// context before any template runs.
    pub global_vars: Vec<(String, VarValueSource)>,
}

impl Stylesheet {
    /// Templates with a `match` pattern, as `(id, template)` pairs.
    pub fn match_templates(&self) -> impl Iterator<Item = (TemplateId, &Template)> {
        self.templates
            .iter()
            .enumerate()
            .filter(|(_, t)| t.pattern.is_some())
            .map(|(i, t)| (TemplateId(i as u32), t))
    }

    /// Find a named template.
    pub fn named_template(&self, name: &str) -> Option<TemplateId> {
        self.templates
            .iter()
            .position(|t| t.name.as_deref() == Some(name))
            .map(|i| TemplateId(i as u32))
    }

    pub fn template(&self, id: TemplateId) -> &Template {
        &self.templates[id.0 as usize]
    }
}

/// Walk every `Op` in a body tree, depth-first.
pub fn walk_ops<'a>(body: &'a [Op], f: &mut impl FnMut(&'a Op)) {
    for op in body {
        f(op);
        match op {
            Op::LiteralElement { body, .. }
            | Op::ForEach { body, .. }
            | Op::If { body, .. }
            | Op::Element { body, .. }
            | Op::Attribute { body, .. }
            | Op::Comment { body }
            | Op::Pi { body, .. }
            | Op::Copy { body }
            | Op::Message { body } => walk_ops(body, f),
            Op::Choose { whens, otherwise } => {
                for (_, b) in whens {
                    walk_ops(b, f);
                }
                walk_ops(otherwise, f);
            }
            Op::Variable { value: VarValueSource::Body(b), .. } => walk_ops(b, f),
            _ => {}
        }
    }
}
