//! Trace instrumentation for the partial evaluator (paper §4.3).
//!
//! When the XSLTVM runs with a trace sink attached, it reports every
//! template instantiation together with the call site that caused it. The
//! partial evaluator in `xsltdb` (core) runs the VM over an annotated
//! *sample document* and turns this event stream into the trace table and
//! template execution graph from which the XQuery is generated.

use crate::ast::{SiteId, TemplateId};
use xsltdb_xml::NodeId;

/// The pseudo call site used for the implicit `apply-templates` performed
/// by the built-in template rule for elements and the root.
pub const BUILTIN_SITE: SiteId = SiteId(u32::MAX);

/// How a template instantiation was reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Via {
    /// The initial instantiation at the document root.
    Root,
    /// Through an `<xsl:apply-templates>` at this site (or [`BUILTIN_SITE`]).
    Apply(SiteId),
    /// Through an `<xsl:call-template>` at this site.
    Call(SiteId),
}

/// Receives template instantiation events from the VM.
pub trait TraceSink {
    /// A template (`Some`) or the built-in rule (`None`) starts executing
    /// with `node` as the current node.
    fn enter_template(&mut self, template: Option<TemplateId>, node: NodeId, via: Via);
    /// The most recently entered template finished.
    fn leave_template(&mut self);
}

/// A sink that discards all events.
pub struct NoTrace;

impl TraceSink for NoTrace {
    fn enter_template(&mut self, _t: Option<TemplateId>, _n: NodeId, _v: Via) {}
    fn leave_template(&mut self) {}
}

/// A sink that records the raw event stream; useful in tests.
#[derive(Default)]
pub struct RecordingTrace {
    pub events: Vec<TraceEvent>,
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    Enter { template: Option<TemplateId>, node: NodeId, via: Via },
    Leave,
}

impl TraceSink for RecordingTrace {
    fn enter_template(&mut self, template: Option<TemplateId>, node: NodeId, via: Via) {
        self.events.push(TraceEvent::Enter { template, node, via });
    }
    fn leave_template(&mut self) {
        self.events.push(TraceEvent::Leave);
    }
}
