//! XPath 1.0 value types and conversions.

use xsltdb_xml::{Document, NodeId};

/// An XPath 1.0 value. Node-sets reference nodes of the context document and
/// are kept sorted in document order with no duplicates.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    NodeSet(Vec<NodeId>),
    Bool(bool),
    Num(f64),
    Str(String),
}

impl Value {
    pub fn empty_nodeset() -> Value {
        Value::NodeSet(Vec::new())
    }

    /// XPath `boolean()` conversion.
    pub fn boolean(&self) -> bool {
        match self {
            Value::NodeSet(ns) => !ns.is_empty(),
            Value::Bool(b) => *b,
            Value::Num(n) => *n != 0.0 && !n.is_nan(),
            Value::Str(s) => !s.is_empty(),
        }
    }

    /// XPath `string()` conversion (node-sets use the first node in
    /// document order).
    pub fn string(&self, doc: &Document) -> String {
        match self {
            Value::NodeSet(ns) => ns
                .first()
                .map(|&n| doc.string_value(n))
                .unwrap_or_default(),
            Value::Bool(b) => if *b { "true" } else { "false" }.to_string(),
            Value::Num(n) => num_to_string(*n),
            Value::Str(s) => s.clone(),
        }
    }

    /// XPath `number()` conversion.
    pub fn number(&self, doc: &Document) -> f64 {
        match self {
            Value::NodeSet(_) => str_to_num(&self.string(doc)),
            Value::Bool(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            Value::Num(n) => *n,
            Value::Str(s) => str_to_num(s),
        }
    }

    pub fn as_nodeset(&self) -> Option<&[NodeId]> {
        match self {
            Value::NodeSet(ns) => Some(ns),
            _ => None,
        }
    }

    /// Take the node-set out of the value, or error with `what` context.
    pub fn into_nodeset(self, what: &str) -> Result<Vec<NodeId>, String> {
        match self {
            Value::NodeSet(ns) => Ok(ns),
            other => Err(format!("{what}: expected a node-set, got {}", other.type_name())),
        }
    }

    pub fn type_name(&self) -> &'static str {
        match self {
            Value::NodeSet(_) => "node-set",
            Value::Bool(_) => "boolean",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
        }
    }
}

/// XPath 1.0 number-to-string rules: integers print with no decimal point,
/// NaN prints as `NaN`, infinities as `Infinity`/`-Infinity`.
pub fn num_to_string(n: f64) -> String {
    if n.is_nan() {
        return "NaN".to_string();
    }
    if n.is_infinite() {
        return if n > 0.0 { "Infinity" } else { "-Infinity" }.to_string();
    }
    if n == 0.0 {
        return "0".to_string(); // covers -0.0
    }
    if n == n.trunc() && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        // Shortest representation that round-trips is what Rust's `{}`
        // produces for f64.
        format!("{n}")
    }
}

/// XPath 1.0 string-to-number: optional whitespace, optional minus, digits
/// with optional fraction; anything else is NaN.
pub fn str_to_num(s: &str) -> f64 {
    let t = s.trim();
    if t.is_empty() {
        return f64::NAN;
    }
    let core = t.strip_prefix('-').unwrap_or(t);
    let valid = !core.is_empty()
        && core.chars().all(|c| c.is_ascii_digit() || c == '.')
        && core.chars().filter(|&c| c == '.').count() <= 1
        && core != ".";
    if valid {
        t.parse().unwrap_or(f64::NAN)
    } else {
        f64::NAN
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsltdb_xml::builder::text_element;

    #[test]
    fn boolean_rules() {
        assert!(!Value::empty_nodeset().boolean());
        assert!(Value::NodeSet(vec![NodeId(1)]).boolean());
        assert!(!Value::Num(0.0).boolean());
        assert!(!Value::Num(f64::NAN).boolean());
        assert!(Value::Num(-1.0).boolean());
        assert!(!Value::Str(String::new()).boolean());
        assert!(Value::Str("false".into()).boolean()); // any non-empty string
    }

    #[test]
    fn string_of_nodeset_uses_first_node() {
        let d = text_element("x", "hello");
        let root = d.root_element().unwrap();
        let v = Value::NodeSet(vec![root]);
        assert_eq!(v.string(&d), "hello");
        assert_eq!(Value::empty_nodeset().string(&d), "");
    }

    #[test]
    fn num_to_string_rules() {
        assert_eq!(num_to_string(2000.0), "2000");
        assert_eq!(num_to_string(-3.5), "-3.5");
        assert_eq!(num_to_string(0.0), "0");
        assert_eq!(num_to_string(-0.0), "0");
        assert_eq!(num_to_string(f64::NAN), "NaN");
        assert_eq!(num_to_string(f64::INFINITY), "Infinity");
        assert_eq!(num_to_string(f64::NEG_INFINITY), "-Infinity");
    }

    #[test]
    fn str_to_num_rules() {
        assert_eq!(str_to_num(" 42 "), 42.0);
        assert_eq!(str_to_num("-1.5"), -1.5);
        assert!(str_to_num("abc").is_nan());
        assert!(str_to_num("").is_nan());
        assert!(str_to_num("1e3").is_nan()); // exponents are not XPath numbers
        assert!(str_to_num("1.2.3").is_nan());
        assert!(str_to_num(".").is_nan());
        assert_eq!(str_to_num(".5"), 0.5);
    }

    #[test]
    fn number_conversion() {
        let d = text_element("x", "7");
        let root = d.root_element().unwrap();
        assert_eq!(Value::NodeSet(vec![root]).number(&d), 7.0);
        assert_eq!(Value::Bool(true).number(&d), 1.0);
        assert_eq!(Value::Str("3.5".into()).number(&d), 3.5);
    }
}
