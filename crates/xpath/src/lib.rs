//! # xsltdb-xpath
//!
//! An XPath 1.0 engine over the `xsltdb-xml` arena document model: lexer,
//! parser, all thirteen axes (minus the namespace axis), the core function
//! library, XPath 1.0 value semantics, and XSLT match patterns with default
//! priorities.
//!
//! Two features exist specifically for the paper's partial-evaluation
//! pipeline:
//!
//! * [`eval::Env::assume_predicates`] — predicate tests evaluate to `true`
//!   and are kept as *residuals* by the XQuery generator (paper §4.1);
//! * [`ast::Expr::is_value_dependent`] — classifies predicates as value
//!   dependent (must stay residual) versus purely structural.
//!
//! ```
//! use xsltdb_xml::parse::parse;
//! use xsltdb_xpath::eval::{evaluate_str, Ctx, Env};
//! use xsltdb_xml::NodeId;
//!
//! let doc = parse("<emp><sal>2450</sal></emp>").unwrap();
//! let env = Env::default();
//! let ctx = Ctx::new(&doc, NodeId::DOCUMENT, &env);
//! let v = evaluate_str("/emp/sal > 2000", &ctx).unwrap();
//! assert!(v.boolean());
//! ```

pub mod ast;
pub mod axes;
pub mod eval;
pub mod functions;
pub mod lexer;
pub mod parser;
pub mod pattern;
pub mod value;

pub use ast::{Axis, BinOp, Expr, LocationPath, NodeTest, Step};
pub use eval::{evaluate, evaluate_str, Ctx, Env, NoVars, VarResolver, XPathError};
pub use parser::{parse_expr, XPathParseError};
pub use pattern::{PathPattern, Pattern, PatternStep};
pub use value::Value;
