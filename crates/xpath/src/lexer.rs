//! XPath 1.0 lexer.
//!
//! Implements the spec's lexical disambiguation rules: `*` is the multiply
//! operator (and `and`/`or`/`div`/`mod` are operators) exactly when the
//! preceding token could end an operand; otherwise `*` is a wildcard name
//! test and those words are ordinary names.

use std::fmt;

#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Number(f64),
    Literal(String),
    /// An NCName (no colon). Prefixed names appear as `Name Colon Name`.
    Name(String),
    Colon,
    DColon,
    Slash,
    DSlash,
    LBracket,
    RBracket,
    LParen,
    RParen,
    At,
    Dot,
    DotDot,
    Comma,
    Pipe,
    Dollar,
    Star,
    Plus,
    Minus,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Div,
    Mod,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Number(n) => write!(f, "{n}"),
            Tok::Literal(s) => write!(f, "'{s}'"),
            Tok::Name(s) => write!(f, "{s}"),
            Tok::Colon => write!(f, ":"),
            Tok::DColon => write!(f, "::"),
            Tok::Slash => write!(f, "/"),
            Tok::DSlash => write!(f, "//"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::At => write!(f, "@"),
            Tok::Dot => write!(f, "."),
            Tok::DotDot => write!(f, ".."),
            Tok::Comma => write!(f, ","),
            Tok::Pipe => write!(f, "|"),
            Tok::Dollar => write!(f, "$"),
            Tok::Star => write!(f, "*"),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Eq => write!(f, "="),
            Tok::Ne => write!(f, "!="),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
            Tok::And => write!(f, "and"),
            Tok::Or => write!(f, "or"),
            Tok::Div => write!(f, "div"),
            Tok::Mod => write!(f, "mod"),
        }
    }
}

/// A lexer error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XPath lex error at {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// True when, given the previous token, the next `*`/name must be read as an
/// operator per XPath 1.0 §3.7.
fn prev_allows_operator(prev: Option<&Tok>) -> bool {
    match prev {
        None => false,
        Some(t) => !matches!(
            t,
            Tok::At
                | Tok::DColon
                | Tok::Colon
                | Tok::LParen
                | Tok::LBracket
                | Tok::Comma
                | Tok::Slash
                | Tok::DSlash
                | Tok::Pipe
                | Tok::Plus
                | Tok::Minus
                | Tok::Eq
                | Tok::Ne
                | Tok::Lt
                | Tok::Le
                | Tok::Gt
                | Tok::Ge
                | Tok::And
                | Tok::Or
                | Tok::Div
                | Tok::Mod
                | Tok::Star
                | Tok::Dollar
        ),
    }
}

pub fn tokenize(input: &str) -> Result<Vec<Tok>, LexError> {
    let bytes = input.as_bytes();
    let mut toks: Vec<Tok> = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        match c {
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            '[' => {
                toks.push(Tok::LBracket);
                i += 1;
            }
            ']' => {
                toks.push(Tok::RBracket);
                i += 1;
            }
            '@' => {
                toks.push(Tok::At);
                i += 1;
            }
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            '|' => {
                toks.push(Tok::Pipe);
                i += 1;
            }
            '$' => {
                toks.push(Tok::Dollar);
                i += 1;
            }
            '+' => {
                toks.push(Tok::Plus);
                i += 1;
            }
            '-' => {
                toks.push(Tok::Minus);
                i += 1;
            }
            '=' => {
                toks.push(Tok::Eq);
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Ne);
                    i += 2;
                } else {
                    return Err(LexError { offset: i, message: "expected `!=`".into() });
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Le);
                    i += 2;
                } else {
                    toks.push(Tok::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Ge);
                    i += 2;
                } else {
                    toks.push(Tok::Gt);
                    i += 1;
                }
            }
            '/' => {
                if bytes.get(i + 1) == Some(&b'/') {
                    toks.push(Tok::DSlash);
                    i += 2;
                } else {
                    toks.push(Tok::Slash);
                    i += 1;
                }
            }
            ':' => {
                if bytes.get(i + 1) == Some(&b':') {
                    toks.push(Tok::DColon);
                    i += 2;
                } else {
                    toks.push(Tok::Colon);
                    i += 1;
                }
            }
            '.' => {
                if bytes.get(i + 1) == Some(&b'.') {
                    toks.push(Tok::DotDot);
                    i += 2;
                } else if bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()) {
                    // A number like `.5`.
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text = &input[start..i];
                    let n: f64 = text.parse().map_err(|_| LexError {
                        offset: start,
                        message: format!("bad number `{text}`"),
                    })?;
                    toks.push(Tok::Number(n));
                } else {
                    toks.push(Tok::Dot);
                    i += 1;
                }
            }
            '*' => {
                if prev_allows_operator(toks.last()) {
                    toks.push(Tok::Star); // multiply — parser treats Star as both
                } else {
                    toks.push(Tok::Star);
                }
                i += 1;
            }
            '"' | '\'' => {
                let quote = c;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(LexError {
                            offset: start,
                            message: "unterminated string literal".into(),
                        });
                    }
                    let ch = input[i..].chars().next().expect("in bounds");
                    if ch == quote {
                        i += 1;
                        break;
                    }
                    s.push(ch);
                    i += ch.len_utf8();
                }
                toks.push(Tok::Literal(s));
            }
            _ if c.is_ascii_digit() => {
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if i < bytes.len() && bytes[i] == b'.' && bytes.get(i + 1) != Some(&b'.') {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &input[start..i];
                let n: f64 = text.parse().map_err(|_| LexError {
                    offset: start,
                    message: format!("bad number `{text}`"),
                })?;
                toks.push(Tok::Number(n));
            }
            _ if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len() {
                    let ch = input[j..].chars().next().expect("in bounds");
                    if ch.is_alphanumeric() || matches!(ch, '_' | '-' | '.') {
                        j += ch.len_utf8();
                    } else {
                        break;
                    }
                }
                let word = &input[i..j];
                let op_position = prev_allows_operator(toks.last());
                let tok = match word {
                    "and" if op_position => Tok::And,
                    "or" if op_position => Tok::Or,
                    "div" if op_position => Tok::Div,
                    "mod" if op_position => Tok::Mod,
                    _ => Tok::Name(word.to_string()),
                };
                toks.push(tok);
                i = j;
            }
            _ => {
                return Err(LexError {
                    offset: i,
                    message: format!("unexpected character `{c}`"),
                })
            }
        }
    }
    Ok(toks)
}

/// Is `*` at this position a multiplication operator? Decided by the parser
/// using the same preceding-token rule.
pub fn star_is_operator(prev: Option<&Tok>) -> bool {
    prev_allows_operator(prev)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_path() {
        let t = tokenize("/dept/emp").unwrap();
        assert_eq!(
            t,
            vec![
                Tok::Slash,
                Tok::Name("dept".into()),
                Tok::Slash,
                Tok::Name("emp".into())
            ]
        );
    }

    #[test]
    fn predicate_with_comparison() {
        let t = tokenize("emp[sal > 2000]").unwrap();
        assert_eq!(
            t,
            vec![
                Tok::Name("emp".into()),
                Tok::LBracket,
                Tok::Name("sal".into()),
                Tok::Gt,
                Tok::Number(2000.0),
                Tok::RBracket
            ]
        );
    }

    #[test]
    fn and_as_operator_vs_name() {
        // `and` after an operand is the operator...
        let t = tokenize("a and b").unwrap();
        assert_eq!(t[1], Tok::And);
        // ...but at expression start it is an element name.
        let t = tokenize("and").unwrap();
        assert_eq!(t[0], Tok::Name("and".into()));
    }

    #[test]
    fn div_after_slash_is_name() {
        let t = tokenize("x/div").unwrap();
        assert_eq!(t[2], Tok::Name("div".into()));
    }

    #[test]
    fn numbers() {
        let t = tokenize("1.5 + .25 + 10").unwrap();
        assert_eq!(t[0], Tok::Number(1.5));
        assert_eq!(t[2], Tok::Number(0.25));
        assert_eq!(t[4], Tok::Number(10.0));
    }

    #[test]
    fn string_literals_both_quotes() {
        let t = tokenize(r#"concat("a", 'b')"#).unwrap();
        assert!(matches!(&t[2], Tok::Literal(s) if s == "a"));
        assert!(matches!(&t[4], Tok::Literal(s) if s == "b"));
    }

    #[test]
    fn axis_and_abbreviations() {
        let t = tokenize("child::a/@b/..//.").unwrap();
        assert_eq!(t[1], Tok::DColon);
        assert!(t.contains(&Tok::At));
        assert!(t.contains(&Tok::DotDot));
        assert!(t.contains(&Tok::DSlash));
    }

    #[test]
    fn unterminated_literal_is_error() {
        assert!(tokenize("'abc").is_err());
    }

    #[test]
    fn ne_requires_equals() {
        assert!(tokenize("a ! b").is_err());
    }

    #[test]
    fn prefixed_name_is_three_tokens() {
        let t = tokenize("xsl:template").unwrap();
        assert_eq!(
            t,
            vec![
                Tok::Name("xsl".into()),
                Tok::Colon,
                Tok::Name("template".into())
            ]
        );
    }
}
