//! Recursive-descent parser for XPath 1.0.

use crate::ast::{Axis, BinOp, Expr, LocationPath, NodeTest, Step};
use crate::lexer::{tokenize, LexError, Tok};
use std::fmt;

/// Parse error for XPath expressions and patterns.
#[derive(Debug, Clone, PartialEq)]
pub struct XPathParseError {
    pub message: String,
}

impl fmt::Display for XPathParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XPath parse error: {}", self.message)
    }
}

impl std::error::Error for XPathParseError {}

impl From<LexError> for XPathParseError {
    fn from(e: LexError) -> Self {
        XPathParseError { message: e.to_string() }
    }
}

/// Parse an XPath 1.0 expression.
pub fn parse_expr(input: &str) -> Result<Expr, XPathParseError> {
    let toks = tokenize(input)?;
    let mut p = P { toks, pos: 0 };
    let e = p.or_expr()?;
    if p.pos != p.toks.len() {
        return Err(p.err(format!("unexpected trailing token `{}`", p.toks[p.pos])));
    }
    Ok(e)
}

pub(crate) struct P {
    pub(crate) toks: Vec<Tok>,
    pub(crate) pos: usize,
}

impl P {
    pub(crate) fn err(&self, message: impl Into<String>) -> XPathParseError {
        XPathParseError { message: message.into() }
    }

    pub(crate) fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1)
    }

    pub(crate) fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    pub(crate) fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    pub(crate) fn expect(&mut self, t: &Tok) -> Result<(), XPathParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected `{t}`, found {}",
                self.peek().map_or("end of input".to_string(), |x| format!("`{x}`"))
            )))
        }
    }

    pub(crate) fn or_expr(&mut self) -> Result<Expr, XPathParseError> {
        let mut e = self.and_expr()?;
        while self.eat(&Tok::Or) {
            let r = self.and_expr()?;
            e = Expr::Binary(BinOp::Or, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr, XPathParseError> {
        let mut e = self.eq_expr()?;
        while self.eat(&Tok::And) {
            let r = self.eq_expr()?;
            e = Expr::Binary(BinOp::And, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn eq_expr(&mut self) -> Result<Expr, XPathParseError> {
        let mut e = self.rel_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Eq) => BinOp::Eq,
                Some(Tok::Ne) => BinOp::Ne,
                _ => break,
            };
            self.bump();
            let r = self.rel_expr()?;
            e = Expr::Binary(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn rel_expr(&mut self) -> Result<Expr, XPathParseError> {
        let mut e = self.add_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Lt) => BinOp::Lt,
                Some(Tok::Le) => BinOp::Le,
                Some(Tok::Gt) => BinOp::Gt,
                Some(Tok::Ge) => BinOp::Ge,
                _ => break,
            };
            self.bump();
            let r = self.add_expr()?;
            e = Expr::Binary(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn add_expr(&mut self) -> Result<Expr, XPathParseError> {
        let mut e = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let r = self.mul_expr()?;
            e = Expr::Binary(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn mul_expr(&mut self) -> Result<Expr, XPathParseError> {
        let mut e = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                // A `*` after a complete operand is multiplication.
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Div) => BinOp::Div,
                Some(Tok::Mod) => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let r = self.unary_expr()?;
            e = Expr::Binary(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn unary_expr(&mut self) -> Result<Expr, XPathParseError> {
        if self.eat(&Tok::Minus) {
            let e = self.unary_expr()?;
            return Ok(Expr::Neg(Box::new(e)));
        }
        self.union_expr()
    }

    fn union_expr(&mut self) -> Result<Expr, XPathParseError> {
        let mut e = self.path_expr()?;
        while self.eat(&Tok::Pipe) {
            let r = self.path_expr()?;
            e = Expr::Binary(BinOp::Union, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    /// Does the upcoming token sequence start a filter (primary) expression
    /// rather than a location path?
    fn starts_primary(&self) -> bool {
        match self.peek() {
            Some(Tok::Dollar | Tok::LParen | Tok::Literal(_) | Tok::Number(_)) => true,
            Some(Tok::Name(n)) => {
                // A name followed by `(` is a function call unless it is a
                // node-type test.
                if matches!(
                    n.as_str(),
                    "text" | "comment" | "node" | "processing-instruction"
                ) {
                    return false;
                }
                matches!(self.peek2(), Some(Tok::LParen))
            }
            _ => false,
        }
    }

    fn path_expr(&mut self) -> Result<Expr, XPathParseError> {
        if self.starts_primary() {
            let primary = self.primary_expr()?;
            let mut predicates = Vec::new();
            while self.eat(&Tok::LBracket) {
                predicates.push(self.or_expr()?);
                self.expect(&Tok::RBracket)?;
            }
            let mut steps = Vec::new();
            loop {
                if self.eat(&Tok::DSlash) {
                    steps.push(Step::descendant_or_self_node());
                    steps.push(self.step()?);
                } else if self.eat(&Tok::Slash) {
                    steps.push(self.step()?);
                } else {
                    break;
                }
            }
            if predicates.is_empty() && steps.is_empty() {
                return Ok(primary);
            }
            return Ok(Expr::Filter { primary: Box::new(primary), predicates, steps });
        }
        self.location_path().map(Expr::Path)
    }

    fn primary_expr(&mut self) -> Result<Expr, XPathParseError> {
        match self.bump() {
            Some(Tok::Dollar) => {
                let name = self.qname_string()?;
                Ok(Expr::Var(name))
            }
            Some(Tok::LParen) => {
                let e = self.or_expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Literal(s)) => Ok(Expr::Literal(s)),
            Some(Tok::Number(n)) => Ok(Expr::Number(n)),
            Some(Tok::Name(name)) => {
                let full = self.maybe_prefixed(name)?;
                self.expect(&Tok::LParen)?;
                let mut args = Vec::new();
                if self.peek() != Some(&Tok::RParen) {
                    loop {
                        args.push(self.or_expr()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RParen)?;
                Ok(Expr::Call(full, args))
            }
            other => Err(self.err(format!(
                "expected a primary expression, found {}",
                other.map_or("end of input".to_string(), |t| format!("`{t}`"))
            ))),
        }
    }

    /// After consuming a Name token, optionally consume `:name` to build a
    /// prefixed name string.
    fn maybe_prefixed(&mut self, first: String) -> Result<String, XPathParseError> {
        if self.peek() == Some(&Tok::Colon) {
            self.bump();
            match self.bump() {
                Some(Tok::Name(l)) => Ok(format!("{first}:{l}")),
                _ => Err(self.err("expected local name after `:`")),
            }
        } else {
            Ok(first)
        }
    }

    fn qname_string(&mut self) -> Result<String, XPathParseError> {
        match self.bump() {
            Some(Tok::Name(n)) => self.maybe_prefixed(n),
            _ => Err(self.err("expected a name")),
        }
    }

    fn location_path(&mut self) -> Result<LocationPath, XPathParseError> {
        let mut steps = Vec::new();
        let absolute;
        if self.eat(&Tok::DSlash) {
            absolute = true;
            steps.push(Step::descendant_or_self_node());
            steps.push(self.step()?);
        } else if self.eat(&Tok::Slash) {
            absolute = true;
            if self.starts_step() {
                steps.push(self.step()?);
            } else {
                return Ok(LocationPath { absolute, steps });
            }
        } else {
            absolute = false;
            steps.push(self.step()?);
        }
        loop {
            if self.eat(&Tok::DSlash) {
                steps.push(Step::descendant_or_self_node());
                steps.push(self.step()?);
            } else if self.eat(&Tok::Slash) {
                steps.push(self.step()?);
            } else {
                break;
            }
        }
        Ok(LocationPath { absolute, steps })
    }

    fn starts_step(&self) -> bool {
        matches!(
            self.peek(),
            Some(Tok::Name(_) | Tok::Star | Tok::At | Tok::Dot | Tok::DotDot)
        )
    }

    pub(crate) fn step(&mut self) -> Result<Step, XPathParseError> {
        if self.eat(&Tok::Dot) {
            return Ok(Step::self_node());
        }
        if self.eat(&Tok::DotDot) {
            return Ok(Step {
                axis: Axis::Parent,
                test: NodeTest::Node,
                predicates: Vec::new(),
            });
        }
        let mut axis = Axis::Child;
        if self.eat(&Tok::At) {
            axis = Axis::Attribute;
        } else if let (Some(Tok::Name(n)), Some(Tok::DColon)) = (self.peek(), self.peek2()) {
            let a = Axis::from_name(n)
                .ok_or_else(|| self.err(format!("unknown axis `{n}`")))?;
            axis = a;
            self.bump();
            self.bump();
        }
        let test = self.node_test(axis)?;
        let mut predicates = Vec::new();
        while self.eat(&Tok::LBracket) {
            predicates.push(self.or_expr()?);
            self.expect(&Tok::RBracket)?;
        }
        Ok(Step { axis, test, predicates })
    }

    fn node_test(&mut self, _axis: Axis) -> Result<NodeTest, XPathParseError> {
        match self.bump() {
            Some(Tok::Star) => Ok(NodeTest::Star),
            Some(Tok::Name(n)) => {
                // Node-type tests.
                if self.peek() == Some(&Tok::LParen)
                    && matches!(
                        n.as_str(),
                        "text" | "comment" | "node" | "processing-instruction"
                    )
                {
                    self.bump();
                    let test = match n.as_str() {
                        "text" => NodeTest::Text,
                        "comment" => NodeTest::Comment,
                        "node" => NodeTest::Node,
                        "processing-instruction" => {
                            if let Some(Tok::Literal(target)) = self.peek() {
                                let t = target.clone();
                                self.bump();
                                NodeTest::Pi(Some(t))
                            } else {
                                NodeTest::Pi(None)
                            }
                        }
                        _ => unreachable!(),
                    };
                    self.expect(&Tok::RParen)?;
                    return Ok(test);
                }
                if self.peek() == Some(&Tok::Colon) {
                    self.bump();
                    match self.bump() {
                        Some(Tok::Name(l)) => {
                            Ok(NodeTest::Name { prefix: Some(n), local: l })
                        }
                        Some(Tok::Star) => Ok(NodeTest::PrefixStar(n)),
                        _ => Err(self.err("expected local name or `*` after prefix")),
                    }
                } else {
                    Ok(NodeTest::Name { prefix: None, local: n })
                }
            }
            other => Err(self.err(format!(
                "expected a node test, found {}",
                other.map_or("end of input".to_string(), |t| format!("`{t}`"))
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Axis, BinOp, Expr, NodeTest};

    #[test]
    fn parses_relative_path() {
        let e = parse_expr("dept/emp").unwrap();
        match e {
            Expr::Path(p) => {
                assert!(!p.absolute);
                assert_eq!(p.steps.len(), 2);
            }
            _ => panic!("expected path"),
        }
    }

    #[test]
    fn parses_absolute_root_only() {
        let e = parse_expr("/").unwrap();
        match e {
            Expr::Path(p) => {
                assert!(p.absolute);
                assert!(p.steps.is_empty());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_predicate() {
        let e = parse_expr("emp[sal > 2000]").unwrap();
        match e {
            Expr::Path(p) => {
                assert_eq!(p.steps[0].predicates.len(), 1);
                assert!(matches!(
                    p.steps[0].predicates[0],
                    Expr::Binary(BinOp::Gt, _, _)
                ));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_double_slash() {
        let e = parse_expr("//text()").unwrap();
        match e {
            Expr::Path(p) => {
                assert!(p.absolute);
                assert_eq!(p.steps.len(), 2);
                assert_eq!(p.steps[0].axis, Axis::DescendantOrSelf);
                assert_eq!(p.steps[1].test, NodeTest::Text);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_attribute_and_parent() {
        let e = parse_expr("../@border").unwrap();
        match e {
            Expr::Path(p) => {
                assert_eq!(p.steps[0].axis, Axis::Parent);
                assert_eq!(p.steps[1].axis, Axis::Attribute);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_explicit_axes() {
        let e = parse_expr("ancestor::dept/following-sibling::x").unwrap();
        match e {
            Expr::Path(p) => {
                assert_eq!(p.steps[0].axis, Axis::Ancestor);
                assert_eq!(p.steps[1].axis, Axis::FollowingSibling);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_function_call_and_filter_path() {
        let e = parse_expr("concat('a', name())").unwrap();
        assert!(matches!(e, Expr::Call(ref n, ref args) if n == "concat" && args.len() == 2));
        let e = parse_expr("$x/emp[1]").unwrap();
        assert!(matches!(e, Expr::Filter { .. }));
    }

    #[test]
    fn parses_operators_with_precedence() {
        let e = parse_expr("1 + 2 * 3 = 7 and true()").unwrap();
        // Top is `and`.
        match e {
            Expr::Binary(BinOp::And, l, _) => match *l {
                Expr::Binary(BinOp::Eq, ll, _) => {
                    assert!(matches!(*ll, Expr::Binary(BinOp::Add, _, _)));
                }
                _ => panic!("expected `=` under `and`"),
            },
            _ => panic!("expected `and` at top"),
        }
    }

    #[test]
    fn parses_union() {
        let e = parse_expr("dname | loc").unwrap();
        assert!(matches!(e, Expr::Binary(BinOp::Union, _, _)));
    }

    #[test]
    fn parses_variable() {
        let e = parse_expr("$var000").unwrap();
        assert_eq!(e, Expr::Var("var000".into()));
    }

    #[test]
    fn parses_unary_minus() {
        let e = parse_expr("-1").unwrap();
        assert!(matches!(e, Expr::Neg(_)));
    }

    #[test]
    fn parses_star_wildcard_vs_multiply() {
        let e = parse_expr("*").unwrap();
        assert!(matches!(e, Expr::Path(ref p) if p.steps[0].test == NodeTest::Star));
        let e = parse_expr("2 * 3").unwrap();
        assert!(matches!(e, Expr::Binary(BinOp::Mul, _, _)));
        let e = parse_expr("a/*").unwrap();
        assert!(matches!(e, Expr::Path(ref p) if p.steps[1].test == NodeTest::Star));
    }

    #[test]
    fn parses_prefixed_names() {
        let e = parse_expr("xsl:template/h:*").unwrap();
        match e {
            Expr::Path(p) => {
                assert_eq!(
                    p.steps[0].test,
                    NodeTest::Name { prefix: Some("xsl".into()), local: "template".into() }
                );
                assert_eq!(p.steps[1].test, NodeTest::PrefixStar("h".into()));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_pi_with_target() {
        let e = parse_expr("processing-instruction('php')").unwrap();
        assert!(
            matches!(e, Expr::Path(ref p) if p.steps[0].test == NodeTest::Pi(Some("php".into())))
        );
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_expr("a b").is_err());
        assert!(parse_expr("a[").is_err());
        assert!(parse_expr("").is_err());
    }

    #[test]
    fn display_roundtrip() {
        for src in [
            "dept/emp",
            "/dept",
            "//emp",
            "emp[sal > 2000]",
            "concat('a', 'b')",
            "$x/emp",
            "@border",
            "..",
            ".",
            "a | b",
            "ancestor::dept",
            "count(emp) + 1",
        ] {
            let e1 = parse_expr(src).unwrap();
            let printed = e1.to_string();
            let e2 = parse_expr(&printed)
                .unwrap_or_else(|err| panic!("reparse of `{printed}` failed: {err}"));
            assert_eq!(e1, e2, "roundtrip mismatch for `{src}` → `{printed}`");
        }
    }
}
