//! Axis iteration and node tests over the arena document model.
//!
//! Each function returns candidates in *axis order* (reverse axes yield
//! nearest-first), which is what predicate position numbering requires. The
//! caller merges results back into document order.

use crate::ast::{Axis, NodeTest};
use xsltdb_xml::{Document, NodeId, NodeKind};

/// Collect the nodes on `axis` from `node`, in axis order.
pub fn axis_nodes(doc: &Document, node: NodeId, axis: Axis) -> Vec<NodeId> {
    match axis {
        Axis::Child => doc.children(node).collect(),
        Axis::Descendant => doc.descendants(node).collect(),
        Axis::DescendantOrSelf => doc.descendants_or_self(node).collect(),
        Axis::Parent => doc.parent(node).into_iter().collect(),
        Axis::Ancestor => doc.ancestors(node).collect(),
        Axis::AncestorOrSelf => {
            let mut v = vec![node];
            v.extend(doc.ancestors(node));
            v
        }
        Axis::SelfAxis => vec![node],
        Axis::Attribute => doc.attributes(node).to_vec(),
        Axis::FollowingSibling => {
            let mut v = Vec::new();
            let mut cur = doc.node(node).next_sibling;
            while let Some(c) = cur {
                v.push(c);
                cur = doc.node(c).next_sibling;
            }
            v
        }
        Axis::PrecedingSibling => {
            let mut v = Vec::new();
            let mut cur = doc.node(node).prev_sibling;
            while let Some(c) = cur {
                v.push(c);
                cur = doc.node(c).prev_sibling;
            }
            v
        }
        Axis::Following => {
            // Document order: for self and each ancestor, every following
            // sibling's subtree.
            let mut v = Vec::new();
            let mut chain = vec![node];
            chain.extend(doc.ancestors(node));
            // Nearer ancestors' following siblings come first in document
            // order when starting from the node itself.
            for anc in chain {
                let mut sib = doc.node(anc).next_sibling;
                while let Some(s) = sib {
                    v.extend(doc.descendants_or_self(s));
                    sib = doc.node(s).next_sibling;
                }
            }
            v.sort();
            v
        }
        Axis::Preceding => {
            // Reverse document order, excluding ancestors.
            let mut v = Vec::new();
            let mut chain = vec![node];
            chain.extend(doc.ancestors(node));
            for anc in chain {
                let mut sib = doc.node(anc).prev_sibling;
                while let Some(s) = sib {
                    v.extend(doc.descendants_or_self(s));
                    sib = doc.node(s).prev_sibling;
                }
            }
            v.sort();
            v.reverse();
            v
        }
    }
}

/// Does `node` pass `test` on `axis`? The principal node type is attribute
/// for the attribute axis and element otherwise.
pub fn test_matches(doc: &Document, node: NodeId, axis: Axis, test: &NodeTest) -> bool {
    let kind = doc.kind(node);
    let principal = if axis == Axis::Attribute {
        matches!(kind, NodeKind::Attribute { .. })
    } else {
        matches!(kind, NodeKind::Element { .. })
    };
    match test {
        NodeTest::Name { prefix, local } => {
            principal
                && doc
                    .node_name(node)
                    .is_some_and(|n| n.matches_test(prefix.as_deref(), local))
        }
        NodeTest::Star => principal,
        NodeTest::PrefixStar(p) => {
            principal
                && doc
                    .node_name(node)
                    .is_some_and(|n| n.prefix.as_deref() == Some(p.as_str()))
        }
        NodeTest::Text => matches!(kind, NodeKind::Text(_)),
        NodeTest::Comment => matches!(kind, NodeKind::Comment(_)),
        NodeTest::Node => true,
        NodeTest::Pi(target) => match kind {
            NodeKind::Pi { target: t, .. } => {
                target.as_ref().is_none_or(|want| want == t)
            }
            _ => false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsltdb_xml::parse::parse;

    fn doc() -> Document {
        parse(r#"<r a="1"><x>1</x><y><z/>text</y><x>2</x></r>"#).unwrap()
    }

    #[test]
    fn child_axis() {
        let d = doc();
        let r = d.root_element().unwrap();
        let kids = axis_nodes(&d, r, Axis::Child);
        assert_eq!(kids.len(), 3);
    }

    #[test]
    fn attribute_axis_and_test() {
        let d = doc();
        let r = d.root_element().unwrap();
        let attrs = axis_nodes(&d, r, Axis::Attribute);
        assert_eq!(attrs.len(), 1);
        assert!(test_matches(
            &d,
            attrs[0],
            Axis::Attribute,
            &NodeTest::Name { prefix: None, local: "a".into() }
        ));
        assert!(test_matches(&d, attrs[0], Axis::Attribute, &NodeTest::Star));
        // On the child axis, attribute nodes never pass name tests.
        assert!(!test_matches(
            &d,
            attrs[0],
            Axis::Child,
            &NodeTest::Name { prefix: None, local: "a".into() }
        ));
    }

    #[test]
    fn following_and_preceding_siblings() {
        let d = doc();
        let r = d.root_element().unwrap();
        let kids: Vec<_> = d.children(r).collect();
        let y = kids[1];
        assert_eq!(axis_nodes(&d, y, Axis::FollowingSibling), vec![kids[2]]);
        assert_eq!(axis_nodes(&d, y, Axis::PrecedingSibling), vec![kids[0]]);
    }

    #[test]
    fn following_excludes_descendants() {
        let d = doc();
        let r = d.root_element().unwrap();
        let kids: Vec<_> = d.children(r).collect();
        let y = kids[1];
        let f = axis_nodes(&d, y, Axis::Following);
        // following(y) = subtree of second <x> (element + its text child).
        assert_eq!(f.len(), 2);
        assert!(f.contains(&kids[2]));
        assert!(!f.iter().any(|&n| d.descendants(y).any(|dn| dn == n)));
    }

    #[test]
    fn preceding_is_reverse_doc_order() {
        let d = doc();
        let r = d.root_element().unwrap();
        let kids: Vec<_> = d.children(r).collect();
        let second_x = kids[2];
        let p = axis_nodes(&d, second_x, Axis::Preceding);
        // Everything in <x>1</x> and <y><z/>text</y>: 2 + 3 nodes.
        assert_eq!(p.len(), 5);
        // Reverse document order: first entry is the last preceding node.
        assert!(p[0] > p[p.len() - 1]);
        // Ancestors excluded.
        assert!(!p.contains(&r));
    }

    #[test]
    fn ancestor_nearest_first() {
        let d = doc();
        let r = d.root_element().unwrap();
        let y = d.child_element(r, "y").unwrap();
        let z = d.child_element(y, "z").unwrap();
        let anc = axis_nodes(&d, z, Axis::Ancestor);
        assert_eq!(anc, vec![y, r, NodeId::DOCUMENT]);
    }

    #[test]
    fn node_type_tests() {
        let d = doc();
        let r = d.root_element().unwrap();
        let y = d.child_element(r, "y").unwrap();
        let text = d.children(y).nth(1).unwrap();
        assert!(test_matches(&d, text, Axis::Child, &NodeTest::Text));
        assert!(test_matches(&d, text, Axis::Child, &NodeTest::Node));
        assert!(!test_matches(&d, text, Axis::Child, &NodeTest::Star));
    }
}
