//! The XPath 1.0 core function library, plus the XSLT additions the engine
//! needs (`current()`, `generate-id()`).

use crate::ast::Expr;
use crate::eval::{evaluate, Ctx, XPathError};
use crate::value::{num_to_string, str_to_num, Value};

pub(crate) fn call(name: &str, args: &[Expr], ctx: &Ctx<'_>) -> Result<Value, XPathError> {
    let arity = args.len();
    let err_arity = |want: &str| {
        Err(XPathError(format!("{name}() expects {want} argument(s), got {arity}")))
    };
    // Evaluate arguments eagerly; all XPath 1.0 functions are strict.
    let mut vals = Vec::with_capacity(args.len());
    for a in args {
        vals.push(evaluate(a, ctx)?);
    }
    let doc = ctx.doc;
    let str_arg = |i: usize| -> String { vals[i].string(doc) };
    let num_arg = |i: usize| -> f64 { vals[i].number(doc) };

    match name {
        // --- Node-set functions ---
        "position" => {
            if arity != 0 {
                return err_arity("no");
            }
            Ok(Value::Num(ctx.position as f64))
        }
        "last" => {
            if arity != 0 {
                return err_arity("no");
            }
            Ok(Value::Num(ctx.size as f64))
        }
        "count" => {
            if arity != 1 {
                return err_arity("1");
            }
            let ns = vals.remove(0).into_nodeset("count()").map_err(XPathError)?;
            Ok(Value::Num(ns.len() as f64))
        }
        "sum" => {
            if arity != 1 {
                return err_arity("1");
            }
            let ns = vals.remove(0).into_nodeset("sum()").map_err(XPathError)?;
            let total: f64 = ns.iter().map(|&n| str_to_num(&doc.string_value(n))).sum();
            Ok(Value::Num(total))
        }
        "local-name" | "name" => {
            if arity > 1 {
                return err_arity("0 or 1");
            }
            let node = if arity == 1 {
                match &vals[0] {
                    Value::NodeSet(ns) => ns.first().copied(),
                    other => {
                        return Err(XPathError(format!(
                            "{name}(): expected a node-set, got {}",
                            other.type_name()
                        )))
                    }
                }
            } else {
                Some(ctx.node)
            };
            let s = node
                .and_then(|n| doc.node_name(n))
                .map(|q| {
                    if name == "name" {
                        q.lexical()
                    } else {
                        q.local.to_string()
                    }
                })
                .unwrap_or_default();
            Ok(Value::Str(s))
        }
        "namespace-uri" => {
            if arity > 1 {
                return err_arity("0 or 1");
            }
            let node = if arity == 1 {
                vals[0].as_nodeset().and_then(|ns| ns.first().copied())
            } else {
                Some(ctx.node)
            };
            let s = node
                .and_then(|n| doc.node_name(n))
                .and_then(|q| q.ns_uri.as_deref())
                .unwrap_or_default();
            Ok(Value::Str(s.to_string()))
        }
        "generate-id" => {
            if arity > 1 {
                return err_arity("0 or 1");
            }
            let node = if arity == 1 {
                vals[0].as_nodeset().and_then(|ns| ns.first().copied())
            } else {
                Some(ctx.node)
            };
            Ok(Value::Str(node.map(|n| format!("id{}", n.0)).unwrap_or_default()))
        }
        // --- String functions ---
        "string" => {
            if arity > 1 {
                return err_arity("0 or 1");
            }
            if arity == 0 {
                Ok(Value::Str(doc.string_value(ctx.node)))
            } else {
                Ok(Value::Str(str_arg(0)))
            }
        }
        "concat" => {
            if arity < 2 {
                return err_arity("2 or more");
            }
            let mut s = String::new();
            for i in 0..arity {
                s.push_str(&str_arg(i));
            }
            Ok(Value::Str(s))
        }
        "starts-with" => {
            if arity != 2 {
                return err_arity("2");
            }
            Ok(Value::Bool(str_arg(0).starts_with(&str_arg(1))))
        }
        "contains" => {
            if arity != 2 {
                return err_arity("2");
            }
            Ok(Value::Bool(str_arg(0).contains(&str_arg(1))))
        }
        "substring-before" => {
            if arity != 2 {
                return err_arity("2");
            }
            let s = str_arg(0);
            let sub = str_arg(1);
            Ok(Value::Str(
                s.find(&sub).map(|i| s[..i].to_string()).unwrap_or_default(),
            ))
        }
        "substring-after" => {
            if arity != 2 {
                return err_arity("2");
            }
            let s = str_arg(0);
            let sub = str_arg(1);
            Ok(Value::Str(
                s.find(&sub)
                    .map(|i| s[i + sub.len()..].to_string())
                    .unwrap_or_default(),
            ))
        }
        "substring" => {
            if arity != 2 && arity != 3 {
                return err_arity("2 or 3");
            }
            let s = str_arg(0);
            let chars: Vec<char> = s.chars().collect();
            let start = num_arg(1);
            let len = if arity == 3 { num_arg(2) } else { f64::INFINITY };
            Ok(Value::Str(xpath_substring(&chars, start, len)))
        }
        "string-length" => {
            if arity > 1 {
                return err_arity("0 or 1");
            }
            let s = if arity == 0 { doc.string_value(ctx.node) } else { str_arg(0) };
            Ok(Value::Num(s.chars().count() as f64))
        }
        "normalize-space" => {
            if arity > 1 {
                return err_arity("0 or 1");
            }
            let s = if arity == 0 { doc.string_value(ctx.node) } else { str_arg(0) };
            Ok(Value::Str(s.split_ascii_whitespace().collect::<Vec<_>>().join(" ")))
        }
        "translate" => {
            if arity != 3 {
                return err_arity("3");
            }
            let s = str_arg(0);
            let from: Vec<char> = str_arg(1).chars().collect();
            let to: Vec<char> = str_arg(2).chars().collect();
            let out: String = s
                .chars()
                .filter_map(|c| match from.iter().position(|&f| f == c) {
                    Some(i) => to.get(i).copied(),
                    None => Some(c),
                })
                .collect();
            Ok(Value::Str(out))
        }
        // --- Boolean functions ---
        "boolean" => {
            if arity != 1 {
                return err_arity("1");
            }
            Ok(Value::Bool(vals[0].boolean()))
        }
        "not" => {
            if arity != 1 {
                return err_arity("1");
            }
            Ok(Value::Bool(!vals[0].boolean()))
        }
        "true" => {
            if arity != 0 {
                return err_arity("no");
            }
            Ok(Value::Bool(true))
        }
        "false" => {
            if arity != 0 {
                return err_arity("no");
            }
            Ok(Value::Bool(false))
        }
        // --- Number functions ---
        "number" => {
            if arity > 1 {
                return err_arity("0 or 1");
            }
            if arity == 0 {
                Ok(Value::Num(str_to_num(&doc.string_value(ctx.node))))
            } else {
                Ok(Value::Num(num_arg(0)))
            }
        }
        "floor" => {
            if arity != 1 {
                return err_arity("1");
            }
            Ok(Value::Num(num_arg(0).floor()))
        }
        "ceiling" => {
            if arity != 1 {
                return err_arity("1");
            }
            Ok(Value::Num(num_arg(0).ceil()))
        }
        "round" => {
            if arity != 1 {
                return err_arity("1");
            }
            let n = num_arg(0);
            // XPath rounds .5 towards positive infinity.
            Ok(Value::Num(if n.is_nan() { n } else { (n + 0.5).floor() }))
        }
        // --- XSLT additions ---
        "current" => {
            if arity != 0 {
                return err_arity("no");
            }
            let cur = ctx.env.current.ok_or_else(|| {
                XPathError("current() is only available inside a stylesheet".into())
            })?;
            Ok(Value::NodeSet(vec![cur]))
        }
        "format-number" => {
            // Minimal: format the number with the XPath rules, ignoring the
            // picture string except for a `#.00`-style fraction count.
            if arity < 2 {
                return err_arity("2 or 3");
            }
            let n = num_arg(0);
            let picture = str_arg(1);
            let s = if let Some(frac) = picture.split('.').nth(1) {
                format!("{:.*}", frac.len(), n)
            } else {
                num_to_string(n)
            };
            Ok(Value::Str(s))
        }
        _ => Err(XPathError(format!("unknown function {name}()"))),
    }
}

/// XPath 1.0 `substring` semantics: 1-based, `round()` applied to both
/// arguments, NaN anywhere selects nothing.
fn xpath_substring(chars: &[char], start: f64, len: f64) -> String {
    let round = |x: f64| if x.is_nan() { f64::NAN } else { (x + 0.5).floor() };
    let start = round(start);
    let end = if len.is_infinite() { f64::INFINITY } else { start + round(len) };
    if start.is_nan() || end.is_nan() {
        return String::new();
    }
    chars
        .iter()
        .enumerate()
        .filter(|(i, _)| {
            let pos = (*i + 1) as f64;
            pos >= start && pos < end
        })
        .map(|(_, c)| *c)
        .collect()
}

#[cfg(test)]
mod tests {
    use crate::eval::{evaluate_str, Ctx, Env};
    use crate::value::Value;
    use xsltdb_xml::parse::parse;
    use xsltdb_xml::NodeId;

    fn eval(src: &str) -> Value {
        let doc = parse("<r><a>one</a><a>two</a><n>5</n></r>").unwrap();
        let env = Env::default();
        let ctx = Ctx::new(&doc, NodeId::DOCUMENT, &env);
        evaluate_str(src, &ctx).unwrap()
    }

    fn eval_s(src: &str) -> String {
        match eval(src) {
            Value::Str(s) => s,
            other => panic!("expected string, got {other:?}"),
        }
    }

    #[test]
    fn count_and_sum() {
        assert_eq!(eval("count(//a)"), Value::Num(2.0));
        assert_eq!(eval("sum(//n)"), Value::Num(5.0));
        assert!(eval("sum(//a)").number(&parse("<x/>").unwrap()).is_nan());
    }

    #[test]
    fn string_functions() {
        assert_eq!(eval_s("concat('a', 'b', 'c')"), "abc");
        assert_eq!(eval("starts-with('hello', 'he')"), Value::Bool(true));
        assert_eq!(eval("contains('hello', 'ell')"), Value::Bool(true));
        assert_eq!(eval_s("substring-before('1999/04/01', '/')"), "1999");
        assert_eq!(eval_s("substring-after('1999/04/01', '/')"), "04/01");
        assert_eq!(eval_s("normalize-space('  a   b  ')"), "a b");
        assert_eq!(eval_s("translate('bar', 'abc', 'ABC')"), "BAr");
        assert_eq!(eval_s("translate('--aaa--', 'abc-', 'ABC')"), "AAA");
    }

    #[test]
    fn substring_spec_examples() {
        assert_eq!(eval_s("substring('12345', 2, 3)"), "234");
        assert_eq!(eval_s("substring('12345', 2)"), "2345");
        assert_eq!(eval_s("substring('12345', 1.5, 2.6)"), "234");
        assert_eq!(eval_s("substring('12345', 0, 3)"), "12");
        assert_eq!(eval_s("substring('12345', 0 div 0, 3)"), "");
        assert_eq!(eval_s("substring('12345', -42, 1 div 0)"), "12345");
    }

    #[test]
    fn number_functions() {
        assert_eq!(eval("floor(2.6)"), Value::Num(2.0));
        assert_eq!(eval("ceiling(2.1)"), Value::Num(3.0));
        assert_eq!(eval("round(2.5)"), Value::Num(3.0));
        assert_eq!(eval("round(-2.5)"), Value::Num(-2.0));
        assert_eq!(eval("number('7')"), Value::Num(7.0));
    }

    #[test]
    fn boolean_functions() {
        assert_eq!(eval("not(false())"), Value::Bool(true));
        assert_eq!(eval("boolean(//a)"), Value::Bool(true));
        assert_eq!(eval("boolean(//zzz)"), Value::Bool(false));
    }

    #[test]
    fn name_functions() {
        assert_eq!(eval_s("name(//a)"), "a");
        assert_eq!(eval_s("local-name(//a)"), "a");
        assert_eq!(eval_s("name(//zzz)"), "");
    }

    #[test]
    fn string_length_counts_chars() {
        assert_eq!(eval("string-length('héllo')"), Value::Num(5.0));
    }

    #[test]
    fn generate_id_unique_per_node() {
        let a = eval_s("generate-id(//a[1])");
        let b = eval_s("generate-id(//a[2])");
        assert_ne!(a, b);
        assert!(a.starts_with("id"));
    }

    #[test]
    fn unknown_function_errors() {
        let doc = parse("<x/>").unwrap();
        let env = Env::default();
        let ctx = Ctx::new(&doc, NodeId::DOCUMENT, &env);
        assert!(evaluate_str("bogus()", &ctx).is_err());
    }

    #[test]
    fn wrong_arity_errors() {
        let doc = parse("<x/>").unwrap();
        let env = Env::default();
        let ctx = Ctx::new(&doc, NodeId::DOCUMENT, &env);
        assert!(evaluate_str("count()", &ctx).is_err());
        assert!(evaluate_str("concat('a')", &ctx).is_err());
    }

    #[test]
    fn format_number_minimal() {
        assert_eq!(eval_s("format-number(2.345, '#.00')"), "2.35"); // rounded to 2 places
        assert_eq!(eval_s("format-number(2, '#')"), "2");
    }
}
