//! XPath 1.0 abstract syntax.

use std::fmt;

/// Binary operators, in XPath precedence groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Or,
    And,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Union,
}

impl BinOp {
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Or => "or",
            BinOp::And => "and",
            BinOp::Eq => "=",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "div",
            BinOp::Mod => "mod",
            BinOp::Union => "|",
        }
    }

    /// True for comparison operators — the ones whose predicates the partial
    /// evaluator treats as value-dependent residuals.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// XPath axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    Child,
    Descendant,
    DescendantOrSelf,
    Parent,
    Ancestor,
    AncestorOrSelf,
    FollowingSibling,
    PrecedingSibling,
    Following,
    Preceding,
    SelfAxis,
    Attribute,
}

impl Axis {
    /// Reverse axes number their positions in reverse document order.
    pub fn is_reverse(self) -> bool {
        matches!(
            self,
            Axis::Parent | Axis::Ancestor | Axis::AncestorOrSelf | Axis::Preceding | Axis::PrecedingSibling
        )
    }

    pub fn name(self) -> &'static str {
        match self {
            Axis::Child => "child",
            Axis::Descendant => "descendant",
            Axis::DescendantOrSelf => "descendant-or-self",
            Axis::Parent => "parent",
            Axis::Ancestor => "ancestor",
            Axis::AncestorOrSelf => "ancestor-or-self",
            Axis::FollowingSibling => "following-sibling",
            Axis::PrecedingSibling => "preceding-sibling",
            Axis::Following => "following",
            Axis::Preceding => "preceding",
            Axis::SelfAxis => "self",
            Axis::Attribute => "attribute",
        }
    }

    pub fn from_name(name: &str) -> Option<Axis> {
        Some(match name {
            "child" => Axis::Child,
            "descendant" => Axis::Descendant,
            "descendant-or-self" => Axis::DescendantOrSelf,
            "parent" => Axis::Parent,
            "ancestor" => Axis::Ancestor,
            "ancestor-or-self" => Axis::AncestorOrSelf,
            "following-sibling" => Axis::FollowingSibling,
            "preceding-sibling" => Axis::PrecedingSibling,
            "following" => Axis::Following,
            "preceding" => Axis::Preceding,
            "self" => Axis::SelfAxis,
            "attribute" => Axis::Attribute,
            _ => return None,
        })
    }
}

/// Node tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeTest {
    /// `name` or `prefix:name`.
    Name { prefix: Option<String>, local: String },
    /// `*`
    Star,
    /// `prefix:*`
    PrefixStar(String),
    /// `text()`
    Text,
    /// `comment()`
    Comment,
    /// `node()`
    Node,
    /// `processing-instruction()` with optional target literal.
    Pi(Option<String>),
}

impl fmt::Display for NodeTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeTest::Name { prefix: Some(p), local } => write!(f, "{p}:{local}"),
            NodeTest::Name { prefix: None, local } => write!(f, "{local}"),
            NodeTest::Star => write!(f, "*"),
            NodeTest::PrefixStar(p) => write!(f, "{p}:*"),
            NodeTest::Text => write!(f, "text()"),
            NodeTest::Comment => write!(f, "comment()"),
            NodeTest::Node => write!(f, "node()"),
            NodeTest::Pi(Some(t)) => write!(f, "processing-instruction('{t}')"),
            NodeTest::Pi(None) => write!(f, "processing-instruction()"),
        }
    }
}

/// One location step.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    pub axis: Axis,
    pub test: NodeTest,
    pub predicates: Vec<Expr>,
}

impl Step {
    pub fn child(local: &str) -> Step {
        Step {
            axis: Axis::Child,
            test: NodeTest::Name { prefix: None, local: local.to_string() },
            predicates: Vec::new(),
        }
    }

    pub fn self_node() -> Step {
        Step { axis: Axis::SelfAxis, test: NodeTest::Node, predicates: Vec::new() }
    }

    pub fn descendant_or_self_node() -> Step {
        Step { axis: Axis::DescendantOrSelf, test: NodeTest::Node, predicates: Vec::new() }
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.axis, &self.test) {
            (Axis::SelfAxis, NodeTest::Node) if self.predicates.is_empty() => {
                return write!(f, ".")
            }
            (Axis::Parent, NodeTest::Node) if self.predicates.is_empty() => {
                return write!(f, "..")
            }
            _ => {}
        }
        match self.axis {
            Axis::Child => write!(f, "{}", self.test)?,
            Axis::Attribute => write!(f, "@{}", self.test)?,
            a => write!(f, "{}::{}", a.name(), self.test)?,
        }
        for p in &self.predicates {
            write!(f, "[{p}]")?;
        }
        Ok(())
    }
}

/// A location path.
#[derive(Debug, Clone, PartialEq)]
pub struct LocationPath {
    /// Starts at the document root (`/...`).
    pub absolute: bool,
    pub steps: Vec<Step>,
}

impl LocationPath {
    /// Relative path of child steps from local names: `a/b/c`.
    pub fn relative(names: &[&str]) -> LocationPath {
        LocationPath {
            absolute: false,
            steps: names.iter().map(|n| Step::child(n)).collect(),
        }
    }
}

impl fmt::Display for LocationPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        if self.absolute {
            s.push('/');
        }
        let mut first = true;
        let mut i = 0;
        while i < self.steps.len() {
            let st = &self.steps[i];
            // Render descendant-or-self::node() followed by another step as
            // the `//` abbreviation when a separator position allows it.
            let collapsible = st.axis == Axis::DescendantOrSelf
                && st.test == NodeTest::Node
                && st.predicates.is_empty()
                && i + 1 < self.steps.len()
                && (!first || self.absolute);
            if collapsible {
                if first {
                    s.push('/'); // together with the absolute `/` this is `//`
                } else {
                    s.push_str("//");
                }
                i += 1;
                s.push_str(&self.steps[i].to_string());
                first = false;
                i += 1;
                continue;
            }
            if !first {
                s.push('/');
            }
            s.push_str(&st.to_string());
            first = false;
            i += 1;
        }
        write!(f, "{s}")
    }
}

/// XPath expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Binary(BinOp, Box<Expr>, Box<Expr>),
    Neg(Box<Expr>),
    Path(LocationPath),
    /// A primary expression filtered by predicates and optionally followed
    /// by further location steps: `$x[1]/emp`.
    Filter { primary: Box<Expr>, predicates: Vec<Expr>, steps: Vec<Step> },
    Literal(String),
    Number(f64),
    Var(String),
    Call(String, Vec<Expr>),
}

impl Expr {
    /// Convenience: does this expression syntactically contain a comparison,
    /// arithmetic, literal, or value function anywhere? Used by the partial
    /// evaluator to classify predicates as value-dependent (residual) versus
    /// purely structural.
    pub fn is_value_dependent(&self) -> bool {
        match self {
            Expr::Binary(op, a, b) => {
                op.is_comparison()
                    || matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod)
                    || a.is_value_dependent()
                    || b.is_value_dependent()
            }
            Expr::Neg(_) | Expr::Literal(_) | Expr::Number(_) => true,
            Expr::Path(_) => false,
            Expr::Filter { primary, predicates, .. } => {
                primary.is_value_dependent()
                    || predicates.iter().any(|p| p.is_value_dependent())
            }
            Expr::Var(_) => false,
            Expr::Call(name, args) => {
                // position()/last() are positional, not value-dependent.
                !(name == "position" || name == "last")
                    || args.iter().any(|a| a.is_value_dependent())
            }
        }
    }

    /// If the expression is a simple relative child path (`a/b/c`), return
    /// the local names.
    pub fn as_simple_child_path(&self) -> Option<Vec<&str>> {
        match self {
            Expr::Path(p) if !p.absolute => {
                let mut names = Vec::with_capacity(p.steps.len());
                for s in &p.steps {
                    if s.axis != Axis::Child || !s.predicates.is_empty() {
                        return None;
                    }
                    match &s.test {
                        NodeTest::Name { prefix: None, local } => names.push(local.as_str()),
                        _ => return None,
                    }
                }
                Some(names)
            }
            _ => None,
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Binary(op, a, b) => write!(f, "{a} {} {b}", op.symbol()),
            Expr::Neg(e) => write!(f, "-{e}"),
            Expr::Path(p) => write!(f, "{p}"),
            Expr::Filter { primary, predicates, steps } => {
                // Parenthesize composite primaries.
                match **primary {
                    Expr::Var(_) | Expr::Literal(_) | Expr::Number(_) | Expr::Call(..) => {
                        write!(f, "{primary}")?
                    }
                    _ => write!(f, "({primary})")?,
                }
                for p in predicates {
                    write!(f, "[{p}]")?;
                }
                for s in steps {
                    write!(f, "/{s}")?;
                }
                Ok(())
            }
            Expr::Literal(s) => {
                if s.contains('\'') {
                    write!(f, "\"{s}\"")
                } else {
                    write!(f, "'{s}'")
                }
            }
            Expr::Number(n) => write!(f, "{}", crate::value::num_to_string(*n)),
            Expr::Var(v) => write!(f, "${v}"),
            Expr::Call(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_simple_path() {
        let p = LocationPath::relative(&["dept", "emp"]);
        assert_eq!(p.to_string(), "dept/emp");
    }

    #[test]
    fn display_absolute() {
        let p = LocationPath { absolute: true, steps: vec![Step::child("dept")] };
        assert_eq!(Expr::Path(p).to_string(), "/dept");
    }

    #[test]
    fn value_dependent_classification() {
        use crate::parser::parse_expr;
        assert!(parse_expr("sal > 2000").unwrap().is_value_dependent());
        assert!(parse_expr(". = 3456").unwrap().is_value_dependent());
        assert!(!parse_expr("dname").unwrap().is_value_dependent());
        assert!(!parse_expr("position()").unwrap().is_value_dependent());
        assert!(parse_expr("2").unwrap().is_value_dependent());
    }

    #[test]
    fn simple_child_path_extraction() {
        use crate::parser::parse_expr;
        let e = parse_expr("employees/emp").unwrap();
        assert_eq!(e.as_simple_child_path().unwrap(), vec!["employees", "emp"]);
        assert!(parse_expr("//emp").unwrap().as_simple_child_path().is_none());
        assert!(parse_expr("emp[1]").unwrap().as_simple_child_path().is_none());
    }
}
