//! XSLT 1.0 match patterns.
//!
//! A pattern is a restricted XPath (child/attribute axes, `/` and `//`
//! separators, optional leading `/`), matched right-to-left against a node.
//! Default priorities follow XSLT 1.0 §5.5.

use crate::ast::{Axis, Expr, NodeTest};
use crate::axes::test_matches;
use crate::eval::{evaluate, Ctx, XPathError};
use crate::lexer::{tokenize, Tok};
use crate::parser::{XPathParseError, P};
use crate::value::Value;
use std::fmt;
use xsltdb_xml::{Document, NodeId, NodeKind};

/// How a pattern step relates to the step on its left.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Link {
    /// `/` separator: the previous step must match the parent. For the
    /// first step of an absolute pattern it anchors to the document root.
    Child,
    /// `//` separator: the previous step must match some ancestor. For the
    /// first step it leaves the ancestry unconstrained.
    Descendant,
}

/// One step of a path pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternStep {
    /// `Child` or `Attribute` only (enforced by the parser).
    pub axis: Axis,
    pub test: NodeTest,
    pub predicates: Vec<Expr>,
    pub link: Link,
}

/// A single alternative of a pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct PathPattern {
    /// Anchored at the document root (`/...` or the bare `/`).
    pub absolute: bool,
    /// Steps in path order; empty only for the bare `/` root pattern.
    pub steps: Vec<PatternStep>,
}

impl PathPattern {
    /// Default priority per XSLT 1.0 §5.5.
    pub fn default_priority(&self) -> f64 {
        if self.steps.len() != 1 || self.absolute {
            return 0.5;
        }
        let s = &self.steps[0];
        if !s.predicates.is_empty() {
            return 0.5;
        }
        match &s.test {
            NodeTest::Name { .. } | NodeTest::Pi(Some(_)) => 0.0,
            NodeTest::PrefixStar(_) => -0.25,
            NodeTest::Star | NodeTest::Text | NodeTest::Comment | NodeTest::Node
            | NodeTest::Pi(None) => -0.5,
        }
    }
}

/// A full match pattern: one or more `|`-separated alternatives.
#[derive(Debug, Clone, PartialEq)]
pub struct Pattern {
    pub alternatives: Vec<PathPattern>,
}

impl Pattern {
    /// Parse a pattern from its textual form.
    pub fn parse(input: &str) -> Result<Pattern, XPathParseError> {
        let toks = tokenize(input)?;
        let mut p = P { toks, pos: 0 };
        let mut alternatives = vec![parse_path_pattern(&mut p)?];
        while p.eat(&Tok::Pipe) {
            alternatives.push(parse_path_pattern(&mut p)?);
        }
        if p.pos != p.toks.len() {
            return Err(p.err("unexpected trailing tokens in pattern"));
        }
        Ok(Pattern { alternatives })
    }

    /// Does `node` match this pattern? `env`/predicates are evaluated with
    /// the node as context.
    pub fn matches(&self, doc: &Document, node: NodeId, env: &crate::eval::Env<'_>) -> bool {
        self.alternatives.iter().any(|pp| path_matches(pp, doc, node, env))
    }

    /// The highest default priority among matching alternatives would be the
    /// fully correct answer; for whole-pattern priority (used when the
    /// stylesheet does not split alternatives) we take the maximum.
    pub fn default_priority(&self) -> f64 {
        self.alternatives
            .iter()
            .map(|a| a.default_priority())
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, alt) in self.alternatives.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            if alt.steps.is_empty() {
                write!(f, "/")?;
                continue;
            }
            for (j, s) in alt.steps.iter().enumerate() {
                match (j, s.link, alt.absolute) {
                    (0, Link::Child, true) => write!(f, "/")?,
                    (0, Link::Descendant, true) => write!(f, "//")?,
                    (0, _, false) => {}
                    (_, Link::Child, _) => write!(f, "/")?,
                    (_, Link::Descendant, _) => write!(f, "//")?,
                }
                if s.axis == Axis::Attribute {
                    write!(f, "@")?;
                }
                write!(f, "{}", s.test)?;
                for p in &s.predicates {
                    write!(f, "[{p}]")?;
                }
            }
        }
        Ok(())
    }
}

fn parse_path_pattern(p: &mut P) -> Result<PathPattern, XPathParseError> {
    let mut absolute = false;
    let mut first_link = Link::Descendant; // relative patterns are unanchored
    if p.eat(&Tok::DSlash) {
        absolute = true;
        first_link = Link::Descendant;
    } else if p.eat(&Tok::Slash) {
        absolute = true;
        first_link = Link::Child;
        // Bare `/` pattern.
        if !matches!(p.peek(), Some(Tok::Name(_) | Tok::Star | Tok::At)) {
            return Ok(PathPattern { absolute: true, steps: Vec::new() });
        }
    }
    let mut steps = Vec::new();
    let step = p.step()?;
    validate_pattern_axis(p, step.axis)?;
    steps.push(PatternStep {
        axis: step.axis,
        test: step.test,
        predicates: step.predicates,
        link: first_link,
    });
    loop {
        let link = if p.eat(&Tok::DSlash) {
            Link::Descendant
        } else if p.eat(&Tok::Slash) {
            Link::Child
        } else {
            break;
        };
        let step = p.step()?;
        validate_pattern_axis(p, step.axis)?;
        steps.push(PatternStep {
            axis: step.axis,
            test: step.test,
            predicates: step.predicates,
            link,
        });
    }
    Ok(PathPattern { absolute, steps })
}

fn validate_pattern_axis(p: &P, axis: Axis) -> Result<(), XPathParseError> {
    match axis {
        Axis::Child | Axis::Attribute => Ok(()),
        // `.` inside compiled built-in patterns is tolerated as self.
        other => Err(p.err(format!(
            "axis `{}` is not allowed in a match pattern",
            other.name()
        ))),
    }
}

fn path_matches(
    pp: &PathPattern,
    doc: &Document,
    node: NodeId,
    env: &crate::eval::Env<'_>,
) -> bool {
    if pp.steps.is_empty() {
        // The `/` pattern matches the document node only.
        return pp.absolute && node == NodeId::DOCUMENT;
    }
    match_from(pp, pp.steps.len() - 1, doc, node, env)
}

fn match_from(
    pp: &PathPattern,
    idx: usize,
    doc: &Document,
    node: NodeId,
    env: &crate::eval::Env<'_>,
) -> bool {
    let step = &pp.steps[idx];
    if !step_matches(doc, node, step, env) {
        return false;
    }
    let parent = doc.parent(node);
    if idx == 0 {
        return match (pp.absolute, step.link) {
            // `/name`: parent must be the document node.
            (true, Link::Child) => parent == Some(NodeId::DOCUMENT),
            // `//name` or relative pattern: anywhere.
            _ => true,
        };
    }
    match step.link {
        Link::Child => match parent {
            Some(par) => match_from(pp, idx - 1, doc, par, env),
            None => false,
        },
        Link::Descendant => {
            let mut cur = parent;
            while let Some(a) = cur {
                if match_from(pp, idx - 1, doc, a, env) {
                    return true;
                }
                cur = doc.parent(a);
            }
            false
        }
    }
}

fn step_matches(
    doc: &Document,
    node: NodeId,
    step: &PatternStep,
    env: &crate::eval::Env<'_>,
) -> bool {
    // The node kind must suit the axis: attribute steps match attribute
    // nodes, child steps match non-attribute, non-document nodes (per XSLT
    // 1.0, `node()` as a pattern never matches the root — only the `/`
    // pattern does).
    match (step.axis, doc.kind(node)) {
        (Axis::Attribute, NodeKind::Attribute { .. }) => {}
        (Axis::Attribute, _) => return false,
        (_, NodeKind::Attribute { .. }) => return false,
        (_, NodeKind::Document) => return false,
        _ => {}
    }
    if !test_matches(doc, node, step.axis, &step.test) {
        return false;
    }
    if step.predicates.is_empty() {
        return true;
    }
    if env.assume_predicates {
        // Partial-evaluation mode: predicates are residual and assumed true.
        return true;
    }
    // Predicate context: position among like-matching siblings in document
    // order, size = number of such siblings.
    let (position, size) = match doc.parent(node) {
        Some(par) if step.axis == Axis::Child => {
            let siblings: Vec<NodeId> = doc
                .children(par)
                .filter(|&c| test_matches(doc, c, step.axis, &step.test))
                .collect();
            let pos = siblings.iter().position(|&c| c == node).map(|i| i + 1).unwrap_or(1);
            (pos, siblings.len())
        }
        _ => (1, 1),
    };
    let ctx = Ctx { doc, node, position, size, env };
    step.predicates.iter().all(|pred| {
        match evaluate(pred, &ctx) {
            Ok(Value::Num(x)) => position as f64 == x,
            Ok(v) => v.boolean(),
            Err(XPathError(_)) => false,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Env;
    use xsltdb_xml::parse::parse;

    fn doc() -> Document {
        parse(
            r#"<dept no="10"><dname>A</dname><employees>
               <emp><empno>1</empno><sal>100</sal></emp>
               <emp><empno>3456</empno><sal>900</sal></emp>
               </employees></dept>"#,
        )
        .unwrap()
    }

    fn matches(pattern: &str, doc: &Document, node: NodeId) -> bool {
        let p = Pattern::parse(pattern).unwrap();
        p.matches(doc, node, &Env::default())
    }

    #[test]
    fn name_pattern() {
        let d = doc();
        let dept = d.root_element().unwrap();
        assert!(matches("dept", &d, dept));
        assert!(!matches("emp", &d, dept));
    }

    #[test]
    fn root_pattern() {
        let d = doc();
        assert!(matches("/", &d, NodeId::DOCUMENT));
        assert!(!matches("/", &d, d.root_element().unwrap()));
    }

    #[test]
    fn absolute_pattern_anchors() {
        let d = doc();
        let dept = d.root_element().unwrap();
        let dname = d.child_element(dept, "dname").unwrap();
        assert!(matches("/dept", &d, dept));
        assert!(!matches("/dname", &d, dname));
        assert!(matches("/dept/dname", &d, dname));
    }

    #[test]
    fn multi_step_pattern() {
        let d = doc();
        let dept = d.root_element().unwrap();
        let emps = d.child_element(dept, "employees").unwrap();
        let emp = d.child_element(emps, "emp").unwrap();
        let empno = d.child_element(emp, "empno").unwrap();
        assert!(matches("emp/empno", &d, empno));
        assert!(!matches("dept/empno", &d, empno));
        assert!(matches("dept//empno", &d, empno));
        assert!(!matches("dname//empno", &d, empno));
    }

    #[test]
    fn predicate_pattern() {
        let d = doc();
        let dept = d.root_element().unwrap();
        let emps = d.child_element(dept, "employees").unwrap();
        let all: Vec<NodeId> = d.child_elements(emps, "emp").collect();
        let empno1 = d.child_element(all[0], "empno").unwrap();
        let empno2 = d.child_element(all[1], "empno").unwrap();
        assert!(!matches("emp/empno[. = 3456]", &d, empno1));
        assert!(matches("emp/empno[. = 3456]", &d, empno2));
    }

    #[test]
    fn positional_predicate_pattern() {
        let d = doc();
        let dept = d.root_element().unwrap();
        let emps = d.child_element(dept, "employees").unwrap();
        let all: Vec<NodeId> = d.child_elements(emps, "emp").collect();
        assert!(matches("emp[1]", &d, all[0]));
        assert!(!matches("emp[1]", &d, all[1]));
        assert!(matches("emp[2]", &d, all[1]));
    }

    #[test]
    fn attribute_pattern() {
        let d = doc();
        let dept = d.root_element().unwrap();
        let attr = d.attributes(dept)[0];
        assert!(matches("@no", &d, attr));
        assert!(matches("dept/@no", &d, attr));
        assert!(!matches("@other", &d, attr));
        assert!(!matches("no", &d, attr));
    }

    #[test]
    fn union_pattern() {
        let d = doc();
        let dept = d.root_element().unwrap();
        let dname = d.child_element(dept, "dname").unwrap();
        assert!(matches("dname | loc", &d, dname));
        assert!(matches("loc | dname", &d, dname));
        assert!(!matches("loc | x", &d, dname));
    }

    #[test]
    fn text_and_wildcard_patterns() {
        let d = doc();
        let dept = d.root_element().unwrap();
        let dname = d.child_element(dept, "dname").unwrap();
        let text = d.children(dname).next().unwrap();
        assert!(matches("text()", &d, text));
        assert!(matches("*", &d, dname));
        assert!(!matches("*", &d, text));
        assert!(matches("node()", &d, text));
    }

    #[test]
    fn default_priorities() {
        let pri = |s: &str| Pattern::parse(s).unwrap().default_priority();
        assert_eq!(pri("dept"), 0.0);
        assert_eq!(pri("*"), -0.5);
        assert_eq!(pri("text()"), -0.5);
        assert_eq!(pri("node()"), -0.5);
        assert_eq!(pri("h:*"), -0.25);
        assert_eq!(pri("emp/empno"), 0.5);
        assert_eq!(pri("emp[1]"), 0.5);
        assert_eq!(pri("/"), 0.5);
        assert_eq!(pri("dept | *"), 0.0); // max of alternatives
    }

    #[test]
    fn pe_mode_assumes_pattern_predicates() {
        let d = doc();
        let dept = d.root_element().unwrap();
        let emps = d.child_element(dept, "employees").unwrap();
        let emp = d.child_element(emps, "emp").unwrap();
        let empno = d.child_element(emp, "empno").unwrap();
        let p = Pattern::parse("emp/empno[. = 999999]").unwrap();
        let mut env = Env::default();
        assert!(!p.matches(&d, empno, &env));
        env.assume_predicates = true;
        assert!(p.matches(&d, empno, &env));
    }

    #[test]
    fn rejects_bad_axes() {
        assert!(Pattern::parse("ancestor::x").is_err());
        assert!(Pattern::parse("..").is_err());
    }

    #[test]
    fn display_roundtrip() {
        for s in ["dept", "/", "/dept/dname", "emp/empno[. = 3456]", "a | b", "//emp", "@no", "dept/@no"] {
            let p1 = Pattern::parse(s).unwrap();
            let printed = p1.to_string();
            let p2 = Pattern::parse(&printed).unwrap();
            assert_eq!(p1, p2, "roundtrip failed for {s} -> {printed}");
        }
    }
}
