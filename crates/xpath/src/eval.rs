//! The XPath 1.0 evaluator.

// Guard-bearing hot path: a stray unwrap here is a latent panic the
// pipeline would have to contain at a tier boundary. Keep it impossible.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use crate::ast::{BinOp, Expr, LocationPath, Step};
use crate::axes::{axis_nodes, test_matches};
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;
use xsltdb_xml::{Document, Guard, GuardExceeded, NodeId};

/// Evaluation error.
#[derive(Debug, Clone, PartialEq)]
pub struct XPathError(pub String);

impl fmt::Display for XPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XPath error: {}", self.0)
    }
}

impl std::error::Error for XPathError {}

/// Surface a guard trip as this engine's native error type; the structured
/// [`GuardExceeded`] stays recorded on the guard for the pipeline to read.
fn guard_err(e: GuardExceeded) -> XPathError {
    XPathError(e.to_string())
}

/// Variable bindings visible to an expression.
pub trait VarResolver {
    fn resolve(&self, name: &str) -> Option<Value>;
}

/// The empty variable environment.
pub struct NoVars;

impl VarResolver for NoVars {
    fn resolve(&self, _name: &str) -> Option<Value> {
        None
    }
}

impl VarResolver for HashMap<String, Value> {
    fn resolve(&self, name: &str) -> Option<Value> {
        self.get(name).cloned()
    }
}

/// Ambient evaluation environment shared across an expression tree.
pub struct Env<'a> {
    pub vars: &'a dyn VarResolver,
    /// The XSLT `current()` node, when evaluated from a stylesheet.
    pub current: Option<NodeId>,
    /// Partial-evaluation mode (paper section 4.1): every predicate is
    /// assumed true and becomes a *residual* in the generated XQuery.
    pub assume_predicates: bool,
    /// Resource budgets charged while evaluating; unlimited by default.
    pub guard: Guard,
}

impl<'a> Env<'a> {
    pub fn with_vars(vars: &'a dyn VarResolver) -> Self {
        Env { vars, current: None, assume_predicates: false, guard: Guard::unlimited() }
    }
}

impl Default for Env<'static> {
    fn default() -> Self {
        Env { vars: &NoVars, current: None, assume_predicates: false, guard: Guard::unlimited() }
    }
}

/// Dynamic evaluation context: document, context node, position and size.
pub struct Ctx<'a> {
    pub doc: &'a Document,
    pub node: NodeId,
    pub position: usize,
    pub size: usize,
    pub env: &'a Env<'a>,
}

impl<'a> Ctx<'a> {
    pub fn new(doc: &'a Document, node: NodeId, env: &'a Env<'a>) -> Self {
        Ctx { doc, node, position: 1, size: 1, env }
    }

    fn at(&self, node: NodeId, position: usize, size: usize) -> Ctx<'a> {
        Ctx { doc: self.doc, node, position, size, env: self.env }
    }
}

/// Evaluate a parsed expression in a context.
pub fn evaluate(expr: &Expr, ctx: &Ctx<'_>) -> Result<Value, XPathError> {
    ctx.env.guard.charge(1).map_err(guard_err)?;
    match expr {
        Expr::Number(n) => Ok(Value::Num(*n)),
        Expr::Literal(s) => Ok(Value::Str(s.clone())),
        Expr::Var(name) => ctx
            .env
            .vars
            .resolve(name)
            .ok_or_else(|| XPathError(format!("undefined variable ${name}"))),
        Expr::Neg(e) => {
            let v = evaluate(e, ctx)?;
            Ok(Value::Num(-v.number(ctx.doc)))
        }
        Expr::Path(p) => eval_path(p, ctx).map(Value::NodeSet),
        Expr::Filter { primary, predicates, steps } => {
            let base = evaluate(primary, ctx)?;
            let mut nodes = base
                .into_nodeset("filter expression")
                .map_err(XPathError)?;
            for pred in predicates {
                nodes = filter_by_predicate(nodes, pred, ctx, false)?;
            }
            if steps.is_empty() {
                return Ok(Value::NodeSet(nodes));
            }
            eval_steps(steps, nodes, ctx).map(Value::NodeSet)
        }
        Expr::Call(name, args) => crate::functions::call(name, args, ctx),
        Expr::Binary(op, l, r) => eval_binary(*op, l, r, ctx),
    }
}

/// Evaluate an expression parsed from `src` — convenience for tests and
/// simple callers.
pub fn evaluate_str(src: &str, ctx: &Ctx<'_>) -> Result<Value, XPathError> {
    let e = crate::parser::parse_expr(src).map_err(|e| XPathError(e.to_string()))?;
    evaluate(&e, ctx)
}

fn eval_binary(op: BinOp, l: &Expr, r: &Expr, ctx: &Ctx<'_>) -> Result<Value, XPathError> {
    match op {
        BinOp::Or => {
            if evaluate(l, ctx)?.boolean() {
                return Ok(Value::Bool(true));
            }
            Ok(Value::Bool(evaluate(r, ctx)?.boolean()))
        }
        BinOp::And => {
            if !evaluate(l, ctx)?.boolean() {
                return Ok(Value::Bool(false));
            }
            Ok(Value::Bool(evaluate(r, ctx)?.boolean()))
        }
        BinOp::Union => {
            let a = evaluate(l, ctx)?.into_nodeset("union operand").map_err(XPathError)?;
            let b = evaluate(r, ctx)?.into_nodeset("union operand").map_err(XPathError)?;
            let mut v = a;
            v.extend(b);
            v.sort();
            v.dedup();
            Ok(Value::NodeSet(v))
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
            let a = evaluate(l, ctx)?.number(ctx.doc);
            let b = evaluate(r, ctx)?.number(ctx.doc);
            let n = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a / b,
                BinOp::Mod => a % b,
                _ => unreachable!(),
            };
            Ok(Value::Num(n))
        }
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let a = evaluate(l, ctx)?;
            let b = evaluate(r, ctx)?;
            Ok(Value::Bool(compare(op, &a, &b, ctx.doc)))
        }
    }
}

fn num_cmp(op: BinOp, a: f64, b: f64) -> bool {
    match op {
        BinOp::Eq => a == b,
        BinOp::Ne => a != b,
        BinOp::Lt => a < b,
        BinOp::Le => a <= b,
        BinOp::Gt => a > b,
        BinOp::Ge => a >= b,
        _ => unreachable!("not a comparison"),
    }
}

/// The XPath 1.0 comparison matrix (§3.4): node-sets compare existentially.
pub fn compare(op: BinOp, a: &Value, b: &Value, doc: &Document) -> bool {
    use Value::*;
    let equality = matches!(op, BinOp::Eq | BinOp::Ne);
    match (a, b) {
        (NodeSet(x), NodeSet(y)) => {
            if equality {
                let ys: Vec<String> = y.iter().map(|&n| doc.string_value(n)).collect();
                x.iter().any(|&n| {
                    let sv = doc.string_value(n);
                    ys.iter().any(|s| num_cmp_strings(op, &sv, s))
                })
            } else {
                x.iter().any(|&n| {
                    let av = crate::value::str_to_num(&doc.string_value(n));
                    y.iter().any(|&m| {
                        num_cmp(op, av, crate::value::str_to_num(&doc.string_value(m)))
                    })
                })
            }
        }
        // Node-set vs boolean compares boolean(node-set), not per node.
        (NodeSet(_), Bool(rhs)) => num_cmp_bools(op, a.boolean(), *rhs),
        (Bool(lhs), NodeSet(_)) => num_cmp_bools(op, *lhs, b.boolean()),
        (NodeSet(x), other) => x.iter().any(|&n| {
            compare_single(op, &doc.string_value(n), other, false)
        }),
        (other, NodeSet(y)) => y.iter().any(|&n| {
            compare_single(op, &doc.string_value(n), other, true)
        }),
        _ => {
            if equality {
                if matches!(a, Bool(_)) || matches!(b, Bool(_)) {
                    num_cmp_bools(op, a.boolean(), b.boolean())
                } else if matches!(a, Num(_)) || matches!(b, Num(_)) {
                    num_cmp(op, a.number(doc), b.number(doc))
                } else {
                    num_cmp_strings(op, &a.string(doc), &b.string(doc))
                }
            } else {
                num_cmp(op, a.number(doc), b.number(doc))
            }
        }
    }
}

/// Compare a node string-value with a non-node value. `flipped` means the
/// node came from the right operand.
fn compare_single(op: BinOp, sv: &str, other: &Value, flipped: bool) -> bool {
    match other {
        Value::Num(n) => {
            let node_num = crate::value::str_to_num(sv);
            if flipped {
                num_cmp(op, *n, node_num)
            } else {
                num_cmp(op, node_num, *n)
            }
        }
        Value::Str(s) => {
            if matches!(op, BinOp::Eq | BinOp::Ne) {
                num_cmp_strings(op, sv, s)
            } else {
                let node_num = crate::value::str_to_num(sv);
                let sn = crate::value::str_to_num(s);
                if flipped {
                    num_cmp(op, sn, node_num)
                } else {
                    num_cmp(op, node_num, sn)
                }
            }
        }
        Value::Bool(_) | Value::NodeSet(_) => unreachable!("handled by caller"),
    }
}

fn num_cmp_strings(op: BinOp, a: &str, b: &str) -> bool {
    match op {
        BinOp::Eq => a == b,
        BinOp::Ne => a != b,
        _ => num_cmp(op, crate::value::str_to_num(a), crate::value::str_to_num(b)),
    }
}

fn num_cmp_bools(op: BinOp, a: bool, b: bool) -> bool {
    num_cmp(op, a as u8 as f64, b as u8 as f64)
}

/// Evaluate a location path to a document-ordered node-set.
pub fn eval_path(path: &LocationPath, ctx: &Ctx<'_>) -> Result<Vec<NodeId>, XPathError> {
    let start = if path.absolute { vec![NodeId::DOCUMENT] } else { vec![ctx.node] };
    eval_steps(&path.steps, start, ctx)
}

/// Evaluate a sequence of steps from a set of starting nodes.
pub fn eval_steps(
    steps: &[Step],
    start: Vec<NodeId>,
    ctx: &Ctx<'_>,
) -> Result<Vec<NodeId>, XPathError> {
    let mut current = start;
    for step in steps {
        let mut next: Vec<NodeId> = Vec::new();
        for &cn in &current {
            ctx.env.guard.charge(1).map_err(guard_err)?;
            let candidates: Vec<NodeId> = axis_nodes(ctx.doc, cn, step.axis)
                .into_iter()
                .filter(|&n| test_matches(ctx.doc, n, step.axis, &step.test))
                .collect();
            // One fuel unit per candidate the axis surfaced, so `//x//y`
            // blowups are charged even when predicates later discard them.
            ctx.env.guard.charge(candidates.len() as u64).map_err(guard_err)?;
            let filtered = apply_predicates(candidates, &step.predicates, ctx)?;
            next.extend(filtered);
        }
        next.sort();
        next.dedup();
        current = next;
    }
    Ok(current)
}

fn apply_predicates(
    mut nodes: Vec<NodeId>,
    predicates: &[Expr],
    ctx: &Ctx<'_>,
) -> Result<Vec<NodeId>, XPathError> {
    for pred in predicates {
        nodes = filter_by_predicate(nodes, pred, ctx, ctx.env.assume_predicates)?;
    }
    Ok(nodes)
}

/// Filter a candidate list (already in axis/predicate order) by one
/// predicate. A numeric predicate value selects by position.
fn filter_by_predicate(
    nodes: Vec<NodeId>,
    pred: &Expr,
    ctx: &Ctx<'_>,
    assume_true: bool,
) -> Result<Vec<NodeId>, XPathError> {
    if assume_true {
        // Partial-evaluation mode: the predicate is residual; keep all
        // candidates (paper §4.1).
        return Ok(nodes);
    }
    let size = nodes.len();
    let mut out = Vec::with_capacity(nodes.len());
    for (i, n) in nodes.into_iter().enumerate() {
        let sub = ctx.at(n, i + 1, size);
        let v = evaluate(pred, &sub)?;
        let keep = match v {
            Value::Num(x) => (i + 1) as f64 == x,
            other => other.boolean(),
        };
        if keep {
            out.push(n);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsltdb_xml::parse::parse;

    const DOC: &str = r#"<dept>
<dname>ACCOUNTING</dname>
<loc>NEW YORK</loc>
<employees>
<emp><empno>7782</empno><ename>CLARK</ename><sal>2450</sal></emp>
<emp><empno>7934</empno><ename>MILLER</ename><sal>1300</sal></emp>
<emp><empno>7954</empno><ename>SMITH</ename><sal>4900</sal></emp>
</employees>
</dept>"#;

    fn eval(src: &str) -> Value {
        let doc = parse(DOC).unwrap();
        let env = Env::default();
        let ctx = Ctx::new(&doc, NodeId::DOCUMENT, &env);
        // Leak to simplify test lifetimes.
        let v = evaluate_str(src, &ctx).unwrap();
        // Convert node-sets to strings eagerly for assertion convenience.
        v
    }

    fn eval_string(src: &str) -> String {
        let doc = parse(DOC).unwrap();
        let env = Env::default();
        let ctx = Ctx::new(&doc, NodeId::DOCUMENT, &env);
        let v = evaluate_str(src, &ctx).unwrap();
        v.string(&doc)
    }

    fn eval_count(src: &str) -> usize {
        let doc = parse(DOC).unwrap();
        let env = Env::default();
        let ctx = Ctx::new(&doc, NodeId::DOCUMENT, &env);
        match evaluate_str(src, &ctx).unwrap() {
            Value::NodeSet(ns) => ns.len(),
            other => panic!("expected node-set, got {other:?}"),
        }
    }

    #[test]
    fn absolute_child_path() {
        assert_eq!(eval_string("/dept/dname"), "ACCOUNTING");
    }

    #[test]
    fn value_predicate_selects() {
        assert_eq!(eval_count("/dept/employees/emp[sal > 2000]"), 2);
        assert_eq!(
            eval_string("/dept/employees/emp[sal > 2000]/ename"),
            "CLARK"
        );
    }

    #[test]
    fn positional_predicate() {
        assert_eq!(eval_string("/dept/employees/emp[2]/ename"), "MILLER");
        assert_eq!(eval_string("/dept/employees/emp[last()]/ename"), "SMITH");
        assert_eq!(
            eval_string("/dept/employees/emp[position() = 1]/empno"),
            "7782"
        );
    }

    #[test]
    fn descendant_axis() {
        assert_eq!(eval_count("//emp"), 3);
        // 11 value texts + 8 inter-element whitespace texts.
        assert_eq!(eval_count("//text()"), 19);
    }

    #[test]
    fn parent_and_ancestor() {
        assert_eq!(eval_count("//sal/parent::emp"), 3);
        assert_eq!(eval_count("//sal/ancestor::dept"), 1);
        assert_eq!(eval_string("//empno[. = 7934]/../ename"), "MILLER");
    }

    #[test]
    fn union_dedupes_and_orders() {
        assert_eq!(eval_count("/dept/dname | /dept/loc | /dept/dname"), 2);
    }

    #[test]
    fn arithmetic_and_comparison() {
        assert_eq!(eval("1 + 2 * 3"), Value::Num(7.0));
        assert_eq!(eval("10 div 4"), Value::Num(2.5));
        assert_eq!(eval("10 mod 3"), Value::Num(1.0));
        assert_eq!(eval("2 > 1"), Value::Bool(true));
        assert_eq!(eval("1 = 2 or 2 = 2"), Value::Bool(true));
        assert_eq!(eval("-sum(//sal)"), Value::Num(-8650.0));
    }

    #[test]
    fn nodeset_vs_string_equality_is_existential() {
        assert_eq!(eval("//ename = 'CLARK'"), Value::Bool(true));
        assert_eq!(eval("//ename = 'NOBODY'"), Value::Bool(false));
        // != is also existential: some ename differs from CLARK.
        assert_eq!(eval("//ename != 'CLARK'"), Value::Bool(true));
    }

    #[test]
    fn nodeset_vs_number_relational_respects_side() {
        assert_eq!(eval("//sal > 4000"), Value::Bool(true));
        assert_eq!(eval("4000 > //sal"), Value::Bool(true));
        assert_eq!(eval("//sal > 5000"), Value::Bool(false));
        assert_eq!(eval("5000 > //sal"), Value::Bool(true));
    }

    #[test]
    fn filter_expression_with_steps() {
        let doc = parse(DOC).unwrap();
        let env = Env::default();
        let ctx = Ctx::new(&doc, NodeId::DOCUMENT, &env);
        let emps = evaluate_str("/dept/employees", &ctx).unwrap();
        let mut vars = HashMap::new();
        vars.insert("var003".to_string(), emps);
        let env2 = Env::with_vars(&vars);
        let ctx2 = Ctx::new(&doc, NodeId::DOCUMENT, &env2);
        let v = evaluate_str("$var003/emp[sal > 2000]", &ctx2).unwrap();
        assert_eq!(v.as_nodeset().unwrap().len(), 2);
    }

    #[test]
    fn assume_predicates_mode_keeps_all() {
        let doc = parse(DOC).unwrap();
        let env = Env { assume_predicates: true, ..Default::default() };
        let ctx = Ctx::new(&doc, NodeId::DOCUMENT, &env);
        let v = evaluate_str("/dept/employees/emp[sal > 99999]", &ctx).unwrap();
        assert_eq!(v.as_nodeset().unwrap().len(), 3);
    }

    #[test]
    fn undefined_variable_errors() {
        let doc = parse(DOC).unwrap();
        let env = Env::default();
        let ctx = Ctx::new(&doc, NodeId::DOCUMENT, &env);
        assert!(evaluate_str("$nope", &ctx).is_err());
    }

    #[test]
    fn attribute_access() {
        let doc = parse(r#"<t border="2"><tr a="x"/></t>"#).unwrap();
        let env = Env::default();
        let ctx = Ctx::new(&doc, NodeId::DOCUMENT, &env);
        assert_eq!(
            evaluate_str("/t/@border", &ctx).unwrap().string(&doc),
            "2"
        );
        assert_eq!(
            evaluate_str("//@*", &ctx).unwrap().as_nodeset().unwrap().len(),
            2
        );
    }

    #[test]
    fn guard_fuel_trips_on_wide_scan() {
        use xsltdb_xml::guard::{Limits, Resource};
        let doc = parse(DOC).unwrap();
        let guard = Guard::new(Limits::UNLIMITED.with_fuel(5));
        let env = Env { guard: guard.clone(), ..Default::default() };
        let ctx = Ctx::new(&doc, NodeId::DOCUMENT, &env);
        let err = evaluate_str("//text()", &ctx).unwrap_err();
        assert!(err.0.contains("fuel"), "{err}");
        let trip = guard.trip().expect("structured trip recorded");
        assert_eq!(trip.resource, Resource::Fuel);
        assert_eq!(trip.limit, 5);
        assert!(trip.spent > 5);
    }

    #[test]
    fn guard_unlimited_by_default() {
        // The default Env must behave exactly as before ExecGuard.
        assert_eq!(eval_count("//emp"), 3);
    }

    #[test]
    fn predicate_on_attribute() {
        let doc = parse(r#"<r><i k="a">1</i><i k="b">2</i></r>"#).unwrap();
        let env = Env::default();
        let ctx = Ctx::new(&doc, NodeId::DOCUMENT, &env);
        assert_eq!(
            evaluate_str("/r/i[@k = 'b']", &ctx).unwrap().string(&doc),
            "2"
        );
    }
}
