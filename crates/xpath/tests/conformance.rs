//! XPath 1.0 conformance battery beyond the unit tests: axis interplay,
//! predicate numbering on reverse axes, conversion edge cases and operator
//! corner cases.

use xsltdb_xml::parse::parse;
use xsltdb_xml::NodeId;
use xsltdb_xpath::eval::{evaluate_str, Ctx, Env};
use xsltdb_xpath::Value;

const DOC: &str = r#"<book>
<chapter id="c1"><title>One</title><para>a</para><para>b</para></chapter>
<chapter id="c2"><title>Two</title><para>c</para></chapter>
<chapter id="c3"><title>Three</title></chapter>
</book>"#;

fn eval(src: &str) -> Value {
    let doc = parse(DOC).unwrap();
    let env = Env::default();
    let ctx = Ctx::new(&doc, NodeId::DOCUMENT, &env);
    evaluate_str(src, &ctx).unwrap()
}

fn s(src: &str) -> String {
    let doc = parse(DOC).unwrap();
    let env = Env::default();
    let ctx = Ctx::new(&doc, NodeId::DOCUMENT, &env);
    evaluate_str(src, &ctx).unwrap().string(&doc)
}

fn n(src: &str) -> f64 {
    match eval(src) {
        Value::Num(x) => x,
        other => panic!("expected number, got {other:?}"),
    }
}

fn count(src: &str) -> usize {
    match eval(src) {
        Value::NodeSet(v) => v.len(),
        other => panic!("expected node-set, got {other:?}"),
    }
}

#[test]
fn reverse_axis_positions_count_from_nearest() {
    // preceding-sibling::chapter[1] is the nearest preceding chapter.
    assert_eq!(
        s("//chapter[@id = 'c3']/preceding-sibling::chapter[1]/title"),
        "Two"
    );
    assert_eq!(
        s("//chapter[@id = 'c3']/preceding-sibling::chapter[2]/title"),
        "One"
    );
}

#[test]
fn ancestor_or_self_includes_self() {
    // para, its chapter, book.
    assert_eq!(count("//chapter[1]/para[1]/ancestor-or-self::*"), 3);
    // //para[1] selects the first para of each chapter (two nodes), so the
    // merged ancestor-or-self set covers both chapters.
    assert_eq!(count("//para[1]/ancestor-or-self::*"), 5);
}

#[test]
fn following_axis_skips_descendants() {
    // following of the first title: everything after it except its own
    // (empty) subtree: 2 paras + 2 chapters + their content.
    assert_eq!(count("//chapter[1]/title/following::para"), 3);
    assert_eq!(count("//chapter[1]/title/following::chapter"), 2);
}

#[test]
fn positional_predicate_binds_per_parent() {
    // para[1] is the first para of EACH chapter.
    assert_eq!(count("//chapter/para[1]"), 2);
    // (//para)[1]-style global selection needs a filter expression; with
    // the descendant shortcut, the predicate applies per context node.
    assert_eq!(count("//para[1]"), 2);
}

#[test]
fn last_in_predicate() {
    assert_eq!(s("//chapter[last()]/@id"), "c3");
    assert_eq!(s("//chapter[position() = last() - 1]/@id"), "c2");
}

#[test]
fn string_number_boolean_conversions() {
    assert_eq!(n("number(true())"), 1.0);
    assert_eq!(n("number('  12  ')"), 12.0);
    assert!(n("number('')").is_nan());
    assert_eq!(s("string(0.5)"), "0.5");
    assert_eq!(s("string(-0)"), "0");
    assert_eq!(eval("boolean('0')"), Value::Bool(true)); // non-empty string
    assert_eq!(eval("boolean(0)"), Value::Bool(false));
}

#[test]
fn comparison_mixed_types() {
    assert_eq!(eval("'2' = 2"), Value::Bool(true));
    assert_eq!(eval("true() = 1"), Value::Bool(true));
    assert_eq!(eval("true() = 'yes'"), Value::Bool(true)); // boolean('yes')
    assert_eq!(eval("false() = ''"), Value::Bool(true));
}

#[test]
fn arithmetic_with_nan_propagates() {
    assert!(n("'abc' + 1").is_nan());
    assert_eq!(eval("'abc' + 1 > 0"), Value::Bool(false));
    assert_eq!(eval("'abc' + 1 < 0"), Value::Bool(false));
}

#[test]
fn mod_follows_xpath_sign_rules() {
    assert_eq!(n("5 mod 2"), 1.0);
    assert_eq!(n("5 mod -2"), 1.0);
    assert_eq!(n("-5 mod 2"), -1.0);
}

#[test]
fn union_of_different_axes() {
    assert_eq!(count("//title | //para | //chapter/@id"), 9);
}

#[test]
fn wildcard_and_node_tests() {
    assert_eq!(count("/book/*"), 3);
    assert_eq!(count("/book/chapter/node()"), 6); // titles + paras
    assert_eq!(count("//@*"), 3);
}

#[test]
fn nested_predicates() {
    assert_eq!(count("//chapter[para[. = 'c']]"), 1);
    assert_eq!(s("//chapter[para]/title[. = 'One']"), "One");
}

#[test]
fn filter_expression_positional() {
    // A parenthesised node-set re-numbers positions globally.
    assert_eq!(s("(//para)[3]"), "c");
}

#[test]
fn starts_with_and_substring_interplay() {
    assert_eq!(
        eval("starts-with(substring('abcdef', 3), 'cd')"),
        Value::Bool(true)
    );
}

#[test]
fn count_of_empty_is_zero_sum_is_zero() {
    assert_eq!(n("count(//nothing)"), 0.0);
    assert_eq!(n("sum(//nothing)"), 0.0);
}

#[test]
fn relative_path_from_element_context() {
    let doc = parse(DOC).unwrap();
    let book = doc.root_element().unwrap();
    let env = Env::default();
    let ctx = Ctx::new(&doc, book, &env);
    let v = evaluate_str("chapter[2]/title", &ctx).unwrap();
    assert_eq!(v.string(&doc), "Two");
    // `.` is the context element.
    let v = evaluate_str("name(.)", &ctx).unwrap();
    assert_eq!(v.string(&doc), "book");
}

#[test]
fn double_slash_midpath() {
    assert_eq!(count("/book//para"), 3);
    assert_eq!(count("//chapter//text()"), 6);
}

#[test]
fn equality_between_nodesets() {
    // Exists a title equal to some para? No.
    assert_eq!(eval("//title = //para"), Value::Bool(false));
    // Both chapters share no id, but any-pair inequality holds.
    assert_eq!(eval("//chapter/@id != //chapter/@id"), Value::Bool(true));
}
