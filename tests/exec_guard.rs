//! ExecGuard integration suite: resource-budget trips, panic isolation and
//! the fault-injected fallback lattice, end to end through the pipeline.
//!
//! The acceptance bar: infinite template recursion, unbounded FLWOR
//! expansion and an expired wall-clock deadline must each terminate with a
//! structured `GuardExceeded` — no panic, no hang — on every tier, and an
//! injected SQL-tier fault must complete through the VM tier with the
//! fallback chain reported.

use std::time::Duration;
use xsltdb::xqgen::RewriteOptions;
use xsltdb::{
    plan_bound, FaultKind, FaultPoint, Guard, GuardExceeded, Limits, PipelineError,
    Resource, Tier,
};
use xsltdb_relstore::exec::Conjunction;
use xsltdb_relstore::pubexpr::{PubExpr, SqlXmlQuery};
use xsltdb_relstore::{Catalog, ColType, Datum, ExecStats, Table, XmlView};
use xsltdb_xquery::{evaluate_query_guarded, parse_query, NodeHandle};

fn setup() -> (Catalog, XmlView) {
    let mut t = Table::new("t", &[("v", ColType::Int)]);
    for v in [7, 8, 9] {
        t.insert(vec![Datum::Int(v)]).unwrap();
    }
    let mut catalog = Catalog::new();
    catalog.add_table(t);
    let view = XmlView::new(
        "vu",
        SqlXmlQuery {
            base_table: "t".into(),
            where_clause: Conjunction::default(),
            order_by: Vec::new(),
            select: PubExpr::elem("r", vec![PubExpr::elem("v", vec![PubExpr::col("t", "v")])]),
        },
    );
    catalog.add_view(view.clone());
    (catalog, view)
}

fn wrap(body: &str) -> String {
    format!(
        r#"<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">{body}</xsl:stylesheet>"#
    )
}

/// A stylesheet the planner can push all the way to the SQL tier.
const SQL_OK: &str = r#"<xsl:template match="r"><o><xsl:value-of select="v"/></o></xsl:template>"#;
/// substring() has no SQL translation → plans to the XQuery tier.
const XQUERY_ONLY: &str =
    r#"<xsl:template match="r"><o><xsl:value-of select="substring(v, 1, 1)"/></o></xsl:template>"#;
/// generate-id() is not rewritable at all → plans to the VM tier.
const VM_ONLY: &str =
    r#"<xsl:template match="r"><o id="{generate-id(.)}"><xsl:value-of select="v"/></o></xsl:template>"#;
/// A template that re-applies itself to the same node forever.
const INFINITE_RECURSION: &str =
    r#"<xsl:template match="r"><xsl:apply-templates select="."/></xsl:template>"#;

fn expect_guard_trip(r: Result<xsltdb::GuardedRun, PipelineError>, resource: Resource) {
    match r {
        Err(PipelineError::Guard(GuardExceeded { resource: got, .. })) => {
            assert_eq!(got, resource, "tripped the wrong budget");
        }
        Err(other) => panic!("expected a guard trip on {resource:?}, got {other:?}"),
        Ok(run) => panic!(
            "expected a guard trip on {resource:?}, but the {:?} tier succeeded",
            run.tier
        ),
    }
}

// ---------------------------------------------------------------- budgets

#[test]
fn infinite_template_recursion_trips_depth() {
    let (catalog, view) = setup();
    let plan = plan_bound(&catalog, &view, &wrap(INFINITE_RECURSION), &RewriteOptions::default())
        .unwrap();
    // Recursion defeats the SQL rewrite (the straightforward translation
    // keeps its recursive functions), so this planned below the SQL tier.
    assert_ne!(plan.tier(), Tier::Sql);
    let guard = Guard::new(Limits::UNLIMITED.with_max_depth(32));
    let stats = ExecStats::new();
    expect_guard_trip(plan.execute_guarded(&catalog, &stats, &guard), Resource::Depth);
}

#[test]
fn infinite_template_recursion_trips_fuel_when_depth_is_roomy() {
    let (catalog, view) = setup();
    let plan = plan_bound(&catalog, &view, &wrap(INFINITE_RECURSION), &RewriteOptions::default())
        .unwrap();
    // Small enough that the trip fires long before the runaway recursion
    // can exhaust the 2 MiB test-thread stack.
    let guard = Guard::new(Limits::UNLIMITED.with_fuel(120));
    let stats = ExecStats::new();
    expect_guard_trip(plan.execute_guarded(&catalog, &stats, &guard), Resource::Fuel);
}

#[test]
fn infinite_template_recursion_trips_depth_on_vm_tier() {
    // Drive the VM tier directly so the depth budget is exercised on the
    // functional-evaluation path too, not just the planned tier.
    let (catalog, view) = setup();
    let sheet = xsltdb_xslt::compile_str(&wrap(INFINITE_RECURSION)).unwrap();
    let guard = Guard::new(Limits::UNLIMITED.with_max_depth(32));
    let stats = ExecStats::new();
    match xsltdb::no_rewrite_transform_guarded(&catalog, &view, &sheet, &stats, &guard) {
        Err(e) => assert!(e.to_string().contains("depth"), "unexpected error: {e}"),
        Ok(_) => panic!("runaway recursion must not complete"),
    }
    assert_eq!(guard.trip().unwrap().resource, Resource::Depth);
}

#[test]
fn unbounded_flwor_expansion_trips_fuel() {
    // A recursive user function with a FLWOR body — the XQuery-tier shape
    // of runaway work. 200 fuel units stop it after a handful of tuples.
    let q = parse_query(
        "declare function local:spin($s) { for $x in $s return local:spin($s) }; \
         local:spin((1, 2, 3, 4, 5, 6, 7, 8))",
    )
    .unwrap();
    let doc = xsltdb_xml::parse_xml("<r/>").unwrap();
    let guard = Guard::new(Limits::UNLIMITED.with_fuel(200));
    let r = evaluate_query_guarded(&q, Some(NodeHandle::document(doc)), guard.clone());
    assert!(r.is_err(), "runaway FLWOR must terminate with an error");
    assert_eq!(guard.trip().unwrap().resource, Resource::Fuel);
}

#[test]
fn ten_ms_deadline_terminates_every_tier() {
    let (catalog, view) = setup();
    for sheet in [SQL_OK, XQUERY_ONLY, VM_ONLY] {
        let plan = plan_bound(&catalog, &view, &wrap(sheet), &RewriteOptions::default()).unwrap();
        let guard = Guard::new(Limits::UNLIMITED.with_deadline(Duration::from_millis(10)));
        // Let the 10ms budget expire before the work starts, so the very
        // first strided clock check trips it deterministically.
        std::thread::sleep(Duration::from_millis(12));
        let stats = ExecStats::new();
        expect_guard_trip(plan.execute_guarded(&catalog, &stats, &guard), Resource::Deadline);
    }
}

#[test]
fn guard_trips_are_terminal_not_fallback_fodder() {
    let (catalog, view) = setup();
    let plan = plan_bound(&catalog, &view, &wrap(SQL_OK), &RewriteOptions::default()).unwrap();
    assert_eq!(plan.tier(), Tier::Sql);
    // Fuel so small the SQL tier trips immediately. The XQuery and VM
    // tiers must NOT be tried: the error is Guard, not TiersExhausted.
    let guard = Guard::new(Limits::UNLIMITED.with_fuel(1));
    let stats = ExecStats::new();
    match plan.execute_guarded(&catalog, &stats, &guard) {
        Err(PipelineError::Guard(trip)) => assert_eq!(trip.resource, Resource::Fuel),
        other => panic!("expected terminal guard trip, got {other:?}"),
    }
}

#[test]
fn server_default_limits_pass_normal_work() {
    let (catalog, view) = setup();
    let plan = plan_bound(&catalog, &view, &wrap(SQL_OK), &RewriteOptions::default()).unwrap();
    let guard = Guard::new(Limits::server_default());
    let stats = ExecStats::new();
    let run = plan.execute_guarded(&catalog, &stats, &guard).unwrap();
    assert_eq!(run.tier, Tier::Sql);
    assert!(run.fallbacks.is_empty());
    assert_eq!(xsltdb_xml::to_string(&run.documents[0]), "<o>7</o>");
}

// --------------------------------------------------- fallback lattice edges

#[test]
fn sql_fault_falls_back_to_xquery() {
    let (catalog, view) = setup();
    let plan = plan_bound(&catalog, &view, &wrap(SQL_OK), &RewriteOptions::default()).unwrap();
    assert_eq!(plan.tier(), Tier::Sql);
    assert!(plan.fallback_reason().is_none());
    let guard = Guard::unlimited().with_fault(FaultPoint::SqlExec, FaultKind::Error);
    let stats = ExecStats::new();
    let run = plan.execute_guarded(&catalog, &stats, &guard).unwrap();
    assert_eq!(run.tier, Tier::XQuery);
    assert_eq!(run.fallbacks.len(), 1);
    assert_eq!(run.fallbacks[0].tier, "sql");
    assert!(!run.fallbacks[0].panicked);
    assert!(run.fallbacks[0].reason.contains("injected fault"));
    assert_eq!(xsltdb_xml::to_string(&run.documents[0]), "<o>7</o>");
}

#[test]
fn sql_and_xquery_faults_fall_back_to_vm_with_full_chain() {
    let (catalog, view) = setup();
    let plan = plan_bound(&catalog, &view, &wrap(SQL_OK), &RewriteOptions::default()).unwrap();
    let guard = Guard::unlimited()
        .with_fault(FaultPoint::SqlExec, FaultKind::Error)
        .with_fault(FaultPoint::XQueryExec, FaultKind::Error);
    let stats = ExecStats::new();
    let run = plan.execute_guarded(&catalog, &stats, &guard).unwrap();
    assert_eq!(run.tier, Tier::Vm);
    let chain: Vec<&str> = run.fallbacks.iter().map(|f| f.tier).collect();
    assert_eq!(chain, ["sql", "xquery"]);
    // All three rows still transformed correctly on the slowest tier.
    assert_eq!(run.documents.len(), 3);
    assert_eq!(xsltdb_xml::to_string(&run.documents[2]), "<o>9</o>");
}

#[test]
fn xquery_fault_falls_back_to_vm() {
    let (catalog, view) = setup();
    let plan = plan_bound(&catalog, &view, &wrap(XQUERY_ONLY), &RewriteOptions::default()).unwrap();
    assert_eq!(plan.tier(), Tier::XQuery);
    // The plan records why it could not reach the SQL tier…
    assert!(plan.fallback_reason().is_some());
    let guard = Guard::unlimited().with_fault(FaultPoint::XQueryExec, FaultKind::Error);
    let stats = ExecStats::new();
    let run = plan.execute_guarded(&catalog, &stats, &guard).unwrap();
    // …and the execution-time chain records the XQuery-tier failure.
    assert_eq!(run.tier, Tier::Vm);
    assert_eq!(run.fallbacks.len(), 1);
    assert_eq!(run.fallbacks[0].tier, "xquery");
}

#[test]
fn vm_hard_failure_surfaces_typed_error() {
    let (catalog, view) = setup();
    let plan = plan_bound(&catalog, &view, &wrap(VM_ONLY), &RewriteOptions::default()).unwrap();
    assert_eq!(plan.tier(), Tier::Vm);
    let guard = Guard::unlimited().with_fault(FaultPoint::VmExec, FaultKind::Error);
    let stats = ExecStats::new();
    match plan.execute_guarded(&catalog, &stats, &guard) {
        Err(PipelineError::Xslt(e)) => assert!(e.0.contains("injected fault")),
        other => panic!("expected the VM tier's own error, got {other:?}"),
    }
}

#[test]
fn materialize_fault_fails_xquery_then_vm_finds_it_disarmed() {
    // The Materialize fault is one-shot: it kills the XQuery tier's view
    // materialisation, then the VM tier's own materialisation proceeds.
    let (catalog, view) = setup();
    let plan = plan_bound(&catalog, &view, &wrap(XQUERY_ONLY), &RewriteOptions::default()).unwrap();
    let guard = Guard::unlimited().with_fault(FaultPoint::Materialize, FaultKind::Error);
    let stats = ExecStats::new();
    let run = plan.execute_guarded(&catalog, &stats, &guard).unwrap();
    assert_eq!(run.tier, Tier::Vm);
    assert!(run.fallbacks[0].reason.contains("injected fault materialising"));
}

// ------------------------------------------------------------ panic safety

#[test]
fn sql_panic_is_contained_and_falls_back() {
    let (catalog, view) = setup();
    let plan = plan_bound(&catalog, &view, &wrap(SQL_OK), &RewriteOptions::default()).unwrap();
    let guard = Guard::unlimited().with_fault(FaultPoint::SqlExec, FaultKind::Panic);
    let stats = ExecStats::new();
    let run = plan.execute_guarded(&catalog, &stats, &guard).unwrap();
    assert_eq!(run.tier, Tier::XQuery);
    assert!(run.fallbacks[0].panicked);
    assert!(run.fallbacks[0].reason.contains("injected panic"));
}

#[test]
fn vm_panic_with_no_tier_left_is_a_typed_panic_error() {
    let (catalog, view) = setup();
    let plan = plan_bound(&catalog, &view, &wrap(VM_ONLY), &RewriteOptions::default()).unwrap();
    let guard = Guard::unlimited().with_fault(FaultPoint::VmExec, FaultKind::Panic);
    let stats = ExecStats::new();
    match plan.execute_guarded(&catalog, &stats, &guard) {
        Err(PipelineError::Panic { tier, message }) => {
            assert_eq!(tier, "vm");
            assert!(message.contains("injected panic"));
        }
        other => panic!("expected a contained panic error, got {other:?}"),
    }
}

#[test]
fn every_tier_panicking_reports_the_exhausted_chain() {
    let (catalog, view) = setup();
    let plan = plan_bound(&catalog, &view, &wrap(SQL_OK), &RewriteOptions::default()).unwrap();
    let guard = Guard::unlimited()
        .with_fault(FaultPoint::SqlExec, FaultKind::Panic)
        .with_fault(FaultPoint::XQueryExec, FaultKind::Panic)
        .with_fault(FaultPoint::VmExec, FaultKind::Panic);
    let stats = ExecStats::new();
    match plan.execute_guarded(&catalog, &stats, &guard) {
        Err(PipelineError::TiersExhausted { attempts }) => {
            let tiers: Vec<&str> = attempts.iter().map(|a| a.tier).collect();
            assert_eq!(tiers, ["sql", "xquery", "vm"]);
            assert!(attempts.iter().all(|a| a.panicked));
        }
        other => panic!("expected TiersExhausted, got {other:?}"),
    }
}

#[test]
fn strict_policy_fails_fast_without_fallback() {
    use xsltdb::DegradePolicy;
    let (catalog, view) = setup();
    let plan = plan_bound(&catalog, &view, &wrap(SQL_OK), &RewriteOptions::default()).unwrap();
    let guard = Guard::unlimited().with_fault(FaultPoint::SqlExec, FaultKind::Error);
    let stats = ExecStats::new();
    match plan.execute_with_policy(&catalog, &stats, &guard, DegradePolicy::Strict) {
        Err(PipelineError::Store(e)) => assert!(e.message().contains("injected fault")),
        other => panic!("expected the SQL tier's own error, got {other:?}"),
    }
}

#[test]
fn shared_budget_accumulates_across_fallback_tiers() {
    // The fuel spent on the failed SQL attempt counts against the XQuery
    // and VM attempts too: with a budget sized for exactly one clean run,
    // a post-fault fallback trips it.
    let (catalog, view) = setup();
    let plan = plan_bound(&catalog, &view, &wrap(SQL_OK), &RewriteOptions::default()).unwrap();
    let stats = ExecStats::new();

    // Measure a clean XQuery-tier run's fuel appetite.
    let probe = Guard::unlimited().with_fault(FaultPoint::SqlExec, FaultKind::Error);
    let run = plan.execute_guarded(&catalog, &stats, &probe).unwrap();
    assert_eq!(run.tier, Tier::XQuery);
    let appetite = probe.fuel_spent();

    // The same work with the budget set just under it must trip.
    let tight = Guard::new(Limits::UNLIMITED.with_fuel(appetite.saturating_sub(1)))
        .with_fault(FaultPoint::SqlExec, FaultKind::Error);
    expect_guard_trip(plan.execute_guarded(&catalog, &stats, &tight), Resource::Fuel);
}
