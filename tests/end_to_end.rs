//! End-to-end reproduction of the paper's worked example (§2, Tables 1–8):
//! the dept/emp schema, the dept_emp publishing view, the HTML-generating
//! stylesheet, and the full rewrite chain XSLT → XQuery → SQL/XML.

use xsltdb::pipeline::{no_rewrite_transform, plan_bound, Tier};
use xsltdb::sqlrewrite::rewrite_to_sql;
use xsltdb::xqgen::{rewrite, RewriteMode, RewriteOptions};
use xsltdb_relstore::exec::Conjunction;
use xsltdb_relstore::pubexpr::{AggPredTerm, PubExpr, SqlXmlQuery};
use xsltdb_relstore::{Catalog, ColType, Datum, ExecStats, Table, XmlView};
use xsltdb_structinfo::struct_of_view;
use xsltdb_xml::to_string;
use xsltdb_xquery::{evaluate_query, sequence_to_document, NodeHandle};
use xsltdb_xslt::compile_str;

/// Tables 1 and 2.
fn paper_catalog() -> Catalog {
    let mut dept = Table::new(
        "dept",
        &[("deptno", ColType::Int), ("dname", ColType::Text), ("loc", ColType::Text)],
    );
    for (no, dn, loc) in [(10, "ACCOUNTING", "NEW YORK"), (40, "OPERATIONS", "BOSTON")] {
        dept.insert(vec![Datum::Int(no), Datum::Text(dn.into()), Datum::Text(loc.into())])
            .unwrap();
    }
    let mut emp = Table::new(
        "emp",
        &[
            ("empno", ColType::Int),
            ("ename", ColType::Text),
            ("job", ColType::Text),
            ("sal", ColType::Int),
            ("deptno", ColType::Int),
        ],
    );
    for (no, en, job, sal, d) in [
        (7782, "CLARK", "MANAGER", 2450, 10),
        (7934, "MILLER", "CLERK", 1300, 10),
        (7954, "SMITH", "VP", 4900, 40),
    ] {
        emp.insert(vec![
            Datum::Int(no),
            Datum::Text(en.into()),
            Datum::Text(job.into()),
            Datum::Int(sal),
            Datum::Int(d),
        ])
        .unwrap();
    }
    let mut c = Catalog::new();
    c.add_table(dept);
    c.add_table(emp);
    c.create_index("emp", "sal").unwrap();
    c.create_index("emp", "deptno").unwrap();
    c
}

/// Table 3: the dept_emp view.
fn dept_emp_view() -> XmlView {
    XmlView::new(
        "dept_emp",
        SqlXmlQuery {
            base_table: "dept".into(),
            where_clause: Conjunction::default(),
            order_by: Vec::new(),
            select: PubExpr::elem(
                "dept",
                vec![
                    PubExpr::elem("dname", vec![PubExpr::col("dept", "dname")]),
                    PubExpr::elem("loc", vec![PubExpr::col("dept", "loc")]),
                    PubExpr::elem(
                        "employees",
                        vec![PubExpr::Agg {
                            table: "emp".into(),
                            predicate: vec![AggPredTerm::Correlate {
                                inner_column: "deptno".into(),
                                outer_table: "dept".into(),
                                outer_column: "deptno".into(),
                            }],
                            order_by: Vec::new(),
                            body: Box::new(PubExpr::elem(
                                "emp",
                                vec![
                                    PubExpr::elem("empno", vec![PubExpr::col("emp", "empno")]),
                                    PubExpr::elem("ename", vec![PubExpr::col("emp", "ename")]),
                                    PubExpr::elem("sal", vec![PubExpr::col("emp", "sal")]),
                                ],
                            )),
                        }],
                    ),
                ],
            ),
        },
    )
}

/// Table 5: the stylesheet.
const PAPER_STYLESHEET: &str = r#"<?xml version="1.0"?><xsl:stylesheet version="1.0"
xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
<xsl:template match="dept">
<H1>HIGHLY PAID DEPT EMPLOYEES</H1>
<xsl:apply-templates/>
</xsl:template>
<xsl:template match="dname">
<H2>Department name: <xsl:value-of select="."/></H2>
</xsl:template>
<xsl:template match="loc">
<H2>Department location: <xsl:value-of select="."/></H2>
</xsl:template>
<xsl:template match="employees">
<H2>Employees Table</H2>
<table border="2">
<td><b>EmpNo</b></td>
<td><b>Name</b></td>
<td><b>Weekly Salary</b></td>
<xsl:apply-templates select="emp[sal &gt; 2000]"/>
</table>
</xsl:template>
<xsl:template match = "emp">
<tr>
<td><xsl:value-of select="empno"/></td>
<td><xsl:value-of select="ename"/></td>
<td><xsl:value-of select="sal"/></td>
</tr>
</xsl:template>
<xsl:template match="text()">
<xsl:value-of select="."/>
</xsl:template>
</xsl:stylesheet>"#;

#[test]
fn view_materializes_table4() {
    let catalog = paper_catalog();
    let stats = ExecStats::new();
    let docs = dept_emp_view().materialize(&catalog, &stats).unwrap();
    assert_eq!(docs.len(), 2);
    assert_eq!(
        to_string(&docs[0]),
        "<dept><dname>ACCOUNTING</dname><loc>NEW YORK</loc><employees>\
         <emp><empno>7782</empno><ename>CLARK</ename><sal>2450</sal></emp>\
         <emp><empno>7934</empno><ename>MILLER</ename><sal>1300</sal></emp>\
         </employees></dept>"
    );
}

#[test]
fn baseline_produces_table6() {
    let catalog = paper_catalog();
    let stats = ExecStats::new();
    let sheet = compile_str(PAPER_STYLESHEET).unwrap();
    let run = no_rewrite_transform(&catalog, &dept_emp_view(), &sheet, &stats).unwrap();
    assert_eq!(run.documents.len(), 2);
    let first = to_string(&run.documents[0]);
    assert!(first.contains("<H1>HIGHLY PAID DEPT EMPLOYEES</H1>"));
    assert!(first.contains("<H2>Department name: ACCOUNTING</H2>"));
    assert!(first.contains("<H2>Department location: NEW YORK</H2>"));
    assert!(first.contains("<td>7782</td>"));
    assert!(first.contains("<td>CLARK</td>"));
    assert!(first.contains("<td>2450</td>"));
    assert!(!first.contains("MILLER"), "low-paid employee must be filtered: {first}");
    let second = to_string(&run.documents[1]);
    assert!(second.contains("<td>SMITH</td>"));
    assert!(run.materialized_nodes > 0);
}

#[test]
fn rewrite_is_inline_and_removes_dead_templates() {
    let sheet = compile_str(PAPER_STYLESHEET).unwrap();
    let info = struct_of_view(&dept_emp_view()).unwrap();
    let outcome = rewrite(&sheet, &info, &RewriteOptions::default()).unwrap();
    assert_eq!(outcome.mode, RewriteMode::Inline);
    assert!(outcome.fully_inlined());
    assert!(!outcome.recursive);
    // The text() template is never instantiated on this structure.
    assert_eq!(outcome.removed_templates, 1);
    let printed = xsltdb_xquery::pretty_query(&outcome.query);
    assert!(printed.contains("declare variable $var000 := ."), "{printed}");
    assert!(printed.contains("emp[sal > 2000]"), "{printed}");
    assert!(printed.contains("HIGHLY PAID DEPT EMPLOYEES"), "{printed}");
    // Table 8 shape: no function declarations at all.
    assert!(!printed.contains("declare function"), "{printed}");
}

#[test]
fn rewritten_xquery_equals_baseline_output() {
    let catalog = paper_catalog();
    let stats = ExecStats::new();
    let sheet = compile_str(PAPER_STYLESHEET).unwrap();
    let view = dept_emp_view();
    let info = struct_of_view(&view).unwrap();
    let outcome = rewrite(&sheet, &info, &RewriteOptions::default()).unwrap();

    let baseline = no_rewrite_transform(&catalog, &view, &sheet, &stats).unwrap();
    let docs = view.materialize(&catalog, &stats).unwrap();
    for (doc, expected) in docs.into_iter().zip(&baseline.documents) {
        let seq = evaluate_query(&outcome.query, Some(NodeHandle::document(doc))).unwrap();
        let got = sequence_to_document(&seq);
        assert_eq!(
            to_string(&got),
            to_string(expected),
            "rewritten XQuery must match the functional evaluation"
        );
    }
}

#[test]
fn sql_rewrite_produces_table7_and_matches_baseline() {
    let catalog = paper_catalog();
    let sheet = compile_str(PAPER_STYLESHEET).unwrap();
    let view = dept_emp_view();
    let info = struct_of_view(&view).unwrap();
    let outcome = rewrite(&sheet, &info, &RewriteOptions::default()).unwrap();
    let sql = rewrite_to_sql(&outcome.query, &info).unwrap();

    // Table 7's shape: base table dept, XMLAgg over emp with both the value
    // predicate and the correlation.
    let text = xsltdb_relstore::sql_text(&sql);
    assert!(text.contains("FROM DEPT"), "{text}");
    assert!(text.contains("SAL > 2000"), "{text}");
    assert!(text.contains("DEPTNO = DEPT.DEPTNO"), "{text}");
    assert!(text.contains("XMLElement"), "{text}");

    // Execution equivalence with the functional baseline.
    let stats = ExecStats::new();
    let baseline = no_rewrite_transform(&catalog, &view, &sheet, &stats).unwrap();
    stats.reset();
    let docs = sql.execute(&catalog, &stats).unwrap();
    assert_eq!(docs.len(), baseline.documents.len());
    for (got, expected) in docs.iter().zip(&baseline.documents) {
        assert_eq!(to_string(got), to_string(expected));
    }
    // And it reached the B-tree: the correlated probes used an index.
    assert!(stats.snapshot().index_probes >= 2, "{:?}", stats.snapshot());
}

#[test]
fn planner_selects_sql_tier_for_paper_example() {
    let catalog = paper_catalog();
    let view = dept_emp_view();
    let plan = plan_bound(&catalog, &view, PAPER_STYLESHEET, &RewriteOptions::default()).unwrap();
    assert_eq!(plan.tier(), Tier::Sql, "fallback: {:?}", plan.fallback_reason());
    let stats = ExecStats::new();
    let docs = plan.execute(&catalog, &stats).unwrap();
    assert_eq!(docs.len(), 2);
}

#[test]
fn all_three_tiers_agree() {
    let catalog = paper_catalog();
    let view = dept_emp_view();
    let sheet = compile_str(PAPER_STYLESHEET).unwrap();
    let stats = ExecStats::new();

    let baseline = no_rewrite_transform(&catalog, &view, &sheet, &stats).unwrap();
    let expected: Vec<String> = baseline.documents.iter().map(to_string).collect();

    let plan = plan_bound(&catalog, &view, PAPER_STYLESHEET, &RewriteOptions::default()).unwrap();
    let sql_docs = plan.execute(&catalog, &stats).unwrap();
    let got: Vec<String> = sql_docs.iter().map(to_string).collect();
    assert_eq!(got, expected);
}
