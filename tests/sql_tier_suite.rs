//! Executable equivalence at the SQL tier across the whole benchmark
//! suite: every XSLTMark case the planner pushes down to SQL/XML must
//! produce byte-identical output to the functional (no-rewrite) baseline
//! over the relationally backed db view.

use xsltdb::pipeline::{no_rewrite_transform, plan_bound, Tier};
use xsltdb::xqgen::RewriteOptions;
use xsltdb_relstore::ExecStats;
use xsltdb_xml::to_string;
use xsltdb_xsltmark::{all_cases, db_catalog};

/// Planning partially evaluates recursive cases to their depth limit, which
/// needs more stack than the default 2 MiB test threads provide.
fn on_big_stack<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    std::thread::Builder::new()
        .stack_size(64 * 1024 * 1024)
        .spawn(f)
        .expect("spawn")
        .join()
        .expect("suite thread panicked")
}

#[test]
fn every_sql_planned_case_matches_baseline() {
    on_big_stack(every_sql_planned_case_matches_baseline_inner)
}

fn every_sql_planned_case_matches_baseline_inner() {
    let rows = 40;
    let (catalog, view) = db_catalog(rows, 0xBEEF);
    let stats = ExecStats::new();
    let mut sql_cases = 0;
    for case in all_cases() {
        let plan = plan_bound(&catalog, &view, &case.stylesheet, &RewriteOptions::default())
            .unwrap_or_else(|e| panic!("{} fails to plan: {e}", case.name));
        if plan.tier() != Tier::Sql {
            continue;
        }
        sql_cases += 1;
        let baseline = no_rewrite_transform(&catalog, &view, plan.sheet(), &stats)
            .unwrap_or_else(|e| panic!("{} baseline fails: {e}", case.name));
        let docs = plan
            .execute(&catalog, &stats)
            .unwrap_or_else(|e| panic!("{} SQL plan fails: {e}", case.name));
        let got: Vec<String> = docs.iter().map(to_string).collect();
        let expected: Vec<String> = baseline.documents.iter().map(to_string).collect();
        assert_eq!(got, expected, "SQL tier diverges for case {}", case.name);
    }
    assert!(sql_cases >= 18, "only {sql_cases} cases reached the SQL tier");
}

#[test]
fn xquery_planned_cases_match_baseline_too() {
    on_big_stack(xquery_planned_cases_match_baseline_too_inner)
}

fn xquery_planned_cases_match_baseline_too_inner() {
    let rows = 40;
    let (catalog, view) = db_catalog(rows, 0xBEEF);
    let stats = ExecStats::new();
    for case in all_cases() {
        let plan = plan_bound(&catalog, &view, &case.stylesheet, &RewriteOptions::default())
            .unwrap_or_else(|e| panic!("{} fails to plan: {e}", case.name));
        if plan.tier() != Tier::XQuery {
            continue;
        }
        let baseline = no_rewrite_transform(&catalog, &view, plan.sheet(), &stats).unwrap();
        let docs = plan
            .execute(&catalog, &stats)
            .unwrap_or_else(|e| panic!("{} XQuery plan fails: {e}", case.name));
        let got: Vec<String> = docs.iter().map(to_string).collect();
        let expected: Vec<String> = baseline.documents.iter().map(to_string).collect();
        assert_eq!(got, expected, "XQuery tier diverges for case {}", case.name);
    }
}
