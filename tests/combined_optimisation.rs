//! Reproduction of the paper's Example 2 (§2.2, Tables 9–11): an XQuery
//! over an *XSLT view* is composed with the stylesheet's rewritten query
//! and the composition is rewritten to the optimal SQL/XML query of
//! Table 11 — a plain relational aggregate over `emp` with the value
//! predicate and the correlation, no XSLT and no intermediate XML.

use xsltdb::combined::compose_over_xslt_view;
use xsltdb::pipeline::no_rewrite_transform;
use xsltdb::sqlrewrite::rewrite_to_sql;
use xsltdb::xqgen::{rewrite, RewriteOptions};
use xsltdb_relstore::exec::Conjunction;
use xsltdb_relstore::pubexpr::{AggPredTerm, PubExpr, SqlXmlQuery};
use xsltdb_relstore::{Catalog, ColType, Datum, ExecStats, Table, XmlView};
use xsltdb_structinfo::struct_of_view;
use xsltdb_xml::to_string;
use xsltdb_xquery::{evaluate_query, parse_query, sequence_to_document, NodeHandle};
use xsltdb_xslt::compile_str;

fn paper_catalog() -> Catalog {
    let mut dept = Table::new(
        "dept",
        &[("deptno", ColType::Int), ("dname", ColType::Text), ("loc", ColType::Text)],
    );
    for (no, dn, loc) in [(10, "ACCOUNTING", "NEW YORK"), (40, "OPERATIONS", "BOSTON")] {
        dept.insert(vec![Datum::Int(no), Datum::Text(dn.into()), Datum::Text(loc.into())])
            .unwrap();
    }
    let mut emp = Table::new(
        "emp",
        &[
            ("empno", ColType::Int),
            ("ename", ColType::Text),
            ("sal", ColType::Int),
            ("deptno", ColType::Int),
        ],
    );
    for (no, en, sal, d) in [
        (7782, "CLARK", 2450, 10),
        (7934, "MILLER", 1300, 10),
        (7954, "SMITH", 4900, 40),
    ] {
        emp.insert(vec![Datum::Int(no), Datum::Text(en.into()), Datum::Int(sal), Datum::Int(d)])
            .unwrap();
    }
    let mut c = Catalog::new();
    c.add_table(dept);
    c.add_table(emp);
    c.create_index("emp", "sal").unwrap();
    c.create_index("emp", "deptno").unwrap();
    c
}

fn dept_emp_view() -> XmlView {
    XmlView::new(
        "dept_emp",
        SqlXmlQuery {
            base_table: "dept".into(),
            where_clause: Conjunction::default(),
            order_by: Vec::new(),
            select: PubExpr::elem(
                "dept",
                vec![
                    PubExpr::elem("dname", vec![PubExpr::col("dept", "dname")]),
                    PubExpr::elem("loc", vec![PubExpr::col("dept", "loc")]),
                    PubExpr::elem(
                        "employees",
                        vec![PubExpr::Agg {
                            table: "emp".into(),
                            predicate: vec![AggPredTerm::Correlate {
                                inner_column: "deptno".into(),
                                outer_table: "dept".into(),
                                outer_column: "deptno".into(),
                            }],
                            order_by: Vec::new(),
                            body: Box::new(PubExpr::elem(
                                "emp",
                                vec![
                                    PubExpr::elem("empno", vec![PubExpr::col("emp", "empno")]),
                                    PubExpr::elem("ename", vec![PubExpr::col("emp", "ename")]),
                                    PubExpr::elem("sal", vec![PubExpr::col("emp", "sal")]),
                                ],
                            )),
                        }],
                    ),
                ],
            ),
        },
    )
}

const STYLESHEET: &str = r#"<xsl:stylesheet version="1.0"
xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
<xsl:template match="dept">
<H1>HIGHLY PAID DEPT EMPLOYEES</H1>
<xsl:apply-templates/>
</xsl:template>
<xsl:template match="dname"/>
<xsl:template match="loc"/>
<xsl:template match="employees">
<table border="2">
<xsl:apply-templates select="emp[sal &gt; 2000]"/>
</table>
</xsl:template>
<xsl:template match="emp">
<tr>
<td><xsl:value-of select="empno"/></td>
<td><xsl:value-of select="ename"/></td>
<td><xsl:value-of select="sal"/></td>
</tr>
</xsl:template>
</xsl:stylesheet>"#;

/// Table 10's user query over the XSLT view.
const USER_QUERY: &str = "for $tr in ./table/tr return $tr";

#[test]
fn composition_produces_table11_sql() {
    let view = dept_emp_view();
    let info = struct_of_view(&view).unwrap();
    let sheet = compile_str(STYLESHEET).unwrap();
    let xslt_q = rewrite(&sheet, &info, &RewriteOptions::default()).unwrap();
    assert!(xslt_q.fully_inlined());

    let user_q = parse_query(USER_QUERY).unwrap();
    let composed = compose_over_xslt_view(&user_q, &xslt_q.query).unwrap();
    let printed = xsltdb_xquery::pretty_query(&composed);
    // The H1 and the table wrapper are gone — only tr construction remains.
    assert!(!printed.contains("H1"), "{printed}");
    assert!(!printed.contains("<table"), "{printed}");
    assert!(printed.contains("emp[sal > 2000]"), "{printed}");

    let sql = rewrite_to_sql(&composed, &info).unwrap();
    let text = xsltdb_relstore::sql_text(&sql);
    // Table 11: XMLAgg of tr rows from emp with both predicates, per dept.
    assert!(text.contains("SELECT"), "{text}");
    assert!(text.contains("SAL > 2000"), "{text}");
    assert!(text.contains("DEPTNO = DEPT.DEPTNO"), "{text}");
    assert!(text.contains("FROM DEPT"), "{text}");
    assert!(!text.contains("H1"), "{text}");
}

#[test]
fn composed_sql_matches_query_over_materialized_xslt_view() {
    let catalog = paper_catalog();
    let view = dept_emp_view();
    let info = struct_of_view(&view).unwrap();
    let sheet = compile_str(STYLESHEET).unwrap();
    let stats = ExecStats::new();

    // Reference: run the XSLT view functionally, then evaluate the user
    // query over each result document.
    let xslt_out = no_rewrite_transform(&catalog, &view, &sheet, &stats).unwrap();
    let user_q = parse_query(USER_QUERY).unwrap();
    let mut expected = Vec::new();
    for doc in xslt_out.documents {
        let seq = evaluate_query(&user_q, Some(NodeHandle::document(doc))).unwrap();
        expected.push(to_string(&sequence_to_document(&seq)));
    }

    // Optimised: compose and run as SQL.
    let xslt_q = rewrite(&sheet, &info, &RewriteOptions::default()).unwrap();
    let composed =
        compose_over_xslt_view(&parse_query(USER_QUERY).unwrap(), &xslt_q.query).unwrap();
    let sql = rewrite_to_sql(&composed, &info).unwrap();
    stats.reset();
    let docs = sql.execute(&catalog, &stats).unwrap();
    let got: Vec<String> = docs.iter().map(to_string).collect();
    assert_eq!(got, expected);
    // The optimal plan still uses the B-tree for the correlated probe.
    assert!(stats.snapshot().index_probes >= 2);
}

#[test]
fn structure_of_xslt_view_derivable_by_static_typing() {
    // §3.2 bullet 4: the structure of the XSLT view output comes from the
    // static type of its rewritten query.
    let view = dept_emp_view();
    let info = struct_of_view(&view).unwrap();
    let sheet = compile_str(STYLESHEET).unwrap();
    let xslt_q = rewrite(&sheet, &info, &RewriteOptions::default()).unwrap();
    let out_info = xsltdb_structinfo::struct_of_query_result(&xslt_q.query.body).unwrap();
    // The result structure contains the table/tr hierarchy.
    let table = out_info.root.child("table").expect("table in result structure");
    let tr = table.decl.child("tr").expect("tr under table");
    assert!(tr.card.is_many() || tr.decl.child("td").is_some());
}
