//! Concurrency suite for the SharedPlanCache: many sessions, one cache,
//! zero divergence.
//!
//! Differential test: eight threads run the full 40-case XSLTMark suite
//! through **one** [`SharedPlanCache`], and every cached plan's output is
//! byte-identical to a freshly planned run and to the functional (VM)
//! baseline — while the aggregate hit rate stays ≥ 90% because one cold
//! pass prepared every plan the sessions share. Property test
//! (deterministic proptest stub): arbitrary interleavings of inserts,
//! lookups and DDL generation bumps across four threads never exceed the
//! byte budget and never return a stale-generation plan — each dummy plan
//! is tagged with the generation it was prepared at, so a lookup can check
//! the tag of whatever comes back against the generation it asked for.

use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use xsltdb::pipeline::{plan_cached_shared, Tier, TransformPlan};
use xsltdb::plancache::{PlanKey, SharedPlanCache};
use xsltdb::xqgen::RewriteOptions;
use xsltdb::Guard;
use xsltdb_relstore::{ColType, ExecStats, Table};
use xsltdb_xslt::compile_str;
use xsltdb_xsltmark::{db_catalog, dbonerow_stylesheet, existing_id, run_suite_planned_shared};

/// Recursive suite cases need more stack than the 2 MiB test threads get,
/// and the concurrent phase needs that headroom on *every* session thread.
const SUITE_STACK: usize = 64 * 1024 * 1024;

// ---------------------------------------------------------------------------
// Differential: 8 sessions × 40 cases through one cache, byte-identical,
// ≥ 90% aggregate hit rate.
// ---------------------------------------------------------------------------

#[test]
fn eight_threads_share_one_cache_byte_identically() {
    const THREADS: usize = 8;
    const PASSES_PER_THREAD: usize = 2;
    let cache = SharedPlanCache::default();

    // Cold pass: exactly one miss per case prepares the plans every
    // session below will share.
    std::thread::scope(|s| {
        let cache = &cache;
        std::thread::Builder::new()
            .stack_size(SUITE_STACK)
            .spawn_scoped(s, move || {
                let runs = run_suite_planned_shared(12, 0xD1FF, cache);
                assert_eq!(runs.len(), 40);
                for run in &runs {
                    assert!(run.matches_fresh, "cold: {} diverged: {:?}", run.name, run.note);
                    assert!(run.matches_vm, "cold: {} vs VM: {:?}", run.name, run.note);
                    assert!(
                        run.matches_streamed,
                        "cold: {} streamed different bytes: {:?}",
                        run.name, run.note
                    );
                }
            })
            .expect("spawn cold pass");
    });
    let cold = cache.stats();
    assert_eq!(cold.misses, 40, "one cold plan per case");
    assert_eq!(cache.entry_count(), 40, "every case fits in the default budget");

    // Concurrent phase: 8 sessions each run the suite twice against the
    // warm cache. Every output must match a fresh plan and the VM baseline
    // byte for byte, from every thread.
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let cache = &cache;
            std::thread::Builder::new()
                .stack_size(SUITE_STACK)
                .spawn_scoped(s, move || {
                    for pass in 0..PASSES_PER_THREAD {
                        let runs = run_suite_planned_shared(12, 0xD1FF, cache);
                        assert_eq!(runs.len(), 40);
                        for run in &runs {
                            assert!(
                                run.matches_fresh,
                                "thread {t} pass {pass}: case {} cached output differs \
                                 from a fresh plan: {:?}",
                                run.name, run.note
                            );
                            assert!(
                                run.matches_vm,
                                "thread {t} pass {pass}: case {} cached output differs \
                                 from the VM baseline: {:?}",
                                run.name, run.note
                            );
                            assert!(
                                run.matches_streamed,
                                "thread {t} pass {pass}: case {} streamed bytes differ \
                                 from serialized execute output: {:?}",
                                run.name, run.note
                            );
                        }
                    }
                })
                .expect("spawn session thread");
        }
    });

    let snap = cache.stats();
    let expected_lookups = 40 * (1 + THREADS * PASSES_PER_THREAD) as u64;
    assert_eq!(snap.lookups(), expected_lookups);
    assert_eq!(snap.misses, 40, "no session after the cold pass may miss");
    assert_eq!(snap.hits + snap.misses, snap.lookups());
    assert!(
        snap.hit_rate() >= 0.90,
        "aggregate hit rate {:.3} below 0.90 ({} hits / {} lookups)",
        snap.hit_rate(),
        snap.hits,
        snap.lookups()
    );
}

// ---------------------------------------------------------------------------
// DDL bump while a streamed execution is in flight: the in-flight call
// finishes byte-identically against its catalog snapshot; the next lookup
// at the bumped generation replans instead of serving the stale entry.
// ---------------------------------------------------------------------------

/// A writer that parks the streaming thread mid-flight: the first `write`
/// signals `started` and then blocks on `gate`, so the test can run DDL
/// while bytes are provably on the wire.
struct GatedWriter {
    bytes: Vec<u8>,
    started: Option<mpsc::Sender<()>>,
    gate: mpsc::Receiver<()>,
}

impl std::io::Write for GatedWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if let Some(tx) = self.started.take() {
            let _ = tx.send(());
            let _ = self.gate.recv();
        }
        self.bytes.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn ddl_bump_mid_stream_finishes_in_flight_call_and_replans_next_lookup() {
    let (mut catalog, view) = db_catalog(24, 0xDD1);
    let cache = SharedPlanCache::default();
    let sheet = dbonerow_stylesheet(existing_id(24));
    let opts = RewriteOptions::default();
    let gen0 = catalog.generation();

    // Plan at generation 0 and take the reference output single-threaded.
    let bound = plan_cached_shared(&cache, &catalog, &view, &sheet, &opts).expect("plans");
    let plan0 = Arc::clone(bound.plan());
    let mut expected = Vec::new();
    bound
        .execute_to_writer(&catalog, &ExecStats::new(), &Guard::unlimited(), &mut expected)
        .expect("reference run");
    assert!(!expected.is_empty());

    // The in-flight session executes against its own catalog snapshot —
    // the shape it planned for — while DDL reshapes the original.
    let snapshot = catalog.clone();
    let (started_tx, started_rx) = mpsc::channel();
    let (gate_tx, gate_rx) = mpsc::channel();
    let streamer = {
        let bound = plan_cached_shared(&cache, &snapshot, &view, &sheet, &opts).expect("plans");
        std::thread::Builder::new()
            .stack_size(SUITE_STACK)
            .spawn(move || {
                let mut w =
                    GatedWriter { bytes: Vec::new(), started: Some(started_tx), gate: gate_rx };
                let run = bound
                    .execute_to_writer(&snapshot, &ExecStats::new(), &Guard::unlimited(), &mut w)
                    .expect("in-flight stream completes");
                (w.bytes, run)
            })
            .expect("spawn streaming session")
    };

    // Wait until the stream has bytes on the wire, then run DDL on the
    // original catalog while the execution is parked mid-write.
    started_rx.recv().expect("stream started");

    // DDL on an *unrelated* table moves the global clock but not the
    // read-set floor: invalidation is plan-aware, so the entry stays warm.
    catalog.add_table(Table::new("ddl_bump_marker", &[("a", ColType::Int)]));
    assert_eq!(catalog.generation(), gen0 + 1);
    let still = plan_cached_shared(&cache, &catalog, &view, &sheet, &opts).expect("still cached");
    assert!(
        Arc::ptr_eq(&plan0, still.plan()),
        "DDL on an unrelated table must not evict the plan"
    );

    // DDL on a table the plan *reads* must replan — the old entry is
    // stale and may not be served.
    catalog.create_index("db_rows", "zip").expect("bound table reindexes");
    let rebound = plan_cached_shared(&cache, &catalog, &view, &sheet, &opts).expect("replans");
    assert!(
        !Arc::ptr_eq(&plan0, rebound.plan()),
        "lookup after DDL on a read-set table served the stale plan"
    );

    // Release the gate: the in-flight call finishes byte-identically.
    gate_tx.send(()).expect("release gate");
    let (bytes, run) = streamer.join().expect("streaming session panicked");
    assert_eq!(bytes, expected, "in-flight stream diverged after DDL bump (tier {:?})", run.tier);
    assert!(run.fallbacks.is_empty(), "in-flight stream fell back: {:?}", run.fallbacks);

    // And the replanned entry serves the same bytes at the new generation.
    let mut after = Vec::new();
    rebound
        .execute_to_writer(&catalog, &ExecStats::new(), &Guard::unlimited(), &mut after)
        .expect("replanned run");
    assert_eq!(after, expected);
}

// ---------------------------------------------------------------------------
// Property: concurrent insert/lookup/DDL-bump interleavings respect the
// byte budget and never serve a stale-generation plan.
// ---------------------------------------------------------------------------

/// A marker plan whose `fallback_reason` records the DDL generation it was
/// prepared at, so a lookup can detect staleness in what it gets back. Its
/// canonical fingerprint matches the `0xF00D` the test keys carry.
fn tagged_plan(generation: u64) -> Arc<TransformPlan> {
    let sheet = compile_str(
        r#"<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
           <xsl:template match="table"><t/></xsl:template></xsl:stylesheet>"#,
    )
    .expect("marker stylesheet compiles");
    Arc::new(TransformPlan {
        tier: Tier::Vm,
        sheet,
        rewrite: None,
        sql: None,
        canonical_fp: 0xF00D,
        slot_count: 0,
        fallback_reason: Some(format!("gen:{generation}")),
        emission: None,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Four threads interleave inserts, lookups and DDL bumps over one
    /// small sharded cache: `bytes_in_use` never pierces the budget, and
    /// every plan a lookup returns was planned at or after the validity
    /// floor the lookup asked for — a stale plan surviving a bump would
    /// carry an older tag and fail the assertion. (A *newer* tag is fine:
    /// a racing thread may have replanned after a later bump, and a newer
    /// plan is by construction valid at any older floor.)
    #[test]
    fn concurrent_interleavings_stay_bounded_and_never_serve_stale_plans(
        ops in proptest::collection::vec((0usize..4, 0usize..3), 16..64),
        capacity in 2_000usize..20_000,
    ) {
        const THREADS: usize = 4;
        let cache = SharedPlanCache::with_shards(capacity, 4);
        let generation = AtomicU64::new(0);
        let srcs: Vec<String> = (0..4)
            .map(|i| {
                format!(
                    r#"<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
                       <xsl:template match="table"><k{i}/></xsl:template></xsl:stylesheet>"#
                )
            })
            .collect();

        std::thread::scope(|s| {
            for chunk in ops.chunks(ops.len().div_ceil(THREADS)) {
                let cache = &cache;
                let generation = &generation;
                let srcs = &srcs;
                s.spawn(move || {
                    for &(key_idx, action) in chunk {
                        let key = PlanKey::with_fingerprint(
                            0xF00D,
                            &srcs[key_idx],
                            &RewriteOptions::default(),
                        );
                        match action {
                            // Insert a plan tagged with the generation it
                            // is (claimed) valid at.
                            0 => {
                                let g = generation.load(Ordering::SeqCst);
                                cache.insert(key, tagged_plan(g), g);
                            }
                            // Lookup with the current generation as the
                            // validity floor: whatever comes back must have
                            // been planned at or after it.
                            1 => {
                                let g = generation.load(Ordering::SeqCst);
                                if let Some(plan) = cache.lookup(&key, g) {
                                    let tag = plan
                                        .fallback_reason
                                        .as_deref()
                                        .and_then(|s| s.strip_prefix("gen:"))
                                        .and_then(|s| s.parse::<u64>().ok())
                                        .expect("marker plan carries its tag");
                                    assert!(
                                        tag >= g,
                                        "lookup with floor {g} served a plan planned at {tag}"
                                    );
                                }
                            }
                            // DDL: bump the generation; older entries are
                            // now stale and must never be served again.
                            _ => {
                                generation.fetch_add(1, Ordering::SeqCst);
                            }
                        }
                        assert!(
                            cache.bytes_in_use() <= cache.capacity_bytes(),
                            "{} bytes in a {}-byte cache",
                            cache.bytes_in_use(),
                            cache.capacity_bytes()
                        );
                    }
                });
            }
        });

        // Accounting survives the interleaving: every lookup was exactly
        // one hit or one miss, and the final byte count is still bounded.
        let snap = cache.stats();
        prop_assert_eq!(snap.hits + snap.misses, snap.lookups());
        prop_assert!(cache.bytes_in_use() <= cache.capacity_bytes());
    }
}
