//! The churn differential suite: the transform-result cache under
//! concurrent DML/DDL writers, gated on byte identity with fresh
//! uncached execution.
//!
//! The contract under test (ISSUE 7 tentpole):
//!
//! * **Zero stale serves** — with writers mutating the read-set table and
//!   an unrelated scratch table while K reader threads replay the 40-case
//!   XSLTMark suite, every served byte equals a fresh uncached execution
//!   run under the *same* catalog read lock. One stale byte fails the
//!   suite.
//! * **Narrow eviction** — DML on table A must not cost results whose
//!   read set is `{B}`; an index-add DDL on B must not force a replan of
//!   the same-shaped canonical plan when it is looked up for bindings
//!   over A. Eviction counts are asserted exactly, not as inequalities.

use xsltdb::xqgen::RewriteOptions;
use xsltdb_bench::{run_chaos, ChaosConfig};
use xsltdb_relstore::Datum;
use xsltdb_serve::{FrontDoor, FrontDoorConfig};
use xsltdb_xsltmark::{all_cases, db_catalog_family};

/// One churn row for the family's 7-column `db_rows_{i}` schema.
fn churn_row(id: i64) -> Vec<Datum> {
    vec![
        Datum::Int(id),
        Datum::Text("Churn".into()),
        Datum::Text("Writer".into()),
        Datum::Text("1 Churn St".into()),
        Datum::Text("Churnville".into()),
        Datum::Text("ZZ".into()),
        Datum::Int(99_999),
    ]
}

/// 8 reader threads × 40 requests each (every reader sees all 40 cases)
/// racing two churn writers, no injected faults: the pure freshness gate.
#[test]
fn churn_suite_8_readers_serves_zero_stale_bytes() {
    let mut cfg = ChaosConfig::churn_chaos(8);
    cfg.inject_faults = false;
    let report = run_chaos(&cfg);
    assert_eq!(
        report.stale_serves, 0,
        "result cache served stale bytes: {:?}",
        report.first_mismatch
    );
    assert_eq!(report.mismatches, 0, "byte divergence: {:?}", report.first_mismatch);
    assert!(report.writer_mutations > 0, "churn writers never landed a mutation");
    assert!(report.served > 0, "no request survived the churn run");
    assert!(report.quiesced, "ledger held reservations after quiesce");
    assert!(report.holds(), "chaos invariants failed");
}

/// Same gate with the full fault schedule on top: panics, errors, and
/// budget trips at every lattice edge must still never surface one stale
/// or partial byte from the cache.
#[test]
fn churn_suite_survives_injected_faults() {
    let mut cfg = ChaosConfig::churn_chaos(4);
    cfg.requests_per_client = 20;
    let report = run_chaos(&cfg);
    assert_eq!(
        report.stale_serves, 0,
        "result cache served stale bytes under faults: {:?}",
        report.first_mismatch
    );
    assert_eq!(report.mismatches, 0, "byte divergence: {:?}", report.first_mismatch);
    assert!(report.holds(), "chaos invariants failed under faults");
}

/// DML on `db_rows_0` must evict exactly the one cached result whose
/// read set contains it; the same-shaped result bound to `db_rows_1`
/// keeps serving the very same bytes.
#[test]
fn dml_evicts_exactly_the_read_set_affected_result() {
    let (mut catalog, views) = db_catalog_family(2, 16, 7);
    let case = &all_cases()[0];
    let opts = RewriteOptions::default();
    let door = FrontDoor::new(FrontDoorConfig::server_default());

    let a0 = door.transform(&catalog, &views[0], &case.stylesheet, &opts).expect("fill A");
    let b0 = door.transform(&catalog, &views[1], &case.stylesheet, &opts).expect("fill B");
    assert!(!a0.cached && !b0.cached);
    let warm_a = door.transform(&catalog, &views[0], &case.stylesheet, &opts).expect("warm A");
    let warm_b = door.transform(&catalog, &views[1], &case.stylesheet, &opts).expect("warm B");
    assert!(warm_a.cached && warm_b.cached, "identical repeats must hit");
    assert_eq!(door.stats().result_invalidations, 0);

    // DML on A's row table (+ reindex, so the SQL tier's indexes agree
    // with the heap the other tiers scan).
    catalog.table_mut("db_rows_0").unwrap().insert(churn_row(900_001)).unwrap();
    catalog.reindex("db_rows_0").unwrap();

    // B first: its entry must still be live — zero invalidations so far.
    let b1 = door.transform(&catalog, &views[1], &case.stylesheet, &opts).expect("B after DML");
    assert!(b1.cached, "DML on db_rows_0 must not evict a result bound to db_rows_1");
    assert_eq!(b1.bytes, b0.bytes);
    assert_eq!(door.stats().result_invalidations, 0, "negative invalidation violated");

    // A re-executes: exactly one invalidation, no more.
    let a1 = door.transform(&catalog, &views[0], &case.stylesheet, &opts).expect("A after DML");
    assert!(!a1.cached, "stale A entry served after DML");
    assert_eq!(door.stats().result_invalidations, 1, "expected exactly one eviction");
}

/// Index-add DDL on `db_rows_1` must not force a replan when the shared
/// same-shaped canonical plan is looked up for bindings over table A —
/// and the plan-cache eviction count is exactly one (B's lookup).
#[test]
fn index_ddl_on_b_keeps_the_plan_warm_for_a() {
    let (mut catalog, views) = db_catalog_family(2, 16, 7);
    let case = &all_cases()[0];
    let opts = RewriteOptions::default();
    // Result cache off: every request exercises the plan cache.
    let mut cfg = FrontDoorConfig::server_default();
    cfg.result_cache_bytes = 0;
    let door = FrontDoor::new(cfg);

    // One canonical entry serves the whole same-shaped family.
    door.transform(&catalog, &views[0], &case.stylesheet, &opts).expect("plan A");
    door.transform(&catalog, &views[1], &case.stylesheet, &opts).expect("reuse for B");
    let warm = door.cache().stats();
    assert_eq!(warm.misses, 1, "family must share one canonical plan entry");
    assert_eq!(warm.hits, 1);

    catalog.create_index("db_rows_1", "firstname").expect("index-add DDL on B");

    // A's validity floor is untouched by B's DDL: still a hit, zero
    // invalidations.
    door.transform(&catalog, &views[0], &case.stylesheet, &opts).expect("A after DDL on B");
    let after_a = door.cache().stats();
    assert_eq!(after_a.hits, 2, "DDL on db_rows_1 must not evict the plan for db_rows_0");
    assert_eq!(after_a.invalidations, 0, "negative plan invalidation violated");

    // B's floor rose: exactly one invalidation-driven replan.
    door.transform(&catalog, &views[1], &case.stylesheet, &opts).expect("B after DDL on B");
    let after_b = door.cache().stats();
    assert_eq!(after_b.invalidations, 1, "expected exactly one plan eviction");
    assert_eq!(after_b.misses, 2);

    // And the replanned entry serves A again (its floor is still low).
    door.transform(&catalog, &views[0], &case.stylesheet, &opts).expect("A reuses replan");
    assert_eq!(door.cache().stats().hits, 3);
}
