//! Cache-correctness suite for the PlanCache: the cache must be *proven*
//! equivalent to the uncached path, not just fast.
//!
//! Differential tests: for every XSLTMark case, the output of a cached
//! plan is byte-identical to a freshly planned run; a DDL generation bump
//! invalidates and replans; a guard trip on one execution leaves the
//! cached entry reusable. Property tests (deterministic proptest stub):
//! distinct key triples never collide, the byte budget is never exceeded,
//! and `hits + misses == lookups` under arbitrary interleavings of
//! lookups and invalidations.

use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use xsltdb::pipeline::{no_rewrite_transform, plan_cached};
use xsltdb::plancache::PlanCache;
use xsltdb::xqgen::RewriteOptions;
use xsltdb::Limits;
use xsltdb_relstore::ExecStats;
use xsltdb_xml::to_string;
use xsltdb_xsltmark::{db_catalog, dbonerow_stylesheet, existing_id, run_suite_planned};

/// Recursive suite cases need more stack than the 2 MiB test threads get.
fn on_big_stack<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    std::thread::Builder::new()
        .stack_size(64 * 1024 * 1024)
        .spawn(f)
        .expect("spawn")
        .join()
        .expect("suite thread panicked")
}

fn wrap(body: &str) -> String {
    format!(
        r#"<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">{body}</xsl:stylesheet>"#
    )
}

/// A small family of distinct, SQL-tier-friendly stylesheets over the db
/// view, parameterised by an output element name.
fn named_sheet(name: &str) -> String {
    wrap(&format!(
        r#"<xsl:template match="table"><{name}><xsl:value-of select="count(row)"/></{name}></xsl:template>"#
    ))
}

// ---------------------------------------------------------------------------
// Acceptance (a): ≥ 90% hit rate on a repeated-workload loop.
// ---------------------------------------------------------------------------

#[test]
fn repeated_workload_hit_rate_is_at_least_90_percent() {
    let (catalog, view) = db_catalog(50, 0xCAFE);
    let mut cache = PlanCache::default();
    let sheets: Vec<String> =
        ["a", "b", "c", "d", "e"].iter().map(|n| named_sheet(n)).collect();
    let stats = ExecStats::new();
    // The amortisation scenario of PAPER.md §4: the same few stylesheets
    // applied over and over to the same XMLType.
    for round in 0..20 {
        for src in &sheets {
            let plan = plan_cached(&mut cache, &catalog, &view, src, &RewriteOptions::default())
                .expect("plans");
            let docs = plan.execute(&catalog, &stats).expect("executes");
            assert_eq!(docs.len(), 1, "round {round}");
        }
    }
    let snap = cache.stats();
    assert_eq!(snap.lookups(), 100);
    assert_eq!(snap.misses as usize, sheets.len(), "one cold plan per stylesheet");
    assert!(
        snap.hit_rate() >= 0.9,
        "hit rate {:.2} below 0.9 ({} hits / {} lookups)",
        snap.hit_rate(),
        snap.hits,
        snap.lookups()
    );
}

// ---------------------------------------------------------------------------
// Acceptance (b): byte-identical output, cached vs freshly planned, across
// every XSLTMark case — on the cold pass and on the fully cached pass.
// ---------------------------------------------------------------------------

#[test]
fn cached_output_is_byte_identical_across_the_suite() {
    on_big_stack(|| {
        let mut cache = PlanCache::default();
        for pass in 0..2 {
            let runs = run_suite_planned(12, 0xD1FF, &mut cache);
            assert_eq!(runs.len(), 40);
            for run in &runs {
                assert!(
                    run.matches_fresh,
                    "pass {pass}: case {} cached output differs from a fresh plan: {:?}",
                    run.name, run.note
                );
                assert!(
                    run.matches_vm,
                    "pass {pass}: case {} cached output differs from the VM baseline: {:?}",
                    run.name, run.note
                );
            }
        }
        let snap = cache.stats();
        assert_eq!(snap.hits, 40, "second pass must be served from the cache");
        assert_eq!(snap.misses, 40);
    });
}

// ---------------------------------------------------------------------------
// Acceptance (c): a DDL generation bump invalidates; the replanned output
// is identical even though the planner ran again.
// ---------------------------------------------------------------------------

#[test]
fn ddl_generation_bump_invalidates_and_replans_identically() {
    let rows = 60;
    let (mut catalog, view) = db_catalog(rows, 0xDD1);
    let mut cache = PlanCache::default();
    let src = dbonerow_stylesheet(existing_id(rows));
    let stats = ExecStats::new();

    let before = plan_cached(&mut cache, &catalog, &view, &src, &RewriteOptions::default())
        .expect("plans");
    let out_before: Vec<String> =
        before.execute(&catalog, &stats).expect("executes").iter().map(to_string).collect();

    // DDL: a new index. The lookup must miss, count an invalidation, and
    // replan. The tier chosen may change; the output must not.
    catalog.create_index("db_rows", "city").expect("column exists");
    let after = plan_cached(&mut cache, &catalog, &view, &src, &RewriteOptions::default())
        .expect("replans");
    assert!(!Arc::ptr_eq(&before.plan, &after.plan), "stale plan must not be served after DDL");
    let snap = cache.stats();
    assert_eq!(snap.invalidations, 1);
    assert_eq!(snap.misses, 2);
    assert_eq!(snap.hits, 0);

    let out_after: Vec<String> =
        after.execute(&catalog, &stats).expect("executes").iter().map(to_string).collect();
    assert_eq!(out_before, out_after, "replanned output differs after DDL");

    // And the replanned entry is a normal cache citizen again.
    let third = plan_cached(&mut cache, &catalog, &view, &src, &RewriteOptions::default())
        .expect("hits");
    assert!(Arc::ptr_eq(&after.plan, &third.plan));
    assert_eq!(cache.stats().hits, 1);
}

// ---------------------------------------------------------------------------
// Acceptance (d): a guard trip on a cached plan leaves the entry reusable.
// ---------------------------------------------------------------------------

#[test]
fn guard_trip_never_poisons_the_cached_entry() {
    let rows = 120;
    let (catalog, view) = db_catalog(rows, 0x6A12);
    let mut cache = PlanCache::default();
    // The identity case walks every row: plenty of fuel to burn.
    let src = wrap(
        r#"<xsl:template match="@*|node()">
             <xsl:copy><xsl:apply-templates select="@*|node()"/></xsl:copy>
           </xsl:template>"#,
    );
    let stats = ExecStats::new();
    let plan = plan_cached(&mut cache, &catalog, &view, &src, &RewriteOptions::default())
        .expect("plans");

    // Execution #1: starved budget → guard trip, reported as such.
    let tripped = plan
        .execute_with_limits(&catalog, &stats, Limits::UNLIMITED.with_fuel(5))
        .expect_err("5 fuel cannot transform 120 rows");
    assert!(tripped.is_guard_trip(), "expected a guard trip, got {tripped:?}");

    // The entry is still cached and still the same prepared plan.
    let again = plan_cached(&mut cache, &catalog, &view, &src, &RewriteOptions::default())
        .expect("still cached");
    assert!(Arc::ptr_eq(&plan.plan, &again.plan), "trip must not drop or rebuild the entry");
    assert_eq!(cache.stats().hits, 1);
    assert_eq!(cache.stats().invalidations, 0);

    // Execution #2: a fresh guard with a real budget runs to completion and
    // matches the uncached baseline byte for byte.
    let run = again
        .execute_with_limits(&catalog, &stats, Limits::UNLIMITED)
        .expect("fresh budget executes");
    let baseline = no_rewrite_transform(&catalog, &view, again.sheet(), &stats).expect("baseline");
    let got: Vec<String> = run.documents.iter().map(to_string).collect();
    let expected: Vec<String> = baseline.documents.iter().map(to_string).collect();
    assert_eq!(got, expected);
}

// ---------------------------------------------------------------------------
// Property tests (deterministic proptest stub).
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Distinct (stylesheet, structinfo, options) triples never collide to
    /// the same cache entry: every distinct triple gets its own slot, and a
    /// later lookup returns exactly the plan that was prepared for it.
    #[test]
    fn distinct_triples_never_collide(
        names in proptest::collection::vec("[a-z]{1,6}", 1..8),
        inline in any::<bool>(),
        annotate in any::<bool>(),
    ) {
        let (catalog, view) = db_catalog(3, 0xA11);
        let mut cache = PlanCache::default();
        let mut seen: HashMap<(String, bool), Arc<xsltdb::TransformPlan>> = HashMap::new();
        for name in &names {
            for flip in [false, true] {
                let opts = RewriteOptions {
                    inline: inline ^ flip,
                    annotate,
                    ..RewriteOptions::default()
                };
                let src = named_sheet(name);
                let plan = plan_cached(&mut cache, &catalog, &view, &src, &opts)
                    .expect("plans");
                seen.entry((src, inline ^ flip)).or_insert(plan.plan);
            }
        }
        // One entry per distinct triple…
        prop_assert_eq!(cache.entry_count(), seen.len());
        // …and every triple still maps to its own prepared plan.
        for ((src, inl), expected) in &seen {
            let opts = RewriteOptions { inline: *inl, annotate, ..RewriteOptions::default() };
            let got = plan_cached(&mut cache, &catalog, &view, src, &opts).expect("hits");
            prop_assert!(Arc::ptr_eq(expected, &got.plan), "triple served a different plan");
        }
    }

    /// The byte budget is a hard ceiling: no interleaving of inserts drives
    /// `bytes_in_use` past the capacity, whatever the capacity.
    #[test]
    fn lru_capacity_is_never_exceeded(
        capacity in 64usize..6000,
        names in proptest::collection::vec("[a-z]{1,6}", 1..12),
    ) {
        let (catalog, view) = db_catalog(3, 0xB22);
        let mut cache = PlanCache::new(capacity);
        for name in &names {
            let src = named_sheet(name);
            let _ = plan_cached(&mut cache, &catalog, &view, &src, &RewriteOptions::default())
                .expect("plans");
            prop_assert!(
                cache.bytes_in_use() <= cache.capacity_bytes(),
                "{} bytes in a {}-byte cache",
                cache.bytes_in_use(),
                cache.capacity_bytes()
            );
        }
        let snap = cache.stats();
        prop_assert_eq!(snap.lookups(), names.len() as u64);
    }

    /// Accounting invariant: every lookup is exactly one hit or one miss,
    /// under arbitrary interleavings of lookups and DDL invalidations.
    #[test]
    fn hits_plus_misses_equals_lookups_under_interleaving(
        ops in proptest::collection::vec((0usize..4, any::<bool>()), 1..40),
    ) {
        let (mut catalog, view) = db_catalog(3, 0xC33);
        let mut cache = PlanCache::default();
        let sheets = ["aa", "bb", "cc", "dd"].map(named_sheet);
        // Columns cycled through by the invalidation op (rebuilding an
        // existing index is DDL too and bumps the generation).
        let columns = ["city", "state", "zip", "lastname"];
        let mut lookups = 0u64;
        for (i, &(sheet_idx, invalidate)) in ops.iter().enumerate() {
            if invalidate {
                catalog.create_index("db_rows", columns[i % columns.len()])
                    .expect("column exists");
            }
            let _ = plan_cached(
                &mut cache,
                &catalog,
                &view,
                &sheets[sheet_idx],
                &RewriteOptions::default(),
            )
            .expect("plans");
            lookups += 1;
            let snap = cache.stats();
            prop_assert_eq!(snap.hits + snap.misses, lookups);
            prop_assert_eq!(snap.lookups(), lookups);
        }
        // Invalidations can never outnumber misses: every invalidation is
        // part of a miss.
        let snap = cache.stats();
        prop_assert!(snap.invalidations <= snap.misses);
    }
}
