//! Property-based testing of the central invariant: for documents drawn
//! randomly from a schema and stylesheets drawn from a parameterised
//! family, the rewritten XQuery's output equals the XSLTVM's output.

use proptest::prelude::*;
use std::rc::Rc;
use xsltdb::xqgen::{rewrite, RewriteOptions};
use xsltdb_structinfo::{struct_of_dtd, StructInfo};
use xsltdb_xml::{parse_trimmed, to_string, NodeId};
use xsltdb_xquery::{evaluate_query, sequence_to_document, NodeHandle};
use xsltdb_xslt::{compile_str, transform};

const DEPT_DTD: &str = r#"
    <!ELEMENT dept (dname, loc, employees)>
    <!ELEMENT dname (#PCDATA)>
    <!ELEMENT loc (#PCDATA)>
    <!ELEMENT employees (emp*)>
    <!ELEMENT emp (empno, ename, sal)>
    <!ELEMENT empno (#PCDATA)>
    <!ELEMENT ename (#PCDATA)>
    <!ELEMENT sal (#PCDATA)>
"#;

fn dept_info() -> StructInfo {
    struct_of_dtd(DEPT_DTD, "dept").unwrap()
}

#[derive(Debug, Clone)]
struct Emp {
    empno: u32,
    ename: String,
    sal: u32,
}

fn emp_strategy() -> impl Strategy<Value = Emp> {
    (1000u32..9999, "[A-Z]{1,8}", 0u32..10000).prop_map(|(empno, ename, sal)| Emp {
        empno,
        ename,
        sal,
    })
}

fn doc_strategy() -> impl Strategy<Value = String> {
    (
        "[A-Z]{1,10}",
        "[A-Z ]{1,12}",
        proptest::collection::vec(emp_strategy(), 0..8),
    )
        .prop_map(|(dname, loc, emps)| {
            let mut s = format!("<dept><dname>{dname}</dname><loc>{}</loc><employees>", loc.trim());
            for e in emps {
                s.push_str(&format!(
                    "<emp><empno>{}</empno><ename>{}</ename><sal>{}</sal></emp>",
                    e.empno, e.ename, e.sal
                ));
            }
            s.push_str("</employees></dept>");
            s
        })
}

fn check_equivalence(doc_text: &str, stylesheet: &str, info: &StructInfo) {
    let sheet = compile_str(stylesheet).unwrap();
    let doc = parse_trimmed(doc_text).unwrap();
    let expected = to_string(&transform(&sheet, &doc).unwrap());
    let outcome = rewrite(&sheet, info, &RewriteOptions::default()).unwrap();
    let input = NodeHandle::new(Rc::new(doc), NodeId::DOCUMENT);
    let seq = evaluate_query(&outcome.query, Some(input)).unwrap();
    let got = to_string(&sequence_to_document(&seq));
    assert_eq!(
        got,
        expected,
        "mismatch for doc {doc_text}\nquery:\n{}",
        xsltdb_xquery::pretty_query(&outcome.query)
    );
}

fn param_stylesheet(threshold: u32, descending: bool, with_sort: bool) -> String {
    let sort = if with_sort {
        format!(
            r#"<xsl:sort select="sal" data-type="number" order="{}"/>"#,
            if descending { "descending" } else { "ascending" }
        )
    } else {
        String::new()
    };
    format!(
        r#"<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
        <xsl:template match="dept">
          <report for="{{dname}}">
            <xsl:apply-templates select="employees/emp[sal &gt; {threshold}]">{sort}</xsl:apply-templates>
            <count><xsl:value-of select="count(employees/emp)"/></count>
            <payroll><xsl:value-of select="sum(employees/emp/sal)"/></payroll>
          </report>
        </xsl:template>
        <xsl:template match="emp">
          <row no="{{empno}}">
            <xsl:choose>
              <xsl:when test="sal &gt; 5000"><high><xsl:value-of select="ename"/></high></xsl:when>
              <xsl:otherwise><low><xsl:value-of select="ename"/></low></xsl:otherwise>
            </xsl:choose>
          </row>
        </xsl:template>
        </xsl:stylesheet>"#
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rewrite_equals_vm_on_random_docs(doc in doc_strategy(), threshold in 0u32..10000) {
        let sheet = param_stylesheet(threshold, false, false);
        check_equivalence(&doc, &sheet, &dept_info());
    }

    #[test]
    fn rewrite_equals_vm_with_sorting(
        doc in doc_strategy(),
        threshold in 0u32..10000,
        descending in any::<bool>(),
    ) {
        let sheet = param_stylesheet(threshold, descending, true);
        check_equivalence(&doc, &sheet, &dept_info());
    }

    #[test]
    fn builtin_only_rewrite_equals_vm(doc in doc_strategy()) {
        let sheet = r#"<xsl:stylesheet version="1.0"
            xmlns:xsl="http://www.w3.org/1999/XSL/Transform"/>"#;
        check_equivalence(&doc, sheet, &dept_info());
    }

    #[test]
    fn identityish_per_field_templates(doc in doc_strategy()) {
        let sheet = r#"<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
          <xsl:template match="dept"><d><xsl:apply-templates/></d></xsl:template>
          <xsl:template match="dname"><a><xsl:value-of select="."/></a></xsl:template>
          <xsl:template match="loc"><b><xsl:value-of select="."/></b></xsl:template>
          <xsl:template match="employees"><c><xsl:apply-templates select="emp"/></c></xsl:template>
          <xsl:template match="emp"><e><xsl:value-of select="empno"/>:<xsl:value-of select="sal"/></e></xsl:template>
        </xsl:stylesheet>"#;
        check_equivalence(&doc, sheet, &dept_info());
    }
}

// ---------------------------------------------------------------------------
// Random stylesheets: generate template bodies from a small grammar of XSLT
// instructions over the dept schema and check rewrite equivalence.
// ---------------------------------------------------------------------------

/// One randomly chosen instruction for the `emp` template body.
#[derive(Debug, Clone)]
enum EmpInstr {
    ValueOf(&'static str),
    LiteralWithAvt(&'static str),
    IfOverSal(u32),
    ChooseOverSal(u32, u32),
    CountSiblings,
}

impl EmpInstr {
    fn render(&self) -> String {
        match self {
            EmpInstr::ValueOf(f) => format!("<v><xsl:value-of select=\"{f}\"/></v>"),
            EmpInstr::LiteralWithAvt(f) => format!("<a x=\"{{{f}}}\"/>"),
            EmpInstr::IfOverSal(t) => format!(
                "<xsl:if test=\"sal &gt; {t}\"><rich/></xsl:if>"
            ),
            EmpInstr::ChooseOverSal(a, b) => {
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                format!(
                    "<xsl:choose>\
                     <xsl:when test=\"sal &gt; {hi}\"><h/></xsl:when>\
                     <xsl:when test=\"sal &gt; {lo}\"><m/></xsl:when>\
                     <xsl:otherwise><l/></xsl:otherwise>\
                     </xsl:choose>"
                )
            }
            EmpInstr::CountSiblings => {
                "<n><xsl:value-of select=\"count(../emp)\"/></n>".to_string()
            }
        }
    }
}

fn emp_instr_strategy() -> impl Strategy<Value = EmpInstr> {
    prop_oneof![
        prop_oneof![Just("empno"), Just("ename"), Just("sal")].prop_map(EmpInstr::ValueOf),
        prop_oneof![Just("empno"), Just("sal")].prop_map(EmpInstr::LiteralWithAvt),
        (0u32..10000).prop_map(EmpInstr::IfOverSal),
        ((0u32..10000), (0u32..10000)).prop_map(|(a, b)| EmpInstr::ChooseOverSal(a, b)),
        Just(EmpInstr::CountSiblings),
    ]
}

/// Shape of the dept template: which dispatch strategy it uses.
#[derive(Debug, Clone)]
enum DeptShape {
    ApplyAll,
    ApplyEmps { threshold: u32, sorted: bool },
    ForEachEmps { threshold: u32 },
}

fn dept_shape_strategy() -> impl Strategy<Value = DeptShape> {
    prop_oneof![
        Just(DeptShape::ApplyAll),
        ((0u32..10000), any::<bool>())
            .prop_map(|(threshold, sorted)| DeptShape::ApplyEmps { threshold, sorted }),
        (0u32..10000).prop_map(|threshold| DeptShape::ForEachEmps { threshold }),
    ]
}

fn random_stylesheet(shape: &DeptShape, emp_body: &[EmpInstr]) -> String {
    let body: String = emp_body.iter().map(EmpInstr::render).collect();
    let dept = match shape {
        DeptShape::ApplyAll => "<d><xsl:apply-templates/></d>".to_string(),
        DeptShape::ApplyEmps { threshold, sorted } => {
            let sort = if *sorted {
                r#"<xsl:sort select="sal" data-type="number"/>"#
            } else {
                ""
            };
            format!(
                "<d><xsl:apply-templates select=\"employees/emp[sal &gt; {threshold}]\">{sort}</xsl:apply-templates></d>"
            )
        }
        DeptShape::ForEachEmps { threshold } => format!(
            "<d><xsl:for-each select=\"employees/emp[sal &gt; {threshold}]\"><e>{body}</e></xsl:for-each></d>"
        ),
    };
    format!(
        r#"<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
        <xsl:template match="dept">{dept}</xsl:template>
        <xsl:template match="dname"><nm><xsl:value-of select="."/></nm></xsl:template>
        <xsl:template match="loc"/>
        <xsl:template match="employees"><xsl:apply-templates select="emp"/></xsl:template>
        <xsl:template match="emp"><row>{body}</row></xsl:template>
        </xsl:stylesheet>"#
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_stylesheets_rewrite_equivalently(
        doc in doc_strategy(),
        shape in dept_shape_strategy(),
        emp_body in proptest::collection::vec(emp_instr_strategy(), 1..4),
    ) {
        let sheet = random_stylesheet(&shape, &emp_body);
        check_equivalence(&doc, &sheet, &dept_info());
    }
}
