//! Equivalence battery: for a range of stylesheets and inputs, the output
//! of the rewritten XQuery (inline mode, and the straightforward [9]
//! translation) must byte-for-byte match the functional XSLTVM evaluation.
//! Structural information comes from a DTD, exercising §3.2 bullet 1.

use std::rc::Rc;
use xsltdb::xqgen::{rewrite, rewrite_straightforward, RewriteMode, RewriteOptions};
use xsltdb_structinfo::{struct_of_dtd, StructInfo};
use xsltdb_xml::{parse_trimmed, to_string, NodeId};
use xsltdb_xquery::{evaluate_query, sequence_to_document, NodeHandle};
use xsltdb_xslt::{compile_str, transform};

const DEPT_DTD: &str = r#"
    <!ELEMENT dept (dname, loc, employees)>
    <!ELEMENT dname (#PCDATA)>
    <!ELEMENT loc (#PCDATA)>
    <!ELEMENT employees (emp*)>
    <!ELEMENT emp (empno, ename, sal)>
    <!ELEMENT empno (#PCDATA)>
    <!ELEMENT ename (#PCDATA)>
    <!ELEMENT sal (#PCDATA)>
"#;

const DEPT_DOC: &str = "<dept><dname>ACCOUNTING</dname><loc>NEW YORK</loc><employees>\
    <emp><empno>7782</empno><ename>CLARK</ename><sal>2450</sal></emp>\
    <emp><empno>7934</empno><ename>MILLER</ename><sal>1300</sal></emp>\
    <emp><empno>7954</empno><ename>SMITH</ename><sal>4900</sal></emp>\
    </employees></dept>";

fn wrap(body: &str) -> String {
    format!(
        r#"<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">{body}</xsl:stylesheet>"#
    )
}

fn dept_info() -> StructInfo {
    struct_of_dtd(DEPT_DTD, "dept").unwrap()
}

/// Assert the inline rewrite output equals the VM output; returns the mode.
fn assert_equivalent(body: &str, doc_text: &str, info: &StructInfo) -> RewriteMode {
    let sheet = compile_str(&wrap(body)).unwrap();
    let doc = parse_trimmed(doc_text).unwrap();
    let expected = to_string(&transform(&sheet, &doc).unwrap());

    let outcome = rewrite(&sheet, info, &RewriteOptions::default())
        .unwrap_or_else(|e| panic!("rewrite failed for:\n{body}\n{e}"));
    let input = NodeHandle::new(Rc::new(doc.clone()), NodeId::DOCUMENT);
    let seq = evaluate_query(&outcome.query, Some(input)).unwrap_or_else(|e| {
        panic!(
            "evaluation failed for:\n{}\n{e}",
            xsltdb_xquery::pretty_query(&outcome.query)
        )
    });
    let got = to_string(&sequence_to_document(&seq));
    assert_eq!(
        got,
        expected,
        "rewrite output differs for stylesheet:\n{body}\nquery:\n{}",
        xsltdb_xquery::pretty_query(&outcome.query)
    );

    // The straightforward translation must agree too.
    let sf = rewrite_straightforward(&sheet).unwrap();
    let input = NodeHandle::new(Rc::new(doc), NodeId::DOCUMENT);
    let seq = evaluate_query(&sf.query, Some(input)).unwrap_or_else(|e| {
        panic!(
            "straightforward evaluation failed for:\n{}\n{e}",
            xsltdb_xquery::pretty_query(&sf.query)
        )
    });
    let got = to_string(&sequence_to_document(&seq));
    assert_eq!(got, expected, "straightforward output differs for:\n{body}");

    outcome.mode
}

#[test]
fn empty_stylesheet_builtin_only() {
    let mode = assert_equivalent("", DEPT_DOC, &dept_info());
    assert_eq!(mode, RewriteMode::Inline);
}

#[test]
fn value_of_and_literals() {
    assert_equivalent(
        r#"<xsl:template match="dept"><out><xsl:value-of select="dname"/>@<xsl:value-of select="loc"/></out></xsl:template>"#,
        DEPT_DOC,
        &dept_info(),
    );
}

#[test]
fn apply_templates_default_select() {
    assert_equivalent(
        r#"<xsl:template match="dept"><d><xsl:apply-templates/></d></xsl:template>
           <xsl:template match="dname"><n><xsl:value-of select="."/></n></xsl:template>
           <xsl:template match="loc"><l><xsl:value-of select="."/></l></xsl:template>
           <xsl:template match="employees"><e><xsl:apply-templates select="emp"/></e></xsl:template>
           <xsl:template match="emp"><p><xsl:value-of select="ename"/></p></xsl:template>"#,
        DEPT_DOC,
        &dept_info(),
    );
}

#[test]
fn value_predicate_filters() {
    assert_equivalent(
        r#"<xsl:template match="dept"><xsl:apply-templates select="employees/emp[sal &gt; 2000]"/></xsl:template>
           <xsl:template match="emp"><hi><xsl:value-of select="ename"/></hi></xsl:template>"#,
        DEPT_DOC,
        &dept_info(),
    );
}

#[test]
fn for_each_with_sort() {
    assert_equivalent(
        r#"<xsl:template match="dept">
             <xsl:for-each select="employees/emp">
               <xsl:sort select="sal" data-type="number" order="descending"/>
               <s><xsl:value-of select="sal"/></s>
             </xsl:for-each>
           </xsl:template>"#,
        DEPT_DOC,
        &dept_info(),
    );
}

#[test]
fn apply_templates_with_sort() {
    assert_equivalent(
        r#"<xsl:template match="dept">
             <xsl:apply-templates select="employees/emp">
               <xsl:sort select="ename"/>
             </xsl:apply-templates>
           </xsl:template>
           <xsl:template match="emp"><n><xsl:value-of select="ename"/></n></xsl:template>"#,
        DEPT_DOC,
        &dept_info(),
    );
}

#[test]
fn choose_over_values() {
    assert_equivalent(
        r#"<xsl:template match="dept"><xsl:apply-templates select="employees/emp"/></xsl:template>
           <xsl:template match="emp">
             <xsl:choose>
               <xsl:when test="sal &gt; 4000"><vp><xsl:value-of select="ename"/></vp></xsl:when>
               <xsl:when test="sal &gt; 2000"><mgr><xsl:value-of select="ename"/></mgr></xsl:when>
               <xsl:otherwise><clerk><xsl:value-of select="ename"/></clerk></xsl:otherwise>
             </xsl:choose>
           </xsl:template>"#,
        DEPT_DOC,
        &dept_info(),
    );
}

#[test]
fn variables_and_call_template() {
    assert_equivalent(
        r#"<xsl:template match="dept">
             <xsl:variable name="city" select="loc"/>
             <xsl:call-template name="header">
               <xsl:with-param name="title" select="dname"/>
             </xsl:call-template>
             <place><xsl:value-of select="$city"/></place>
           </xsl:template>
           <xsl:template name="header">
             <xsl:param name="title" select="'none'"/>
             <h><xsl:value-of select="$title"/></h>
           </xsl:template>"#,
        DEPT_DOC,
        &dept_info(),
    );
}

#[test]
fn rtf_variable_value_and_copy() {
    assert_equivalent(
        r#"<xsl:template match="dept">
             <xsl:variable name="frag"><x>1</x><y>2</y></xsl:variable>
             <out><xsl:copy-of select="$frag"/></out>
             <s><xsl:value-of select="$frag"/></s>
           </xsl:template>"#,
        DEPT_DOC,
        &dept_info(),
    );
}

#[test]
fn avt_attributes() {
    assert_equivalent(
        r#"<xsl:template match="dept"><xsl:apply-templates select="employees/emp"/></xsl:template>
           <xsl:template match="emp"><row id="e-{empno}" pay="{sal}"/></xsl:template>"#,
        DEPT_DOC,
        &dept_info(),
    );
}

#[test]
fn computed_element_and_attribute() {
    assert_equivalent(
        r#"<xsl:template match="dept">
             <xsl:element name="dept-view">
               <xsl:attribute name="name"><xsl:value-of select="dname"/></xsl:attribute>
             </xsl:element>
           </xsl:template>"#,
        DEPT_DOC,
        &dept_info(),
    );
}

#[test]
fn aggregates_count_and_sum() {
    assert_equivalent(
        r#"<xsl:template match="dept">
             <stats>
               <n><xsl:value-of select="count(employees/emp)"/></n>
               <total><xsl:value-of select="sum(employees/emp/sal)"/></total>
             </stats>
           </xsl:template>"#,
        DEPT_DOC,
        &dept_info(),
    );
}

#[test]
fn residual_pattern_predicates() {
    // Tables 18/19: two templates on the same element, one predicated.
    assert_equivalent(
        r#"<xsl:template match="dept"><xsl:apply-templates select="employees/emp"/></xsl:template>
           <xsl:template match="emp[sal &gt; 4000]" priority="1"><vip><xsl:value-of select="ename"/></vip></xsl:template>
           <xsl:template match="emp"><std><xsl:value-of select="ename"/></std></xsl:template>"#,
        DEPT_DOC,
        &dept_info(),
    );
}

#[test]
fn text_templates_and_builtin_mix() {
    assert_equivalent(
        r#"<xsl:template match="dname"><DN><xsl:value-of select="."/></DN></xsl:template>"#,
        DEPT_DOC,
        &dept_info(),
    );
}

#[test]
fn string_functions_in_templates() {
    assert_equivalent(
        r#"<xsl:template match="dept">
             <o a="{substring(dname, 1, 3)}">
               <xsl:value-of select="concat(dname, '/', loc)"/>
               <xsl:value-of select="translate(dname, 'ACO', 'aco')"/>
             </o>
           </xsl:template>"#,
        DEPT_DOC,
        &dept_info(),
    );
}

#[test]
fn nested_for_each() {
    assert_equivalent(
        r#"<xsl:template match="dept">
             <xsl:for-each select="employees">
               <xsl:for-each select="emp[sal &gt; 1500]">
                 <e><xsl:value-of select="empno"/></e>
               </xsl:for-each>
             </xsl:for-each>
           </xsl:template>"#,
        DEPT_DOC,
        &dept_info(),
    );
}

#[test]
fn choice_model_group() {
    let dtd = r#"
        <!ELEMENT msg (err | ok)>
        <!ELEMENT err (#PCDATA)>
        <!ELEMENT ok (#PCDATA)>
    "#;
    let info = struct_of_dtd(dtd, "msg").unwrap();
    for doc in ["<msg><err>boom</err></msg>", "<msg><ok>fine</ok></msg>"] {
        assert_equivalent(
            r#"<xsl:template match="msg"><m><xsl:apply-templates/></m></xsl:template>
               <xsl:template match="err"><E><xsl:value-of select="."/></E></xsl:template>
               <xsl:template match="ok"><O><xsl:value-of select="."/></O></xsl:template>"#,
            doc,
            &info,
        );
    }
}

#[test]
fn optional_child_absent_and_present() {
    let dtd = r#"
        <!ELEMENT r (a, b?)>
        <!ELEMENT a (#PCDATA)>
        <!ELEMENT b (#PCDATA)>
    "#;
    let info = struct_of_dtd(dtd, "r").unwrap();
    for doc in ["<r><a>1</a><b>2</b></r>", "<r><a>1</a></r>"] {
        assert_equivalent(
            r#"<xsl:template match="r"><o><xsl:apply-templates/></o></xsl:template>
               <xsl:template match="a"><A/></xsl:template>
               <xsl:template match="b"><B><xsl:value-of select="."/></B></xsl:template>"#,
            doc,
            &info,
        );
    }
}

#[test]
fn recursive_stylesheet_falls_back_but_matches() {
    let rec_body = r#"
        <xsl:template match="/"><xsl:call-template name="count">
          <xsl:with-param name="n" select="3"/>
        </xsl:call-template></xsl:template>
        <xsl:template name="count">
          <xsl:param name="n" select="0"/>
          <xsl:if test="$n &gt; 0">
            <i><xsl:value-of select="$n"/></i>
            <xsl:call-template name="count">
              <xsl:with-param name="n" select="$n - 1"/>
            </xsl:call-template>
          </xsl:if>
        </xsl:template>"#;
    let sheet = compile_str(&wrap(rec_body)).unwrap();
    let doc = parse_trimmed(DEPT_DOC).unwrap();
    let expected = to_string(&transform(&sheet, &doc).unwrap());
    let outcome = rewrite(&sheet, &dept_info(), &RewriteOptions::default()).unwrap();
    assert_ne!(outcome.mode, RewriteMode::Inline);
    let input = NodeHandle::new(Rc::new(doc), NodeId::DOCUMENT);
    let seq = evaluate_query(&outcome.query, Some(input)).unwrap();
    assert_eq!(to_string(&sequence_to_document(&seq)), expected);
}

#[test]
fn modes_dispatch_correctly() {
    assert_equivalent(
        r#"<xsl:template match="dept">
             <xsl:apply-templates select="dname"/>
             <xsl:apply-templates select="dname" mode="loud"/>
           </xsl:template>
           <xsl:template match="dname"><q><xsl:value-of select="."/></q></xsl:template>
           <xsl:template match="dname" mode="loud"><Q><xsl:value-of select="."/></Q></xsl:template>"#,
        DEPT_DOC,
        &dept_info(),
    );
}

#[test]
fn apply_templates_with_params() {
    assert_equivalent(
        r#"<xsl:template match="dept">
             <xsl:apply-templates select="employees/emp">
               <xsl:with-param name="tag" select="'E'"/>
             </xsl:apply-templates>
           </xsl:template>
           <xsl:template match="emp">
             <xsl:param name="tag" select="'X'"/>
             <o t="{$tag}"><xsl:value-of select="empno"/></o>
           </xsl:template>"#,
        DEPT_DOC,
        &dept_info(),
    );
}

#[test]
fn xsl_if_conditional() {
    assert_equivalent(
        r#"<xsl:template match="dept"><xsl:apply-templates select="employees/emp"/></xsl:template>
           <xsl:template match="emp">
             <xsl:if test="sal &gt; 2000"><rich><xsl:value-of select="ename"/></rich></xsl:if>
           </xsl:template>"#,
        DEPT_DOC,
        &dept_info(),
    );
}

#[test]
fn mixed_content_preserves_document_order() {
    // Text interleaved with element children: the generated query must not
    // hoist the text ahead of the elements.
    let dtd = "<!ELEMENT p (#PCDATA | b)*> <!ELEMENT b (#PCDATA)>";
    let info = struct_of_dtd(dtd, "p").unwrap();
    for doc in [
        "<p>alpha<b>beta</b>gamma</p>",
        "<p><b>first</b>middle<b>last</b></p>",
    ] {
        assert_equivalent(
            r#"<xsl:template match="p"><o><xsl:apply-templates/></o></xsl:template>
               <xsl:template match="b">[<xsl:value-of select="."/>]</xsl:template>"#,
            doc,
            &info,
        );
    }
}

#[test]
fn xsd_derived_structure_equivalence() {
    // §3.2 bullet 1 via XML Schema instead of DTD.
    let xsd = r#"
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="order">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="customer" type="xs:string"/>
        <xs:element name="line" minOccurs="0" maxOccurs="unbounded">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="sku" type="xs:string"/>
              <xs:element name="qty" type="xs:integer"/>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>"#;
    let info = xsltdb_structinfo::struct_of_xsd(xsd).unwrap();
    let doc = "<order><customer>ACME</customer>\
               <line><sku>A1</sku><qty>3</qty></line>\
               <line><sku>B2</sku><qty>7</qty></line></order>";
    let mode = assert_equivalent(
        r#"<xsl:template match="order">
             <invoice for="{customer}">
               <xsl:apply-templates select="line[qty &gt; 5]"/>
               <lines><xsl:value-of select="count(line)"/></lines>
             </invoice>
           </xsl:template>
           <xsl:template match="line"><big sku="{sku}"/></xsl:template>"#,
        doc,
        &info,
    );
    assert_eq!(mode, RewriteMode::Inline);
}

#[test]
fn multiple_docs_same_query() {
    // The compiled query is reusable across documents of the same schema —
    // the paper's core use case ("a set of large number of input XML
    // documents ... conforming to one schema").
    let info = dept_info();
    let sheet = compile_str(&wrap(
        r#"<xsl:template match="dept"><n><xsl:value-of select="count(employees/emp)"/></n></xsl:template>"#,
    ))
    .unwrap();
    let outcome = rewrite(&sheet, &info, &RewriteOptions::default()).unwrap();
    for n in 0..4 {
        let mut body = String::from("<dept><dname>D</dname><loc>L</loc><employees>");
        for i in 0..n {
            body.push_str(&format!(
                "<emp><empno>{i}</empno><ename>E{i}</ename><sal>{}</sal></emp>",
                100 * i
            ));
        }
        body.push_str("</employees></dept>");
        let doc = parse_trimmed(&body).unwrap();
        let expected = to_string(&transform(&sheet, &doc).unwrap());
        let input = NodeHandle::new(Rc::new(doc), NodeId::DOCUMENT);
        let seq = evaluate_query(&outcome.query, Some(input)).unwrap();
        assert_eq!(to_string(&sequence_to_document(&seq)), expected);
    }
}
