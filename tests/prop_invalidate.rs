//! Property-based invalidation soundness for the transform-result cache.
//!
//! Random interleavings of {DML on table *i*, DDL on table *j*, cached
//! lookup of view *k*} run across 4 threads against one
//! [`SharedResultCache`]. The "transform" here is a pure function of the
//! read-set table versions, so the freshness oracle is exact:
//!
//! * **Never stale** — a hit's bytes must equal the render of the
//!   read-set versions *as they are now*, under the same catalog read
//!   lock. Serving bytes older than the newest write to any read-set
//!   table changes the render and fails the comparison.
//! * **Counter conservation** — `hits + misses == lookups` in every
//!   concurrent stats snapshot (the packed-word counter), snapshots are
//!   monotone, and the final lookup count equals the number of lookup
//!   ops the threads actually executed.

use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};
use xsltdb::xqgen::RewriteOptions;
use xsltdb::{ResultKey, SharedResultCache, Tier};
use xsltdb_relstore::{Catalog, Datum};
use xsltdb_xsltmark::db_catalog_family;

const TABLES: usize = 3;
const THREADS: usize = 4;

#[derive(Debug, Clone, Copy)]
enum Op {
    /// Insert a row into `db_rows_{i}` — bumps its data generation.
    Dml(usize),
    /// (Re)build an index on `db_rows_{j}` — bumps the global DDL clock
    /// and the table's DDL stamp.
    Ddl(usize),
    /// Cached lookup of view `k`; a miss renders fresh and inserts.
    Lookup(usize),
}

/// The read set of view `k` in the family catalog.
fn read_set(k: usize) -> Vec<String> {
    vec![format!("db_doc_{k}"), format!("db_rows_{k}")]
}

/// The "transform": a pure render of the read-set versions. Any write to
/// a read-set table changes this, so stale bytes can never collide with
/// fresh bytes.
fn render(catalog: &Catalog, k: usize) -> Vec<u8> {
    let mut s = format!("view={k};");
    for t in read_set(k) {
        let v = catalog.version_of(&t);
        s.push_str(&format!("{}@ddl{}+data{};", v.table, v.ddl_stamp, v.data_gen));
    }
    s.into_bytes()
}

fn key_for(k: usize) -> ResultKey {
    // Same-shaped views share the struct fingerprint; only the bound
    // tables distinguish the keys — exactly the serving-path shape.
    ResultKey::new(0xFEED_FACE, "prop-invalidate", &RewriteOptions::default(), read_set(k))
}

fn run_interleaving(ops: &[(u32, u32)]) {
    let (catalog, _views) = db_catalog_family(TABLES, 4, 11);
    let store = Arc::new(RwLock::new(catalog));
    let cache = Arc::new(SharedResultCache::new(1 << 20));
    let lookups_done = AtomicU64::new(0);
    let decoded: Vec<Op> = ops
        .iter()
        .map(|&(action, target)| {
            let t = target as usize % TABLES;
            match action % 3 {
                0 => Op::Dml(t),
                1 => Op::Ddl(t),
                _ => Op::Lookup(t),
            }
        })
        .collect();

    std::thread::scope(|s| {
        for thread in 0..THREADS {
            let store = &store;
            let cache = &cache;
            let lookups_done = &lookups_done;
            let decoded = &decoded;
            s.spawn(move || {
                let mut tick = 0i64;
                for op in decoded.iter().skip(thread).step_by(THREADS) {
                    tick += 1;
                    match *op {
                        Op::Dml(i) => {
                            let mut cat =
                                store.write().unwrap_or_else(PoisonError::into_inner);
                            cat.table_mut(&format!("db_rows_{i}"))
                                .expect("table exists")
                                .insert(vec![
                                    Datum::Int(1_000_000 + (thread as i64) * 10_000 + tick),
                                    Datum::Text("P".into()),
                                    Datum::Text("Q".into()),
                                    Datum::Text("R".into()),
                                    Datum::Text("S".into()),
                                    Datum::Text("T".into()),
                                    Datum::Int(1),
                                ])
                                .expect("schema");
                        }
                        Op::Ddl(j) => {
                            let mut cat =
                                store.write().unwrap_or_else(PoisonError::into_inner);
                            cat.create_index(&format!("db_rows_{j}"), "firstname")
                                .expect("index DDL");
                        }
                        Op::Lookup(k) => {
                            let cat = store.read().unwrap_or_else(PoisonError::into_inner);
                            let key = key_for(k);
                            let fresh = render(&cat, k);
                            if let Some(hit) = cache.lookup(&key, &cat) {
                                assert_eq!(
                                    hit.bytes.as_ref(),
                                    &fresh[..],
                                    "STALE SERVE: view {k} hit is older than the newest \
                                     write to its read set"
                                );
                            } else {
                                let reads = cat.versions_of(
                                    key.tables.iter().map(String::as_str),
                                );
                                cache.insert(key, Arc::from(&fresh[..]), Tier::Vm, reads);
                            }
                            lookups_done.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    // Concurrent snapshot: conservation must hold even
                    // mid-run, not just after the dust settles.
                    let snap = cache.stats();
                    assert_eq!(
                        snap.hits + snap.misses,
                        snap.lookups(),
                        "torn stats snapshot"
                    );
                }
            });
        }
    });

    let end = cache.stats();
    assert_eq!(
        end.lookups(),
        lookups_done.load(Ordering::Relaxed),
        "final lookup count diverged from the ops actually executed"
    );
    assert_eq!(end.hits + end.misses, end.lookups());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn interleaved_dml_ddl_lookup_never_serves_stale(
        ops in proptest::collection::vec((0u32..6, 0u32..6), 12..64)
    ) {
        run_interleaving(&ops);
    }
}

/// Deterministic single-thread sanity anchor for the same oracle: fill,
/// hit, write, re-render — so a failure in the threaded property has a
/// minimal reference to debug against.
#[test]
fn sequential_oracle_anchor() {
    let (mut catalog, _views) = db_catalog_family(TABLES, 4, 11);
    let cache = SharedResultCache::new(1 << 20);
    let key = key_for(1);
    let fresh = render(&catalog, 1);
    assert!(cache.lookup(&key, &catalog).is_none());
    let reads = catalog.versions_of(key.tables.iter().map(String::as_str));
    cache.insert(key_for(1), Arc::from(&fresh[..]), Tier::Vm, reads);
    let hit = cache.lookup(&key, &catalog).expect("warm hit");
    assert_eq!(hit.bytes.as_ref(), &fresh[..]);

    catalog.table_mut("db_rows_1").unwrap();
    assert!(
        cache.lookup(&key, &catalog).is_none(),
        "DML on db_rows_1 must invalidate the entry"
    );
    assert_ne!(render(&catalog, 1), fresh, "oracle failed to observe the write");
    let snap = cache.stats();
    assert_eq!(snap.lookups(), 3);
    assert_eq!(snap.hits, 1);
    assert_eq!(snap.misses, 2);
    assert_eq!(snap.invalidations, 1);
}
