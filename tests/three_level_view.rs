//! A three-level master/detail/detail publishing view (region → dept →
//! emp): exercises nested `XMLAgg` derivation, nested FOR generation, and
//! nested correlated aggregation in the SQL rewrite — one level deeper than
//! the paper's worked example.

use xsltdb::pipeline::{no_rewrite_transform, plan_bound, plan_transform, Tier};
use xsltdb::xqgen::RewriteOptions;
use xsltdb_relstore::exec::Conjunction;
use xsltdb_relstore::pubexpr::{AggPredTerm, PubExpr, SqlXmlQuery};
use xsltdb_relstore::{Catalog, ColType, Datum, ExecStats, Table, XmlView};
use xsltdb_xml::to_string;

fn catalog() -> Catalog {
    let mut region = Table::new("region", &[("rid", ColType::Int), ("rname", ColType::Text)]);
    region.insert(vec![Datum::Int(1), Datum::Text("EMEA".into())]).unwrap();
    region.insert(vec![Datum::Int(2), Datum::Text("APAC".into())]).unwrap();

    let mut dept = Table::new(
        "dept",
        &[("deptno", ColType::Int), ("dname", ColType::Text), ("rid", ColType::Int)],
    );
    for (no, dn, r) in [(10, "SALES", 1), (20, "ENG", 1), (30, "OPS", 2)] {
        dept.insert(vec![Datum::Int(no), Datum::Text(dn.into()), Datum::Int(r)]).unwrap();
    }

    let mut emp = Table::new(
        "emp",
        &[("empno", ColType::Int), ("ename", ColType::Text), ("sal", ColType::Int), ("deptno", ColType::Int)],
    );
    for (no, en, sal, d) in [
        (1, "A", 900, 10),
        (2, "B", 2500, 10),
        (3, "C", 3100, 20),
        (4, "D", 700, 30),
        (5, "E", 4400, 30),
    ] {
        emp.insert(vec![Datum::Int(no), Datum::Text(en.into()), Datum::Int(sal), Datum::Int(d)])
            .unwrap();
    }

    let mut c = Catalog::new();
    c.add_table(region);
    c.add_table(dept);
    c.add_table(emp);
    c.create_index("dept", "rid").unwrap();
    c.create_index("emp", "deptno").unwrap();
    c.create_index("emp", "sal").unwrap();
    c
}

fn region_view() -> XmlView {
    XmlView::new(
        "region_vu",
        SqlXmlQuery {
            base_table: "region".into(),
            where_clause: Conjunction::default(),
            order_by: Vec::new(),
            select: PubExpr::elem(
                "region",
                vec![
                    PubExpr::elem("rname", vec![PubExpr::col("region", "rname")]),
                    PubExpr::Agg {
                        table: "dept".into(),
                        predicate: vec![AggPredTerm::Correlate {
                            inner_column: "rid".into(),
                            outer_table: "region".into(),
                            outer_column: "rid".into(),
                        }],
                        order_by: Vec::new(),
                        body: Box::new(PubExpr::elem(
                            "dept",
                            vec![
                                PubExpr::elem("dname", vec![PubExpr::col("dept", "dname")]),
                                PubExpr::Agg {
                                    table: "emp".into(),
                                    predicate: vec![AggPredTerm::Correlate {
                                        inner_column: "deptno".into(),
                                        outer_table: "dept".into(),
                                        outer_column: "deptno".into(),
                                    }],
                                    order_by: Vec::new(),
                                    body: Box::new(PubExpr::elem(
                                        "emp",
                                        vec![
                                            PubExpr::elem(
                                                "ename",
                                                vec![PubExpr::col("emp", "ename")],
                                            ),
                                            PubExpr::elem(
                                                "sal",
                                                vec![PubExpr::col("emp", "sal")],
                                            ),
                                        ],
                                    )),
                                },
                            ],
                        )),
                    },
                ],
            ),
        },
    )
}

const STYLESHEET: &str = r#"<xsl:stylesheet version="1.0"
xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
<xsl:template match="region">
<report area="{rname}"><xsl:apply-templates select="dept"/></report>
</xsl:template>
<xsl:template match="dept">
<group name="{dname}">
<xsl:apply-templates select="emp[sal &gt; 2000]"/>
</group>
</xsl:template>
<xsl:template match="emp">
<star><xsl:value-of select="ename"/>/<xsl:value-of select="sal"/></star>
</xsl:template>
</xsl:stylesheet>"#;

#[test]
fn three_level_view_reaches_sql_tier_and_matches_baseline() {
    let catalog = catalog();
    let view = region_view();
    let plan = plan_bound(&catalog, &view, STYLESHEET, &RewriteOptions::default()).unwrap();
    assert_eq!(plan.tier(), Tier::Sql, "fallback: {:?}", plan.fallback_reason());

    let stats = ExecStats::new();
    let baseline = no_rewrite_transform(&catalog, &view, plan.sheet(), &stats).unwrap();
    stats.reset();
    let docs = plan.execute(&catalog, &stats).unwrap();

    let got: Vec<String> = docs.iter().map(to_string).collect();
    let expected: Vec<String> = baseline.documents.iter().map(to_string).collect();
    assert_eq!(got, expected);

    // Sanity of content: EMEA has SALES(B=2500) and ENG(C=3100); APAC has
    // OPS(E=4400); the low-paid employees are filtered.
    assert!(got[0].contains(r#"<report area="EMEA">"#));
    assert!(got[0].contains("<star>B/2500</star>"));
    assert!(got[0].contains("<star>C/3100</star>"));
    assert!(!got[0].contains("A/900"));
    assert!(got[1].contains("<star>E/4400</star>"));
    assert!(!got[1].contains("D/700"));

    // Nested correlated probes: region→dept and dept→emp per dept.
    assert!(stats.snapshot().index_probes >= 4, "{:?}", stats.snapshot());
}

#[test]
fn three_level_sql_text_shows_nested_aggs() {
    let view = region_view();
    let plan = plan_transform(&view, STYLESHEET, &RewriteOptions::default()).unwrap();
    let text = xsltdb_relstore::sql_text(plan.sql.as_ref().unwrap());
    // Two nested XMLAgg scopes with their correlations and the value
    // filter. The prepared SQL is canonical: tables appear as binding
    // slots ($T0 = region, $T1 = dept, $T2 = emp), resolved at execute
    // time.
    assert_eq!(text.matches("XMLAgg").count(), 2, "{text}");
    assert!(text.contains("RID = $T0.RID"), "{text}");
    assert!(text.contains("DEPTNO = $T1.DEPTNO"), "{text}");
    assert!(text.contains("SAL > 2000"), "{text}");
}

#[test]
fn aggregate_across_levels() {
    // count()/sum() across the nested structure also push down.
    let catalog = catalog();
    let view = region_view();
    let sheet_src = r#"<xsl:stylesheet version="1.0"
xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
<xsl:template match="region">
<stat depts="{count(dept)}"/>
</xsl:template>
</xsl:stylesheet>"#;
    let plan = plan_bound(&catalog, &view, sheet_src, &RewriteOptions::default()).unwrap();
    assert_eq!(plan.tier(), Tier::Sql, "fallback: {:?}", plan.fallback_reason());
    let stats = ExecStats::new();
    let docs = plan.execute(&catalog, &stats).unwrap();
    assert_eq!(to_string(&docs[0]), r#"<stat depts="2"/>"#);
    assert_eq!(to_string(&docs[1]), r#"<stat depts="1"/>"#);
}
