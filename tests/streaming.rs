//! Streaming emission suite: `BoundPlan::execute_to_writer` against the
//! materialise-then-serialize path.
//!
//! The core claims under test, matching ISSUE 5's acceptance criteria:
//!
//! 1. **Byte identity** — for all 40 XSLTMark cases over the relationally
//!    backed `db_vu` view, the streamed bytes equal the concatenated
//!    `to_string` of `execute`'s documents, both for freshly planned runs
//!    and for plans served out of a [`SharedPlanCache`].
//! 2. **Zero materialisation** — the SQL tier streams without building a
//!    single DOM node (`peak_materialized_nodes == 0`,
//!    `streamed_bytes > 0`).
//! 3. **Guarded mid-stream** — `max_output_bytes` trips while the bytes
//!    are leaving, and the partial output never exceeds the cap.
//! 4. **Same degradation lattice** — an injected SQL-tier fault falls back
//!    to the XQuery tier with identical bytes and one recorded
//!    [`TierFailure`]; a writer that dies mid-stream is terminal (bytes on
//!    the wire cannot be unwritten).

use xsltdb::pipeline::{plan_bound, Tier};
use xsltdb::plancache::SharedPlanCache;
use xsltdb::xqgen::RewriteOptions;
use xsltdb::{FaultKind, FaultPoint, Guard, Limits};
use xsltdb_relstore::ExecStats;
use xsltdb_xml::to_string;
use xsltdb_xsltmark::{
    all_cases, db_catalog, dbonerow_stylesheet, existing_id, run_suite_planned_shared,
};

/// The recursive suite cases need more stack than the 2 MiB test threads
/// get.
fn on_big_stack<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    std::thread::Builder::new()
        .stack_size(64 * 1024 * 1024)
        .spawn(f)
        .expect("spawn")
        .join()
        .expect("suite thread panicked")
}

#[test]
fn all_forty_cases_stream_byte_identically_when_freshly_planned() {
    on_big_stack(|| {
        let (catalog, view) = db_catalog(12, 0x57AB);
        let stats = ExecStats::new();
        let mut by_tier = (0usize, 0usize, 0usize);
        for case in all_cases() {
            let bound = plan_bound(&catalog, &view, &case.stylesheet, &RewriteOptions::default())
                .unwrap_or_else(|e| panic!("case {} fails to plan: {e}", case.name));
            let expected: String = bound
                .execute(&catalog, &stats)
                .unwrap_or_else(|e| panic!("case {} fails to execute: {e}", case.name))
                .iter()
                .map(to_string)
                .collect();
            let mut streamed = Vec::new();
            let run = bound
                .execute_to_writer(&catalog, &stats, &Guard::unlimited(), &mut streamed)
                .unwrap_or_else(|e| panic!("case {} fails to stream: {e}", case.name));
            assert_eq!(
                String::from_utf8(streamed).expect("stream output is UTF-8"),
                expected,
                "case {} streams different bytes (tier {:?})",
                case.name,
                run.tier
            );
            assert_eq!(run.bytes_written as usize, expected.len(), "case {}", case.name);
            assert!(run.fallbacks.is_empty(), "case {} fell back: {:?}", case.name, run.fallbacks);
            match run.tier {
                Tier::Sql => by_tier.0 += 1,
                Tier::XQuery => by_tier.1 += 1,
                Tier::Vm => by_tier.2 += 1,
            }
        }
        // The differential must have exercised true streaming, not just the
        // materialising fallbacks.
        assert!(by_tier.0 >= 15, "only {} cases streamed on the SQL tier", by_tier.0);
        assert_eq!(by_tier.0 + by_tier.1 + by_tier.2, 40);
    });
}

#[test]
fn all_forty_cases_stream_byte_identically_via_shared_cache() {
    on_big_stack(|| {
        let cache = SharedPlanCache::default();
        // Two passes: the second is served entirely from prepared plans,
        // so the streamed differential covers cache-hit plans too.
        for pass in 0..2 {
            let runs = run_suite_planned_shared(12, 0x57AB, &cache);
            assert_eq!(runs.len(), 40);
            for run in &runs {
                assert!(
                    run.matches_streamed,
                    "pass {pass}: case {} streamed bytes differ: {:?}",
                    run.name, run.note
                );
            }
        }
        assert!(cache.stats().hits >= 40, "second pass must be served from the cache");
    });
}

#[test]
fn sql_tier_streams_with_zero_materialized_nodes() {
    let rows = 200;
    let (catalog, view) = db_catalog(rows, 7);
    let sheet = dbonerow_stylesheet(existing_id(rows));
    let bound = plan_bound(&catalog, &view, &sheet, &RewriteOptions::default()).unwrap();
    assert_eq!(bound.tier(), Tier::Sql, "{:?}", bound.fallback_reason());

    // The materialising path records a nonzero per-document peak …
    let mat_stats = ExecStats::new();
    let docs = bound.execute(&catalog, &mat_stats).unwrap();
    assert!(!docs.is_empty());
    assert!(mat_stats.snapshot().peak_materialized_nodes > 0);

    // … the streaming path records none at all.
    let stream_stats = ExecStats::new();
    let mut out = Vec::new();
    let run = bound
        .execute_to_writer(&catalog, &stream_stats, &Guard::unlimited(), &mut out)
        .unwrap();
    assert_eq!(run.tier, Tier::Sql);
    let snap = stream_stats.snapshot();
    assert_eq!(snap.peak_materialized_nodes, 0, "streaming must not build DOM nodes");
    assert!(snap.streamed_bytes > 0);
    assert_eq!(snap.streamed_bytes, run.bytes_written);
}

#[test]
fn max_output_bytes_trips_mid_stream_with_bounded_partial_output() {
    let rows = 200;
    let (catalog, view) = db_catalog(rows, 7);
    // An identity-shaped projection of every row: plenty of output.
    let sheet = r#"<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
        <xsl:template match="table">
          <out><xsl:apply-templates select="row"/></out>
        </xsl:template>
        <xsl:template match="row">
          <r><xsl:value-of select="lastname"/></r>
        </xsl:template>
        </xsl:stylesheet>"#;
    let bound = plan_bound(&catalog, &view, sheet, &RewriteOptions::default()).unwrap();
    assert_eq!(bound.tier(), Tier::Sql, "{:?}", bound.fallback_reason());

    let cap = 64u64;
    let guard = Guard::new(Limits::UNLIMITED.with_max_output_bytes(cap));
    let mut out = Vec::new();
    let err = bound
        .execute_to_writer(&catalog, &ExecStats::new(), &guard, &mut out)
        .unwrap_err();
    assert!(err.is_guard_trip(), "got {err:?}");
    assert!(guard.trip().is_some());
    assert!(!out.is_empty(), "the stream should have started before tripping");
    assert!(
        out.len() as u64 <= cap,
        "{} bytes escaped past a {cap}-byte cap",
        out.len()
    );
}

/// A guard trip surfacing through the streaming store path (`SinkError::Guard`
/// inside `execute_streaming_bound`) classifies as a guard trip from the
/// error value alone — the retry layer must never re-run a budget-tripped
/// request, and it cannot rely on having the tripping `Guard` in hand.
#[test]
fn streaming_guard_trip_classifies_without_the_guard_side_channel() {
    use xsltdb::error::PipelineError;

    let rows = 200;
    let (catalog, view) = db_catalog(rows, 7);
    let sheet = r#"<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
        <xsl:template match="table">
          <out><xsl:apply-templates select="row"/></out>
        </xsl:template>
        <xsl:template match="row">
          <r><xsl:value-of select="lastname"/></r>
        </xsl:template>
        </xsl:stylesheet>"#;
    let bound = plan_bound(&catalog, &view, sheet, &RewriteOptions::default()).unwrap();
    assert_eq!(bound.tier(), Tier::Sql, "{:?}", bound.fallback_reason());
    let sql = bound.plan().sql.as_ref().expect("SQL tier plan");

    let guard = Guard::new(Limits::UNLIMITED.with_max_output_bytes(64));
    let mut out = Vec::new();
    let store_err = sql
        .execute_streaming_bound(
            &catalog,
            &ExecStats::new(),
            &guard,
            bound.bindings(),
            &mut out,
        )
        .unwrap_err();
    // The StoreError itself carries the structured trip …
    assert_eq!(store_err.trip(), guard.trip());
    assert!(store_err.trip().is_some(), "trip evidence lost: {store_err:?}");
    // … so the From conversion classifies it as Guard (terminal) even when
    // the caller never looks at the Guard.
    let err = PipelineError::from(store_err);
    assert!(err.is_guard_trip(), "misclassified as retryable: {err:?}");
}

#[test]
fn injected_sql_fault_falls_back_and_streams_identical_bytes() {
    let rows = 50;
    let (catalog, view) = db_catalog(rows, 7);
    let sheet = dbonerow_stylesheet(existing_id(rows));
    let bound = plan_bound(&catalog, &view, &sheet, &RewriteOptions::default()).unwrap();
    assert_eq!(bound.tier(), Tier::Sql);

    let stats = ExecStats::new();
    let expected: String =
        bound.execute(&catalog, &stats).unwrap().iter().map(to_string).collect();

    for kind in [FaultKind::Error, FaultKind::Panic] {
        let guard = Guard::unlimited().with_fault(FaultPoint::SqlExec, kind);
        let mut out = Vec::new();
        let run = bound
            .execute_to_writer(&catalog, &ExecStats::new(), &guard, &mut out)
            .unwrap();
        assert_eq!(run.tier, Tier::XQuery, "fault {kind:?} must degrade one tier");
        assert_eq!(run.fallbacks.len(), 1);
        assert_eq!(run.fallbacks[0].tier, "sql");
        assert_eq!(run.fallbacks[0].panicked, matches!(kind, FaultKind::Panic));
        assert_eq!(
            String::from_utf8(out).unwrap(),
            expected,
            "fallback bytes must match the materialised output"
        );
    }
}

#[test]
fn writer_failure_mid_stream_is_terminal_not_a_fallback() {
    struct FailAfter {
        remaining: usize,
    }
    impl std::io::Write for FailAfter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if buf.len() > self.remaining {
                return Err(std::io::Error::other("client went away"));
            }
            self.remaining -= buf.len();
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let rows = 50;
    let (catalog, view) = db_catalog(rows, 7);
    let sheet = dbonerow_stylesheet(existing_id(rows));
    let bound = plan_bound(&catalog, &view, &sheet, &RewriteOptions::default()).unwrap();
    assert_eq!(bound.tier(), Tier::Sql);

    let err = bound
        .execute_to_writer(
            &catalog,
            &ExecStats::new(),
            &Guard::unlimited(),
            &mut FailAfter { remaining: 8 },
        )
        .unwrap_err();
    // Bytes reached the writer before the failure, so no lower tier may
    // rerun (it would emit the prefix twice): the error surfaces directly.
    assert!(!err.is_guard_trip());
    assert!(err.to_string().contains("client went away"), "got {err}");
}
