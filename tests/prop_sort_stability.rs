//! Property-based sort-stability suite for the ORDER BY lowering.
//!
//! `xsl:sort` is required to be *stable*: rows with equal sort keys keep
//! their document order. The join-graph rewrite lowers sorts to ORDER BY
//! on the aggregation's row source, so stability now depends on the
//! relational sort in `relstore::order_rows` agreeing byte-for-byte with
//! the XSLTVM's comparison (text keys vs `data-type="number"`, ascending
//! vs descending, NaN handling). Rows are drawn from deliberately tiny
//! value pools so duplicate keys are the common case, and each row carries
//! a unique tag — any reordering of equal-key rows changes the bytes.
//!
//! Each sample is checked across all three execution tiers:
//!
//! * **VM** — the functional no-rewrite transform is the expected output,
//! * **SQL** — the bound plan must reach the SQL tier and match when
//!   materialised *and* when streamed through `execute_to_writer`,
//! * **XQuery** — an injected SQL-tier fault degrades the same plan one
//!   tier, and the fallback bytes must still match.

use proptest::prelude::*;
use xsltdb::pipeline::{no_rewrite_transform, plan_bound, Tier};
use xsltdb::xqgen::RewriteOptions;
use xsltdb::{FaultKind, FaultPoint, Guard};
use xsltdb_relstore::exec::Conjunction;
use xsltdb_relstore::pubexpr::{PubExpr, SqlXmlQuery};
use xsltdb_relstore::{Catalog, ColType, Datum, ExecStats, Table, XmlView};
use xsltdb_xml::to_string;

/// Tiny pools: with up to 12 rows over 3 names and 4 numbers, duplicate
/// sort keys are near-certain in every sample.
const NAMES: &[&str] = &["Ann", "Bob", "Cat"];

#[derive(Debug, Clone)]
struct SortRow {
    name: &'static str,
    num: i64,
}

fn row_strategy() -> impl Strategy<Value = SortRow> {
    (0..NAMES.len(), prop_oneof![Just(-3i64), Just(0), Just(7), Just(12)])
        .prop_map(|(n, num)| SortRow { name: NAMES[n], num })
}

/// Which column the sort key selects and how it is compared.
#[derive(Debug, Clone, Copy)]
enum SortKeySpec {
    /// `select="name"` — text comparison over a text column.
    NameText,
    /// `select="num" data-type="number"` — numeric comparison.
    NumNumber,
    /// `select="num"` — *text* comparison over digit strings ("-3" < "12"
    /// < "7" lexicographically), a different order than numeric.
    NumText,
}

fn key_strategy() -> impl Strategy<Value = SortKeySpec> {
    prop_oneof![
        Just(SortKeySpec::NameText),
        Just(SortKeySpec::NumNumber),
        Just(SortKeySpec::NumText),
    ]
}

impl SortKeySpec {
    fn render(self, descending: bool) -> String {
        let order = if descending { "descending" } else { "ascending" };
        match self {
            SortKeySpec::NameText => {
                format!(r#"<xsl:sort select="name" order="{order}"/>"#)
            }
            SortKeySpec::NumNumber => {
                format!(r#"<xsl:sort select="num" data-type="number" order="{order}"/>"#)
            }
            SortKeySpec::NumText => {
                format!(r#"<xsl:sort select="num" order="{order}"/>"#)
            }
        }
    }
}

/// The relational backing: one anchor row (the document) and a `s_rows`
/// table published as `<table><row><tag/><name/><num/></row>*</table>`,
/// mirroring the shape of the xsltmark db catalog.
fn sort_catalog(rows: &[SortRow]) -> (Catalog, XmlView) {
    let mut catalog = Catalog::new();
    catalog.add_table(Table::new("s_doc", &[("docid", ColType::Int)]));
    catalog.add_table(Table::new(
        "s_rows",
        &[("tag", ColType::Text), ("name", ColType::Text), ("num", ColType::Int)],
    ));
    catalog
        .table_mut("s_doc")
        .expect("just added")
        .insert(vec![Datum::Int(1)])
        .expect("schema matches");
    let t = catalog.table_mut("s_rows").expect("just added");
    for (i, r) in rows.iter().enumerate() {
        t.insert(vec![
            Datum::Text(format!("t{i}")),
            Datum::Text(r.name.into()),
            Datum::Int(r.num),
        ])
        .expect("schema matches");
    }
    let leaf = |n: &str| PubExpr::elem(n, vec![PubExpr::col("s_rows", n)]);
    let view = XmlView::new(
        "s_vu",
        SqlXmlQuery {
            base_table: "s_doc".into(),
            where_clause: Conjunction::default(),
            order_by: Vec::new(),
            select: PubExpr::elem(
                "table",
                vec![PubExpr::Agg {
                    table: "s_rows".into(),
                    predicate: Vec::new(),
                    order_by: Vec::new(),
                    body: Box::new(PubExpr::elem(
                        "row",
                        vec![leaf("tag"), leaf("name"), leaf("num")],
                    )),
                }],
            ),
        },
    );
    catalog.add_view(view.clone());
    (catalog, view)
}

fn sort_stylesheet(
    primary: SortKeySpec,
    descending: bool,
    secondary: Option<SortKeySpec>,
    with_position: bool,
) -> String {
    let mut sorts = primary.render(descending);
    if let Some(s) = secondary {
        // Secondary key always ascending: the interesting part is the
        // tie-break chain, not another direction bit.
        sorts.push_str(&s.render(false));
    }
    let pos = if with_position {
        r#"<p><xsl:value-of select="position()"/></p>"#
    } else {
        ""
    };
    format!(
        r#"<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
        <xsl:template match="table">
          <out><xsl:apply-templates select="row">{sorts}</xsl:apply-templates></out>
        </xsl:template>
        <xsl:template match="row">
          <r k="{{tag}}">{pos}<xsl:value-of select="name"/>:<xsl:value-of select="num"/></r>
        </xsl:template>
        </xsl:stylesheet>"#
    )
}

/// The property: for every tier the bytes equal the functional baseline.
fn check_sorted_tiers(rows: &[SortRow], sheet: &str) {
    let (catalog, view) = sort_catalog(rows);
    let stats = ExecStats::new();
    let bound = plan_bound(&catalog, &view, sheet, &RewriteOptions::default())
        .unwrap_or_else(|e| panic!("fails to plan: {e}\n{sheet}"));
    assert_eq!(
        bound.tier(),
        Tier::Sql,
        "sorted stylesheet must reach the SQL tier: {:?}",
        bound.fallback_reason()
    );
    let expected: String = no_rewrite_transform(&catalog, &view, bound.sheet(), &stats)
        .expect("baseline transforms")
        .documents
        .iter()
        .map(to_string)
        .collect();

    // SQL tier, materialised.
    let got_sql: String = bound
        .execute(&catalog, &stats)
        .expect("SQL plan executes")
        .iter()
        .map(to_string)
        .collect();
    assert_eq!(got_sql, expected, "SQL tier reorders equal keys\n{sheet}");

    // SQL tier, streamed.
    let mut streamed = Vec::new();
    let run = bound
        .execute_to_writer(&catalog, &stats, &Guard::unlimited(), &mut streamed)
        .expect("streaming executes");
    assert_eq!(run.tier, Tier::Sql);
    assert_eq!(
        String::from_utf8(streamed).expect("UTF-8"),
        expected,
        "streamed bytes reorder equal keys\n{sheet}"
    );

    // XQuery tier, reached by degrading the same plan one tier.
    let guard = Guard::unlimited().with_fault(FaultPoint::SqlExec, FaultKind::Error);
    let mut fallback = Vec::new();
    let run = bound
        .execute_to_writer(&catalog, &ExecStats::new(), &guard, &mut fallback)
        .expect("fallback executes");
    assert_eq!(run.tier, Tier::XQuery, "fault must degrade exactly one tier");
    assert_eq!(
        String::from_utf8(fallback).expect("UTF-8"),
        expected,
        "XQuery tier reorders equal keys\n{sheet}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn single_key_sorts_are_stable_across_tiers(
        rows in proptest::collection::vec(row_strategy(), 0..12),
        key in key_strategy(),
        descending in any::<bool>(),
    ) {
        let sheet = sort_stylesheet(key, descending, None, false);
        check_sorted_tiers(&rows, &sheet);
    }

    #[test]
    fn two_key_sorts_break_ties_identically(
        rows in proptest::collection::vec(row_strategy(), 0..12),
        primary in key_strategy(),
        secondary in key_strategy(),
        descending in any::<bool>(),
    ) {
        let sheet = sort_stylesheet(primary, descending, Some(secondary), false);
        check_sorted_tiers(&rows, &sheet);
    }

    #[test]
    fn post_sort_positions_agree_across_tiers(
        rows in proptest::collection::vec(row_strategy(), 0..12),
        key in key_strategy(),
        descending in any::<bool>(),
    ) {
        // position() after xsl:sort numbers the *sorted* sequence; the SQL
        // lowering computes it as a row number over the ordered aggregate.
        let sheet = sort_stylesheet(key, descending, None, true);
        check_sorted_tiers(&rows, &sheet);
    }
}
