//! Cross-view plan reuse: prepared plans are pure functions of
//! (stylesheet × canonical structure × options), so one cache entry serves
//! every identically-shaped view, with identity bound per call.
//!
//! Differential tests: eight same-shaped views (each over its **own**
//! tables with **different** data) run all forty XSLTMark cases through
//! one [`SharedPlanCache`] — exactly one plan is built per stylesheet, and
//! every view's output is byte-identical to a freshly planned, uncached
//! run over that view. Negative test: two views with the same element tags
//! but different structure canonicalise apart and get distinct entries.
//! Property test (deterministic proptest stub): rebinding a shared plan
//! across views never mixes one view's rows into another's output.

use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;
use xsltdb::pipeline::{plan_bound, plan_cached, plan_cached_shared};
use xsltdb::plancache::{PlanCache, SharedPlanCache};
use xsltdb::xqgen::RewriteOptions;
use xsltdb_relstore::exec::Conjunction;
use xsltdb_relstore::pubexpr::{PubExpr, SqlXmlQuery};
use xsltdb_relstore::{Catalog, ColType, Datum, ExecStats, Table, XmlView};
use xsltdb_xml::to_string;
use xsltdb_xsltmark::{all_cases, db_catalog_family};

/// Recursive suite cases need more stack than the 2 MiB test threads get.
fn on_big_stack<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    std::thread::Builder::new()
        .stack_size(64 * 1024 * 1024)
        .spawn(f)
        .expect("spawn")
        .join()
        .expect("suite thread panicked")
}

fn render(catalog: &Catalog, bound: &xsltdb::BoundPlan) -> Vec<String> {
    let stats = ExecStats::new();
    bound.execute(catalog, &stats).expect("plan executes").iter().map(to_string).collect()
}

// ---------------------------------------------------------------------------
// Acceptance: 8 same-shaped views × 40 cases, one cache → 40 plans built,
// byte-identical to per-view fresh plans.
// ---------------------------------------------------------------------------

#[test]
fn eight_views_forty_sheets_build_exactly_forty_plans() {
    on_big_stack(|| {
        const VIEWS: usize = 8;
        let (catalog, views) = db_catalog_family(VIEWS, 12, 0xFA0);
        let cache = SharedPlanCache::default();
        let opts = RewriteOptions::default();

        for case in all_cases() {
            let mut shared_arc = None;
            for view in &views {
                let cached = plan_cached_shared(&cache, &catalog, view, &case.stylesheet, &opts)
                    .unwrap_or_else(|e| panic!("{}: cached planning fails: {e}", case.name));
                // Every view is served by the *same* prepared plan…
                match &shared_arc {
                    None => shared_arc = Some(Arc::clone(&cached.plan)),
                    Some(first) => assert!(
                        Arc::ptr_eq(first, &cached.plan),
                        "{}: views of one shape must share one prepared plan",
                        case.name
                    ),
                }
                // …and the rebound output is byte-identical to a plan built
                // fresh for exactly this view.
                let fresh = plan_bound(&catalog, view, &case.stylesheet, &opts)
                    .unwrap_or_else(|e| panic!("{}: fresh planning fails: {e}", case.name));
                assert_eq!(
                    render(&catalog, &cached),
                    render(&catalog, &fresh),
                    "{}: cached plan rebound to {} diverges from a fresh plan",
                    case.name,
                    view.name
                );
            }
        }

        let snap = cache.stats();
        assert_eq!(snap.misses, 40, "exactly one plan built per stylesheet");
        assert_eq!(snap.lookups(), (40 * VIEWS) as u64);
        assert_eq!(snap.hits, (40 * (VIEWS - 1)) as u64);
    });
}

/// The family carries *different* data per view on purpose: a reuse bug
/// that mixes one view's rows into another's output is visible in the
/// bytes. Check the precondition holds for a data-bearing stylesheet.
#[test]
fn family_views_produce_distinct_outputs() {
    let (catalog, views) = db_catalog_family(8, 10, 0xFA1);
    let sheet = r#"<xsl:stylesheet version="1.0"
        xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
        <xsl:template match="table"><o><xsl:apply-templates select="row"/></o></xsl:template>
        <xsl:template match="row"><n><xsl:value-of select="lastname"/></n></xsl:template>
        </xsl:stylesheet>"#;
    let cache = SharedPlanCache::default();
    let outputs: Vec<Vec<String>> = views
        .iter()
        .map(|v| {
            let b = plan_cached_shared(&cache, &catalog, v, sheet, &RewriteOptions::default())
                .expect("plans");
            render(&catalog, &b)
        })
        .collect();
    let distinct: HashSet<&Vec<String>> = outputs.iter().collect();
    assert_eq!(distinct.len(), outputs.len(), "seeded data must differ per view");
    assert_eq!(cache.stats().misses, 1);
}

// ---------------------------------------------------------------------------
// Negative: same tags, different structure → different canonical shapes,
// distinct cache entries.
// ---------------------------------------------------------------------------

#[test]
fn same_tags_different_shape_get_distinct_entries() {
    let mut catalog = Catalog::new();
    let mut t1 = Table::new("t1", &[("v", ColType::Int)]);
    t1.insert(vec![Datum::Int(1)]).unwrap();
    let mut t2 = Table::new("t2", &[("v", ColType::Int)]);
    t2.insert(vec![Datum::Int(2)]).unwrap();
    catalog.add_table(t1);
    catalog.add_table(t2);
    // Both views publish elements named r and v — but flat vs nested.
    let flat = XmlView::new(
        "flat",
        SqlXmlQuery {
            base_table: "t1".into(),
            where_clause: Conjunction::default(),
            order_by: Vec::new(),
            select: PubExpr::elem("r", vec![PubExpr::elem("v", vec![PubExpr::col("t1", "v")])]),
        },
    );
    let nested = XmlView::new(
        "nested",
        SqlXmlQuery {
            base_table: "t2".into(),
            where_clause: Conjunction::default(),
            order_by: Vec::new(),
            select: PubExpr::elem(
                "r",
                vec![PubExpr::elem(
                    "v",
                    vec![PubExpr::elem("v", vec![PubExpr::col("t2", "v")])],
                )],
            ),
        },
    );
    catalog.add_view(flat.clone());
    catalog.add_view(nested.clone());

    let src = r#"<xsl:stylesheet version="1.0"
        xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
        <xsl:template match="r"><out><xsl:value-of select="."/></out></xsl:template>
        </xsl:stylesheet>"#;
    let mut cache = PlanCache::default();
    let a = plan_cached(&mut cache, &catalog, &flat, src, &RewriteOptions::default())
        .expect("flat plans");
    let b = plan_cached(&mut cache, &catalog, &nested, src, &RewriteOptions::default())
        .expect("nested plans");
    assert!(
        !Arc::ptr_eq(&a.plan, &b.plan),
        "different shapes must not share a prepared plan"
    );
    assert_ne!(a.plan.canonical_fp, b.plan.canonical_fp);
    assert_eq!(cache.stats().misses, 2);
    assert_eq!(cache.entry_count(), 2);
}

// ---------------------------------------------------------------------------
// Property: rebinding never mixes rows across views.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For arbitrary family sizes, row counts and seeds, a plan served from
    /// the shared cache and rebound to view `i` renders exactly what a plan
    /// built fresh for view `i` renders — if rebinding leaked another
    /// view's binding, the cached output would contain that view's rows and
    /// the comparison would fail.
    #[test]
    fn rebinding_never_mixes_rows_across_views(
        nviews in 2usize..6,
        rows in 1usize..20,
        seed in any::<u32>(),
    ) {
        let (catalog, views) = db_catalog_family(nviews, rows, seed as u64);
        let sheet = r#"<xsl:stylesheet version="1.0"
            xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
            <xsl:template match="table"><o><xsl:apply-templates select="row"/></o></xsl:template>
            <xsl:template match="row"><n><xsl:value-of select="lastname"/>:<xsl:value-of select="zip"/></n></xsl:template>
            </xsl:stylesheet>"#;
        let cache = SharedPlanCache::default();
        for view in &views {
            let cached = plan_cached_shared(&cache, &catalog, view, sheet, &RewriteOptions::default())
                .expect("plans");
            let fresh = plan_bound(&catalog, view, sheet, &RewriteOptions::default())
                .expect("plans");
            prop_assert_eq!(
                render(&catalog, &cached),
                render(&catalog, &fresh),
                "view {} was served rows that are not its own",
                view.name
            );
        }
        prop_assert_eq!(cache.stats().misses, 1);
    }
}
