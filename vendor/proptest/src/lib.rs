//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach a cargo registry, so the workspace
//! vendors the subset of proptest it actually uses: the `Strategy` trait
//! with `prop_map`/`prop_recursive`/`boxed`, strategies for character-class
//! regexes, integer ranges, tuples, `Just`, `any::<bool>()`,
//! `collection::vec`, and the `proptest!`/`prop_oneof!`/`prop_assert*!`
//! macros.
//!
//! Differences from upstream, deliberately accepted:
//! - No shrinking: a failing case reports its case index (the run is fully
//!   deterministic, so the index reproduces it) instead of a minimised input.
//! - Generation is seeded per test name, so runs are reproducible across
//!   invocations and machines rather than randomised per run.
//! - Only the regex subset used by this workspace (sequences of character
//!   classes with `{m,n}` repetition, including `&&[^...]` intersection) is
//!   supported; anything else is a parse error.

pub mod test_runner {
    /// Deterministic splitmix64 stream used for all value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(state: u64) -> Self {
            TestRng { state }
        }

        /// Seed derived from the test name so each test gets a distinct but
        /// stable stream.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform-ish index in `0..n` (`n` must be non-zero).
        pub fn pick(&mut self, n: usize) -> usize {
            assert!(n > 0, "pick from empty range");
            (self.next_u64() % n as u64) as usize
        }
    }

    /// Run configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Prints the failing case index if the test body panics, since the stub
    /// does not shrink inputs.
    pub struct CaseGuard {
        name: &'static str,
        case: u32,
    }

    impl CaseGuard {
        pub fn new(name: &'static str, case: u32) -> Self {
            CaseGuard { name, case }
        }
    }

    impl Drop for CaseGuard {
        fn drop(&mut self) {
            if std::thread::panicking() {
                eprintln!(
                    "proptest stub: `{}` failed at deterministic case {} — rerun reproduces it",
                    self.name, self.case
                );
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// Value-generation strategy. Upstream's `Strategy` builds value *trees*
    /// for shrinking; the stub generates plain values.
    pub trait Strategy {
        type Value;

        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }

        /// Bounded recursive strategy: `depth` levels of `f` stacked over the
        /// base, choosing between base and recursive arm at each level.
        /// `_desired_size` and `_expected_branch_size` shape upstream's size
        /// distribution and are ignored here.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let base = self.boxed();
            let mut current = base.clone();
            for _ in 0..depth {
                current = Union::new(vec![base.clone(), f(current).boxed()]).boxed();
            }
            current
        }
    }

    trait DynStrategy<T> {
        fn gen_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn gen_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.gen_value(rng)
        }
    }

    /// Type-erased, cheaply clonable strategy handle.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            self.0.gen_dyn(rng)
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// Uniform choice between arms (backs `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            let idx = rng.pick(self.arms.len());
            self.arms[idx].gen_value(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy range is empty");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// String literals act as regex strategies, e.g. `"[a-z][a-z0-9]{0,6}"`.
    impl Strategy for &'static str {
        type Value = String;
        fn gen_value(&self, rng: &mut TestRng) -> String {
            crate::string::string_regex(self)
                .unwrap_or_else(|e| panic!("invalid regex strategy {self:?}: {e:?}"))
                .gen_value(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.gen_value(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    pub struct Any<T>(PhantomData<T>);

    /// `any::<bool>()` etc.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// `collection::vec(strategy, 0..4)` — length drawn uniformly from the
    /// (half-open, as upstream) size range.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "vec strategy size range is empty");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end - self.size.start;
            let len = self.size.start + rng.pick(span.max(1));
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod string {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Parse failure for an unsupported or malformed pattern.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error(pub String);

    /// One `[class]{m,n}` step of a pattern.
    #[derive(Debug, Clone)]
    struct Atom {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    /// Generator for the character-class regex subset.
    #[derive(Debug, Clone)]
    pub struct RegexStrategy {
        atoms: Vec<Atom>,
    }

    impl Strategy for RegexStrategy {
        type Value = String;
        fn gen_value(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for atom in &self.atoms {
                let span = atom.max - atom.min + 1;
                let count = atom.min + rng.pick(span);
                for _ in 0..count {
                    out.push(atom.chars[rng.pick(atom.chars.len())]);
                }
            }
            out
        }
    }

    /// Build a strategy from a regex made of character classes and literal
    /// characters, each optionally repeated with `{m}`/`{m,n}`. Classes
    /// support ranges, `\u{..}` escapes, and `&&[^...]` intersection — the
    /// subset this workspace's tests use.
    pub fn string_regex(pattern: &str) -> Result<RegexStrategy, Error> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut atoms = Vec::new();
        while i < chars.len() {
            let set = match chars[i] {
                '[' => parse_class(&chars, &mut i)?,
                '\\' => {
                    i += 1;
                    let c = parse_escape(&chars, &mut i)?;
                    vec![c]
                }
                '(' | ')' | '|' | '*' | '+' | '?' | '.' => {
                    return Err(Error(format!(
                        "unsupported regex construct {:?} in {pattern:?}",
                        chars[i]
                    )));
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            if set.is_empty() {
                return Err(Error(format!("empty character class in {pattern:?}")));
            }
            let (min, max) = parse_repetition(&chars, &mut i)?;
            atoms.push(Atom { chars: set, min, max });
        }
        Ok(RegexStrategy { atoms })
    }

    /// Parse `[...]` starting at `chars[*i] == '['`; advances past the `]`.
    fn parse_class(chars: &[char], i: &mut usize) -> Result<Vec<char>, Error> {
        *i += 1; // consume '['
        let negated = chars.get(*i) == Some(&'^');
        if negated {
            *i += 1;
        }
        let mut set: Vec<char> = Vec::new();
        let mut excluded: Vec<char> = Vec::new();
        loop {
            match chars.get(*i) {
                None => return Err(Error("unterminated character class".into())),
                Some(']') => {
                    *i += 1;
                    break;
                }
                Some('&') if chars.get(*i + 1) == Some(&'&') => {
                    // Intersection with a nested class, e.g. `[ -~&&[^\u{0}]]`.
                    *i += 2;
                    if chars.get(*i) != Some(&'[') {
                        return Err(Error("`&&` must be followed by a class".into()));
                    }
                    let other = parse_class(chars, i)?;
                    // The nested parse returns the *kept* set for positive
                    // classes and flags exclusions for negated ones via the
                    // NEGATION_MARKER prefix.
                    if other.first() == Some(&NEGATION_MARKER) {
                        excluded.extend(other[1..].iter().copied());
                    } else {
                        set.retain(|c| other.contains(c));
                    }
                }
                Some(&start) => {
                    let start = if start == '\\' {
                        *i += 1;
                        parse_escape(chars, i)?
                    } else {
                        *i += 1;
                        start
                    };
                    if chars.get(*i) == Some(&'-') && chars.get(*i + 1) != Some(&']') {
                        *i += 1; // consume '-'
                        let end = match chars.get(*i) {
                            Some('\\') => {
                                *i += 1;
                                parse_escape(chars, i)?
                            }
                            Some(&c) => {
                                *i += 1;
                                c
                            }
                            None => return Err(Error("unterminated range".into())),
                        };
                        if end < start {
                            return Err(Error(format!("inverted range {start:?}-{end:?}")));
                        }
                        for c in start..=end {
                            set.push(c);
                        }
                    } else {
                        set.push(start);
                    }
                }
            }
        }
        if negated {
            let mut marked = vec![NEGATION_MARKER];
            marked.extend(set);
            Ok(marked)
        } else {
            let mut result = set;
            result.retain(|c| !excluded.contains(c));
            Ok(result)
        }
    }

    /// Sentinel prefix marking a negated class's exclusion list; U+FFFF never
    /// appears in the supported pattern alphabet.
    const NEGATION_MARKER: char = '\u{FFFF}';

    /// Parse the escape after a consumed `\`; advances past it.
    fn parse_escape(chars: &[char], i: &mut usize) -> Result<char, Error> {
        match chars.get(*i) {
            Some('u') if chars.get(*i + 1) == Some(&'{') => {
                let close = chars[*i..]
                    .iter()
                    .position(|&c| c == '}')
                    .ok_or_else(|| Error("unterminated \\u{..}".into()))?;
                let hex: String = chars[*i + 2..*i + close].iter().collect();
                let code = u32::from_str_radix(&hex, 16)
                    .map_err(|_| Error(format!("bad \\u escape {hex:?}")))?;
                *i += close + 1;
                char::from_u32(code).ok_or_else(|| Error(format!("invalid codepoint {code:#x}")))
            }
            Some('n') => {
                *i += 1;
                Ok('\n')
            }
            Some('t') => {
                *i += 1;
                Ok('\t')
            }
            Some(&c @ ('\\' | ']' | '[' | '-' | '^' | '{' | '}')) => {
                *i += 1;
                Ok(c)
            }
            other => Err(Error(format!("unsupported escape {other:?}"))),
        }
    }

    /// Parse an optional `{m}` / `{m,n}` suffix; defaults to exactly one.
    fn parse_repetition(chars: &[char], i: &mut usize) -> Result<(usize, usize), Error> {
        if chars.get(*i) != Some(&'{') {
            return Ok((1, 1));
        }
        let close = chars[*i..]
            .iter()
            .position(|&c| c == '}')
            .ok_or_else(|| Error("unterminated repetition".into()))?;
        let body: String = chars[*i + 1..*i + close].iter().collect();
        *i += close + 1;
        let (min, max) = match body.split_once(',') {
            Some((lo, hi)) => (
                lo.parse().map_err(|_| Error(format!("bad repetition {body:?}")))?,
                hi.parse().map_err(|_| Error(format!("bad repetition {body:?}")))?,
            ),
            None => {
                let n = body.parse().map_err(|_| Error(format!("bad repetition {body:?}")))?;
                (n, n)
            }
        };
        if max < min {
            return Err(Error(format!("inverted repetition {body:?}")));
        }
        Ok((min, max))
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $arm:expr),+ $(,)?) => {
        // Weights shape upstream's distribution; the stub chooses uniformly.
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($arm) ),+
        ])
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($arm) ),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..__cfg.cases {
                    let __guard =
                        $crate::test_runner::CaseGuard::new(stringify!($name), __case);
                    $(
                        let $arg =
                            $crate::strategy::Strategy::gen_value(&($strat), &mut __rng);
                    )*
                    $body
                    drop(__guard);
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn regex_name_pattern() {
        let strat = "[a-z][a-z0-9]{0,6}";
        let mut rng = TestRng::from_seed(1);
        for _ in 0..200 {
            let s = Strategy::gen_value(&strat, &mut rng);
            assert!((1..=7).contains(&s.len()), "bad length: {s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn regex_intersection_excludes_nul() {
        let strat = crate::string::string_regex("[ -~&&[^\u{0}]]{1,12}").expect("parses");
        let mut rng = TestRng::from_seed(2);
        for _ in 0..200 {
            let s = Strategy::gen_value(&strat, &mut rng);
            assert!((1..=12).contains(&s.chars().count()));
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "bad char in {s:?}");
        }
    }

    #[test]
    fn regex_rejects_unsupported() {
        assert!(crate::string::string_regex("a|b").is_err());
        assert!(crate::string::string_regex("(ab)+").is_err());
        assert!(crate::string::string_regex("[a-z").is_err());
    }

    #[test]
    fn ranges_tuples_and_vec() {
        let strat = (1000u32..9999, "[A-Z]{1,8}", 0u32..10000);
        let mut rng = TestRng::from_seed(3);
        for _ in 0..100 {
            let (a, s, c) = Strategy::gen_value(&strat, &mut rng);
            assert!((1000..9999).contains(&a));
            assert!((1..=8).contains(&s.len()));
            assert!(c < 10000);
        }
        let vecs = crate::collection::vec(0u32..5, 0..3);
        for _ in 0..100 {
            let v = Strategy::gen_value(&vecs, &mut rng);
            assert!(v.len() < 3);
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn oneof_and_recursive_terminate() {
        #[derive(Debug, Clone, PartialEq)]
        enum T {
            Leaf(u32),
            Node(Vec<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf(_) => 1,
                T::Node(cs) => 1 + cs.iter().map(depth).max().unwrap_or(0),
            }
        }
        let leaf = prop_oneof![(0u32..10).prop_map(T::Leaf), Just(T::Leaf(99))];
        let tree = leaf.prop_recursive(3, 24, 4, |inner| {
            crate::collection::vec(inner, 0..4).prop_map(T::Node)
        });
        let mut rng = TestRng::from_seed(4);
        for _ in 0..200 {
            let t = Strategy::gen_value(&tree, &mut rng);
            assert!(depth(&t) <= 7, "recursion failed to stay bounded: {t:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_end_to_end(x in 0u32..100, flag in any::<bool>()) {
            prop_assert!(x < 100);
            prop_assert_eq!(flag as u32 <= 1, true);
        }
    }
}
