//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to a cargo registry, so the
//! workspace vendors the minimal API surface it actually consumes:
//! `StdRng::seed_from_u64` and `Rng::gen_range` over primitive integer
//! ranges. The generator is splitmix64 — deterministic for a given seed,
//! which is exactly what the seeded document generators in `xsltdb-xsltmark`
//! rely on. It is **not** cryptographically secure and does not pretend to
//! match upstream rand's value streams.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of seedable generators (`StdRng::seed_from_u64(7)`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from a `Range`.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: &core::ops::Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                range: &core::ops::Range<Self>,
            ) -> Self {
                assert!(
                    range.start < range.end,
                    "gen_range called with empty range {}..{}",
                    range.start,
                    range.end
                );
                let span = (range.end as i128 - range.start as i128) as u128;
                // Modulo bias is irrelevant for test-data generation.
                let offset = (rng.next_u64() as u128) % span;
                (range.start as i128 + offset as i128) as Self
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling trait; blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, &range)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn stays_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10_000i64..99_999);
            assert!((10_000..99_999).contains(&v));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u32> = (0..8).map(|_| a.gen_range(0u32..1_000_000)).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.gen_range(0u32..1_000_000)).collect();
        assert_ne!(va, vb);
    }
}
