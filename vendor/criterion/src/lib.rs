//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach a cargo registry, so this vendored
//! stub provides the subset of the criterion API the workspace benches use:
//! `Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Behaviour:
//! - Under `cargo bench` (cargo passes `--bench` to `harness = false`
//!   targets) each benchmark is timed over a fixed number of iterations and
//!   a mean wall-clock per iteration is printed. No statistics, no HTML
//!   reports — order-of-magnitude numbers only.
//! - Under `cargo test` (no `--bench` flag) each benchmark body runs exactly
//!   once as a smoke test, matching upstream criterion's test mode.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Identifier for a parameterised benchmark, e.g. `BenchmarkId::new("rewrite", rows)`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId { name: format!("{function_name}/{parameter}") }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Passed to benchmark closures; `iter` runs (and in bench mode, times) the body.
pub struct Bencher {
    bench_mode: bool,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        if !self.bench_mode {
            black_box(body());
            return;
        }
        // One warmup, then a timed run.
        black_box(body());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(body());
        }
        let per_iter = start.elapsed() / self.iters as u32;
        println!("    time per iter: {per_iter:?} ({} iters)", self.iters);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("bench {}/{id}", self.name);
        let mut b = Bencher { bench_mode: self.criterion.bench_mode, iters: self.sample_size };
        f(&mut b);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        println!("bench {}/{id}", self.name);
        let mut b = Bencher { bench_mode: self.criterion.bench_mode, iters: self.sample_size };
        f(&mut b, input);
        self
    }

    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    bench_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { bench_mode: std::env::args().any(|a| a == "--bench") }
    }
}

impl Criterion {
    /// Upstream parses CLI flags here; the stub only looks for `--bench`.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 10 }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("bench {id}");
        let mut b = Bencher { bench_mode: self.bench_mode, iters: 10 };
        f(&mut b);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_body_once() {
        let mut calls = 0;
        let mut b = Bencher { bench_mode: false, iters: 10 };
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
    }

    #[test]
    fn bench_mode_runs_warmup_plus_iters() {
        let mut calls = 0u64;
        let mut b = Bencher { bench_mode: true, iters: 4 };
        b.iter(|| calls += 1);
        assert_eq!(calls, 5);
    }

    #[test]
    fn group_and_id_wiring() {
        let mut c = Criterion { bench_mode: false };
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.sample_size(10).bench_with_input(BenchmarkId::new("f", 3), &7, |b, &x| {
            b.iter(|| assert_eq!(x, 7));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
